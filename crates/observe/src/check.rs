//! Offline trace validation: turns a [`Trace`](crate::trace::Trace)
//! into a correctness tool.
//!
//! The checker replays each track and verifies the model invariants
//! the paper's schemes rest on:
//!
//! * **`monotone-time`** — the `desim` event queue delivers events in
//!   non-decreasing sim time, so every recorded engine, clock,
//!   handshake, and span timestamp within a lane must be monotone
//!   (skew samples are static analyses and exempt).
//! * **`causality`** — a scheduled change can only fire at or after
//!   the moment it was scheduled.
//! * **`clock-overlap`** — assumption A4: the two phases of a
//!   two-phase clock discipline are never simultaneously high.
//! * **`handshake-order`** — Section VI request/acknowledge
//!   discipline: per link, requests and acknowledges strictly
//!   alternate starting with a request (two requests with no
//!   intervening acknowledge is a dropped Ack), and each acknowledge
//!   answers the polarity of the request it follows (4-phase
//!   `Req+ → Ack+ → Req− → Ack−`).
//! * **`span-balance`** — `SpanBegin`/`SpanEnd` nest like
//!   parentheses, with matching names.
//!
//! The checker is **fault-aware**: a
//! [`TraceEvent::FaultInjected`] record naming a handshake link
//! resets that link's protocol state, so a request retried after a
//! deliberately dropped transition is not reported as a dropped Ack —
//! only *unannotated* protocol breaks are violations.

use crate::trace::{Trace, TraceEvent};
use std::collections::HashMap;

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule: `monotone-time`, `causality`,
    /// `clock-overlap`, `handshake-order`, or `span-balance`.
    pub rule: &'static str,
    /// The track the offending event lives on.
    pub track: String,
    /// Sim time of the offending event, picoseconds.
    pub t_ps: u64,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] track {} t={}ps: {}",
            self.rule, self.track, self.t_ps, self.detail
        )
    }
}

/// The outcome of one checker pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckReport {
    /// Sim-time events examined.
    pub events_checked: u64,
    /// Violations, in track/event order.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether the trace satisfied every invariant.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line outcome, e.g. `trace check: 420 events, OK` or
    /// `trace check: 420 events, 2 violations`.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_ok() {
            format!("trace check: {} events, OK", self.events_checked)
        } else {
            format!(
                "trace check: {} events, {} violation{}",
                self.events_checked,
                self.violations.len(),
                if self.violations.len() == 1 { "" } else { "s" }
            )
        }
    }
}

/// Monotonicity lanes within a track: engine/clock events share the
/// simulator timeline, handshakes are per link, spans per track.
fn lane_of(ev: &TraceEvent) -> Option<String> {
    match ev {
        TraceEvent::ClockEdge { .. }
        | TraceEvent::EventScheduled { .. }
        | TraceEvent::EventFired { .. }
        | TraceEvent::EventCancelled { .. } => Some("engine".to_owned()),
        TraceEvent::HandshakeReq { link, .. } | TraceEvent::HandshakeAck { link, .. } => {
            Some(format!("link:{link}"))
        }
        TraceEvent::SpanBegin { .. } | TraceEvent::SpanEnd { .. } => {
            Some("span".to_owned())
        }
        // Skew samples are static analyses; fault injections are plan
        // annotations stamped when the fault was *drawn*, which may
        // precede the events around them. Both are exempt.
        TraceEvent::SkewSample { .. } | TraceEvent::FaultInjected { .. } => None,
    }
}

/// Validates every track of `trace` against the model invariants.
#[must_use]
pub fn check_trace(trace: &Trace) -> CheckReport {
    let mut report = CheckReport::default();
    for track in trace.tracks() {
        check_track(&track.name, &track.events, &mut report);
    }
    report
}

#[allow(clippy::too_many_lines)]
fn check_track(track: &str, events: &[TraceEvent], report: &mut CheckReport) {
    let mut lane_clock: HashMap<String, u64> = HashMap::new();
    // Signal → (phase, level); plus the count of high signals per phase.
    let mut clock_level: HashMap<String, bool> = HashMap::new();
    let mut phase_high = [0usize; 2];
    // Link → expected next transition: (want_ack, polarity).
    let mut hs_state: HashMap<String, (bool, bool)> = HashMap::new();
    let mut span_stack: Vec<String> = Vec::new();
    let violation = |report: &mut CheckReport, rule, t_ps, detail: String| {
        report.violations.push(Violation {
            rule,
            track: track.to_owned(),
            t_ps,
            detail,
        });
    };
    for ev in events {
        report.events_checked += 1;
        let t = ev.t_ps();
        if let Some(lane) = lane_of(ev) {
            let last = lane_clock.entry(lane.clone()).or_insert(0);
            if t < *last {
                violation(
                    report,
                    "monotone-time",
                    t,
                    format!("{} goes backwards ({} < {last}) on lane {lane}", ev.kind(), t),
                );
            } else {
                *last = t;
            }
        }
        match ev {
            TraceEvent::EventScheduled { t_ps, fire_ps, net, .. } => {
                if fire_ps < t_ps {
                    violation(
                        report,
                        "causality",
                        *t_ps,
                        format!("net {net} scheduled to fire in the past ({fire_ps} < {t_ps})"),
                    );
                }
            }
            TraceEvent::ClockEdge {
                t_ps,
                signal,
                rising,
                phase,
            } => {
                let phase = usize::from(*phase != 0);
                let level = clock_level.entry(signal.clone()).or_insert(false);
                if *level != *rising {
                    // A real edge: update the per-phase high count.
                    *level = *rising;
                    if *rising {
                        phase_high[phase] += 1;
                    } else {
                        phase_high[phase] = phase_high[phase].saturating_sub(1);
                    }
                }
                if phase_high[0] > 0 && phase_high[1] > 0 {
                    violation(
                        report,
                        "clock-overlap",
                        *t_ps,
                        format!(
                            "two-phase overlap: both phases high after `{signal}` edge (A4)"
                        ),
                    );
                }
            }
            TraceEvent::HandshakeReq { t_ps, link, rising } => {
                if let Some((true, _)) = hs_state.get(link) {
                    violation(
                        report,
                        "handshake-order",
                        *t_ps,
                        format!("request on `{link}` before the previous Ack (dropped Ack)"),
                    );
                }
                // Resync on the new request so one fault does not
                // cascade into every later transfer.
                hs_state.insert(link.clone(), (true, *rising));
            }
            TraceEvent::HandshakeAck { t_ps, link, rising } => match hs_state.get(link) {
                Some((true, req_polarity)) => {
                    if rising != req_polarity {
                        violation(
                            report,
                            "handshake-order",
                            *t_ps,
                            format!(
                                "ack polarity on `{link}` ({}) does not answer the request ({})",
                                rising, req_polarity
                            ),
                        );
                    }
                    hs_state.insert(link.clone(), (false, *rising));
                }
                _ => violation(
                    report,
                    "handshake-order",
                    *t_ps,
                    format!("ack on `{link}` with no outstanding request"),
                ),
            },
            TraceEvent::SpanBegin { name, .. } => span_stack.push(name.clone()),
            TraceEvent::SpanEnd { t_ps, name } => match span_stack.pop() {
                Some(open) if open == *name => {}
                Some(open) => violation(
                    report,
                    "span-balance",
                    *t_ps,
                    format!("span `{name}` closed while `{open}` is innermost"),
                ),
                None => violation(
                    report,
                    "span-balance",
                    *t_ps,
                    format!("span `{name}` closed but none is open"),
                ),
            },
            TraceEvent::FaultInjected { site, .. } => {
                // A fault on a handshake link resets its protocol
                // state: whatever transition was in flight is gone, and
                // the retry that follows starts a fresh exchange.
                hs_state.remove(site);
            }
            TraceEvent::EventFired { .. }
            | TraceEvent::EventCancelled { .. }
            | TraceEvent::SkewSample { .. } => {}
        }
    }
    for open in span_stack {
        violation(
            report,
            "span-balance",
            u64::MAX,
            format!("span `{open}` never closed"),
        );
    }
    // A request left outstanding at end-of-trace is legitimate (the
    // run may simply stop mid-transfer), so it is not flagged.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceBuf, TraceEvent};

    fn trace_of(events: Vec<TraceEvent>) -> Trace {
        let mut buf = TraceBuf::new(events.len().max(1));
        for ev in events {
            buf.record(ev);
        }
        let mut t = Trace::new();
        t.add_track("t", buf);
        t
    }

    fn req(t_ps: u64, rising: bool) -> TraceEvent {
        TraceEvent::HandshakeReq {
            t_ps,
            link: "l".into(),
            rising,
        }
    }

    fn ack(t_ps: u64, rising: bool) -> TraceEvent {
        TraceEvent::HandshakeAck {
            t_ps,
            link: "l".into(),
            rising,
        }
    }

    #[test]
    fn clean_four_phase_handshake_passes() {
        let t = trace_of(vec![
            req(0, true),
            ack(10, true),
            req(20, false),
            ack(30, false),
        ]);
        let r = check_trace(&t);
        assert!(r.is_ok(), "{:?}", r.violations);
        assert_eq!(r.events_checked, 4);
        assert!(r.summary().ends_with("OK"));
    }

    #[test]
    fn dropped_ack_is_a_named_violation() {
        let t = trace_of(vec![req(0, true), req(20, false), ack(30, false)]);
        let r = check_trace(&t);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "handshake-order");
        assert!(r.violations[0].detail.contains("dropped Ack"));
    }

    #[test]
    fn annotated_fault_drop_resets_the_link_state() {
        // Same shape as `dropped_ack_is_a_named_violation`, but the
        // drop is announced by the injector — the retry is legal.
        let fault = TraceEvent::FaultInjected {
            t_ps: 15,
            site: "l".into(),
            kind: "drop_ack".into(),
        };
        let t = trace_of(vec![req(0, true), fault, req(20, true), ack(30, true)]);
        let r = check_trace(&t);
        assert!(r.is_ok(), "{:?}", r.violations);
        // A fault on some *other* site does not excuse this link.
        let other = TraceEvent::FaultInjected {
            t_ps: 15,
            site: "net3".into(),
            kind: "seu_flip".into(),
        };
        let t = trace_of(vec![req(0, true), other, req(20, true)]);
        assert_eq!(check_trace(&t).violations.len(), 1);
    }

    #[test]
    fn non_monotone_time_is_a_named_violation() {
        let t = trace_of(vec![
            TraceEvent::EventFired {
                t_ps: 100,
                net: 0,
                value: true,
            },
            TraceEvent::EventFired {
                t_ps: 50,
                net: 1,
                value: false,
            },
        ]);
        let r = check_trace(&t);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "monotone-time");
    }

    #[test]
    fn two_phase_overlap_is_detected() {
        let edge = |t_ps, signal: &str, rising, phase| TraceEvent::ClockEdge {
            t_ps,
            signal: signal.into(),
            rising,
            phase,
        };
        // Non-overlapping: phi0 high [0,40), phi1 high [50,90).
        let clean = trace_of(vec![
            edge(0, "phi0", true, 0),
            edge(40, "phi0", false, 0),
            edge(50, "phi1", true, 1),
            edge(90, "phi1", false, 1),
        ]);
        assert!(check_trace(&clean).is_ok());
        // Overlapping: phi1 rises before phi0 falls.
        let dirty = trace_of(vec![
            edge(0, "phi0", true, 0),
            edge(30, "phi1", true, 1),
            edge(40, "phi0", false, 0),
            edge(90, "phi1", false, 1),
        ]);
        let r = check_trace(&dirty);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "clock-overlap");
    }

    #[test]
    fn causality_and_span_balance() {
        let t = trace_of(vec![
            TraceEvent::EventScheduled {
                t_ps: 100,
                fire_ps: 50,
                net: 2,
                value: true,
            },
            TraceEvent::SpanBegin {
                t_ps: 100,
                name: "outer".into(),
            },
            TraceEvent::SpanEnd {
                t_ps: 150,
                name: "inner".into(),
            },
        ]);
        let r = check_trace(&t);
        let rules: Vec<&str> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"causality"));
        assert!(rules.contains(&"span-balance"));
        assert!(r.summary().contains("violation"));
    }

    #[test]
    fn violations_display_names_the_rule() {
        let t = trace_of(vec![ack(0, true)]);
        let r = check_trace(&t);
        let text = r.violations[0].to_string();
        assert!(text.starts_with("[handshake-order]"));
        assert!(text.contains("track t"));
    }
}
