//! A hand-rolled, deterministic JSON value type, serializer, and
//! parser.
//!
//! The workspace is zero-dependency by policy (the tier-1 gate builds
//! offline), so instead of serde this module provides the minimal
//! machinery the experiment reports and the regression gate need:
//!
//! * [`Json`] — a value tree whose objects are **ordered** pair lists,
//!   so serialization order is exactly insertion order and two
//!   identically built reports serialize to identical bytes;
//! * [`Json::to_compact`] / [`Json::to_pretty`] — deterministic
//!   writers (numbers use Rust's shortest round-trip float formatting,
//!   which is platform-independent);
//! * [`parse`] / [`parse_with_limits`] — a small recursive-descent
//!   parser, used by the round-trip tests, by `bench_regress` to load
//!   committed baselines, and (under strict [`ParseLimits`]) by the
//!   `sim-serve` request reader on untrusted network input. Every
//!   failure mode is a returned [`JsonError`], never a panic: the
//!   depth limit in particular keeps deeply nested input from
//!   overflowing the parser's stack.
//!
//! Non-finite floats have no JSON representation; they serialize as
//! `null` (and the tests pin that behaviour).

use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (negative numbers parse to this).
    Int(i64),
    /// An unsigned integer (non-negative numbers parse to this).
    UInt(u64),
    /// A finite double. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object: insertion-ordered `(key, value)` pairs.
    Object(Vec<(String, Json)>),
}

impl PartialEq for Json {
    /// Structural equality; `Int`/`UInt` compare by numeric value so a
    /// serialized-then-parsed tree equals its source.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Int(a), Json::Int(b)) => a == b,
            (Json::UInt(a), Json::UInt(b)) => a == b,
            (Json::Int(a), Json::UInt(b)) | (Json::UInt(b), Json::Int(a)) => {
                u64::try_from(*a).is_ok_and(|a| a == *b)
            }
            (Json::Float(a), Json::Float(b)) => a == b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Array(a), Json::Array(b)) => a == b,
            (Json::Object(a), Json::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks a key up in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as f64, if this is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes without whitespace.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format of the committed baseline and `BENCH_*.json` files.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    /// Content digest: [`fnv1a64`] over the compact serialization, as
    /// 16 lowercase hex digits. Because serialization is deterministic
    /// (insertion-ordered objects, shortest round-trip floats), equal
    /// values always digest equally — the workspace uses this to pin
    /// sweep manifests to their checkpoints and to content-address
    /// cached reports.
    #[must_use]
    pub fn digest(&self) -> String {
        format!("{:016x}", fnv1a64(self.to_compact().as_bytes()))
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Object(pairs) => {
                write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

/// FNV-1a 64-bit: tiny, dependency-free, and plenty for content
/// addressing when the full canonical bytes are verified on lookup.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Deterministic float formatting: non-finite values have no JSON
/// representation and render as `null`; integral values keep one
/// decimal (`1.0`, not `1`) so they round-trip back to floats; all
/// other values use Rust's shortest round-trip representation.
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_owned()
    } else if v == v.trunc() && v.abs() < 1.0e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

/// A parse failure: what went wrong and the byte offset it happened
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Resource bounds for [`parse_with_limits`].
///
/// The parser is recursive, so unbounded nesting depth means unbounded
/// stack — hostile input like ten thousand `[`s must produce a
/// [`JsonError`], not a stack overflow. Anything that parses
/// *network* input (the `sim-serve` request path) must pick explicit
/// limits; [`ParseLimits::default`] keeps trusted-file parsing
/// permissive (no byte limit, depth 512) while still bounding the
/// stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum input length in bytes (`usize::MAX` → unlimited).
    pub max_bytes: usize,
    /// Maximum container nesting depth (arrays + objects). The
    /// top-level value sits at depth 1.
    pub max_depth: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_bytes: usize::MAX,
            max_depth: 512,
        }
    }
}

impl ParseLimits {
    /// Strict bounds for untrusted network input: 64 KiB, depth 16 —
    /// what the `sim-serve` request reader uses.
    #[must_use]
    pub const fn network() -> Self {
        ParseLimits {
            max_bytes: 64 * 1024,
            max_depth: 16,
        }
    }
}

/// Parses a JSON document (one value plus surrounding whitespace)
/// under [`ParseLimits::default`]: no byte bound, nesting depth 512.
///
/// # Errors
///
/// Returns a [`JsonError`] with the failing byte offset on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    parse_with_limits(input, ParseLimits::default())
}

/// Parses a JSON document under explicit resource bounds. Every
/// failure mode — malformed syntax, truncation, out-of-range numbers,
/// oversized input, excessive nesting — is a returned [`JsonError`],
/// never a panic or a stack overflow.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed input, trailing garbage, an
/// input longer than `limits.max_bytes`, or nesting deeper than
/// `limits.max_depth`.
pub fn parse_with_limits(input: &str, limits: ParseLimits) -> Result<Json, JsonError> {
    if input.len() > limits.max_bytes {
        return Err(JsonError {
            message: format!(
                "input of {} bytes exceeds the {}-byte limit",
                input.len(),
                limits.max_bytes
            ),
            offset: 0,
        });
    }
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
        max_depth: limits.max_depth,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Bumps the container nesting depth on entry to an array or
    /// object; the recursive parser's stack usage is proportional to
    /// this, so the limit is what turns a `[[[[…` bomb into an error
    /// instead of a stack overflow.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(self.err(&format!(
                "nesting deeper than the {}-level limit",
                self.max_depth
            )));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        let out = self.array_inner();
        self.depth -= 1;
        out
    }

    fn array_inner(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        let out = self.object_inner();
        self.depth -= 1;
        out
    }

    fn object_inner(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy it through.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            if !v.is_finite() {
                return Err(self.err("number out of range"));
            }
            Ok(Json::Float(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Json::UInt(v))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Json::Int(v))
        } else {
            // Integer literal wider than 64 bits: fall back to f64,
            // which (like the float branch above) must stay finite —
            // an overflowing literal has no JSON value.
            let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            if !v.is_finite() {
                return Err(self.err("number out of range"));
            }
            Ok(Json::Float(v))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let j = Json::from("a\"b\\c\nd\te\u{01}f");
        assert_eq!(j.to_compact(), r#""a\"b\\c\nd\te\u0001f""#);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact(), "null");
        assert_eq!(Json::Float(f64::NEG_INFINITY).to_compact(), "null");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(1.0).to_compact(), "1.0");
        assert_eq!(Json::Float(-3.0).to_compact(), "-3.0");
        assert_eq!(Json::Float(0.5).to_compact(), "0.5");
        assert_eq!(Json::Float(1.1).to_compact(), "1.1");
    }

    #[test]
    fn object_order_is_insertion_order() {
        let j = Json::obj(vec![("z", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(j.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn round_trip_through_the_parser() {
        let j = Json::obj(vec![
            ("name", Json::from("e1 µ-bench \"quoted\"")),
            ("count", Json::from(12u64)),
            ("neg", Json::from(-5i64)),
            ("ratio", Json::from(0.125)),
            ("whole", Json::from(68.0)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            ("rows", Json::Array(vec![Json::from("a"), Json::from(2u64)])),
            ("empty_obj", Json::obj::<String>(vec![])),
            ("empty_arr", Json::Array(vec![])),
        ]);
        for text in [j.to_compact(), j.to_pretty()] {
            let back = parse(&text).expect("parses");
            assert_eq!(back, j, "round-trip diverged for {text}");
        }
    }

    #[test]
    fn serialize_parse_serialize_is_idempotent() {
        let j = Json::obj(vec![
            ("pi", Json::from(std::f64::consts::PI)),
            ("big", Json::from(u64::MAX)),
            ("text", Json::from("line1\nline2")),
        ]);
        let once = j.to_pretty();
        let twice = parse(&once).expect("parses").to_pretty();
        assert_eq!(once, twice);
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        assert_eq!(parse(r#""µs""#).unwrap(), Json::from("µs"));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::from("😀"));
        assert_eq!(parse("\"µs raw\"").unwrap(), Json::from("µs raw"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("\"unterminated").is_err());
        let err = parse("nul").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn numbers_parse_to_natural_variants() {
        assert_eq!(parse("42").unwrap(), Json::UInt(42));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("4.5").unwrap(), Json::Float(4.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
    }

    #[test]
    fn int_and_uint_compare_by_value() {
        assert_eq!(Json::Int(7), Json::UInt(7));
        assert_ne!(Json::Int(-7), Json::UInt(7));
    }

    #[test]
    fn get_and_accessors() {
        let j = Json::obj(vec![("k", Json::from("v")), ("n", Json::from(2u64))]);
        assert_eq!(j.get("k").and_then(Json::as_str), Some("v"));
        assert_eq!(j.get("n").and_then(Json::as_f64), Some(2.0));
        assert!(j.get("missing").is_none());
        assert!(Json::Null.get("k").is_none());
    }
}
