//! Fuzz-style hardening corpus for the hand-rolled JSON parser.
//!
//! The parser now sits on a network boundary (`sim-serve` feeds it
//! raw socket lines), so every malformed, truncated, oversized, or
//! adversarially nested input must come back as a `JsonError` — never
//! a panic, and never a stack overflow. The corpus below is grouped
//! by attack shape; each case is run through both the permissive
//! default limits and the strict network limits.

use sim_observe::{parse, parse_with_limits, Json, ParseLimits};

/// Asserts the input errors (rather than panicking) under both limit
/// presets.
fn assert_rejected(input: &str, why: &str) {
    assert!(parse(input).is_err(), "default limits accepted {why}: {input:?}");
    assert!(
        parse_with_limits(input, ParseLimits::network()).is_err(),
        "network limits accepted {why}: {input:?}"
    );
}

#[test]
fn truncated_documents_error_cleanly() {
    for input in [
        "",
        "{",
        "}",
        "[",
        "[1,",
        "[1, 2",
        "{\"a\"",
        "{\"a\":",
        "{\"a\":1",
        "{\"a\":1,",
        "\"unterminated",
        "\"bad escape \\",
        "\"half surrogate \\ud83d",
        "\"half surrogate \\ud83d\\u00",
        "tru",
        "nul",
        "fals",
        "-",
        "+",
        "1e",
        "0x10",
    ] {
        assert_rejected(input, "a truncated/malformed document");
    }
}

#[test]
fn bad_escapes_and_control_characters_error_cleanly() {
    for input in [
        r#""\q""#,
        r#""\u12""#,
        r#""\uZZZZ""#,
        r#""\ud800\ud800""#, // high surrogate followed by another high
        r#""\udc00""#,       // lone low surrogate parses as invalid char
        "\"ctrl \u{01}\"",   // raw control byte inside a string
        "\"tab\t\"",
    ] {
        assert_rejected(input, "a bad escape or control character");
    }
}

#[test]
fn oversized_numbers_error_cleanly() {
    // Floats that overflow to infinity have no JSON value; integer
    // literals wider than u64 fall back to finite floats and are fine.
    assert_rejected("1e999", "an overflowing float");
    assert_rejected("-1e999", "an overflowing negative float");
    assert_rejected("1e+999999999", "a huge exponent");
    // An integer literal wider than u64 overflows the f64 fallback
    // and must be rejected too (it would otherwise serialize as null).
    assert_rejected(&"9".repeat(400), "an overflowing wide integer");
    let big_int = "9".repeat(30); // wider than u64, finite as f64
    let parsed = parse(&big_int).expect("wide-but-finite integers fall back to f64");
    assert!(matches!(parsed, Json::Float(v) if v.is_finite()));
    // A pathologically long digit string still terminates promptly
    // (rejected: over the network byte limit, and overflowing anyway).
    let long = "1".repeat(100_000);
    assert!(parse_with_limits(&long, ParseLimits::network()).is_err());
    assert!(parse(&long).is_err());
}

#[test]
fn deep_nesting_is_an_error_not_a_stack_overflow() {
    // 100k unclosed brackets would previously recurse to a stack
    // overflow (an abort, not a catchable panic). The depth limit
    // turns it into an ordinary parse error.
    for bomb in ["[".repeat(100_000), "{\"a\":".repeat(100_000)] {
        let err = parse(&bomb).expect_err("nesting bomb must be rejected");
        assert!(err.message.contains("nesting"), "unexpected error: {err}");
    }
    // Balanced-but-deep documents are rejected just the same.
    let balanced = format!("{}1{}", "[".repeat(1_000), "]".repeat(1_000));
    assert!(parse(&balanced).is_err(), "depth 1000 exceeds the default limit");
    let shallow = format!("{}1{}", "[".repeat(500), "]".repeat(500));
    assert!(parse(&shallow).is_ok(), "depth 500 fits the default limit");
}

#[test]
fn network_limits_bound_depth_and_size() {
    let limits = ParseLimits::network();
    // Depth 16 passes, 17 fails.
    let fits = format!("{}1{}", "[".repeat(16), "]".repeat(16));
    assert!(parse_with_limits(&fits, limits).is_ok());
    let deep = format!("{}1{}", "[".repeat(17), "]".repeat(17));
    let err = parse_with_limits(&deep, limits).expect_err("depth 17 exceeds 16");
    assert!(err.message.contains("16-level"), "{err}");
    // Oversized input is rejected before any parsing work happens.
    let huge = format!("\"{}\"", "x".repeat(limits.max_bytes));
    let err = parse_with_limits(&huge, limits).expect_err("oversized input");
    assert_eq!(err.offset, 0);
    assert!(err.message.contains("byte limit"), "{err}");
    // The same document is fine under the default (unbounded) limits.
    assert!(parse(&huge).is_ok());
}

#[test]
fn custom_limits_are_honoured_exactly() {
    let tight = ParseLimits {
        max_bytes: 10,
        max_depth: 2,
    };
    assert!(parse_with_limits("[[1]]", tight).is_ok());
    assert!(parse_with_limits("[[[1]]]", tight).is_err());
    assert!(parse_with_limits("12345678901", tight).is_err());
    assert!(parse_with_limits("1234567890", tight).is_ok());
}

#[test]
fn valid_documents_still_parse_under_network_limits() {
    // The hardening must not reject the protocol's own traffic.
    let request = r#"{"experiment":"e2","seed":42,"trials":null,"params":{"fast":true},"fault_rates":{"gate_stuck":0.0}}"#;
    let doc = parse_with_limits(request, ParseLimits::network()).expect("valid request");
    assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("e2"));
    // Round-trip through the serializer is unchanged by limits.
    assert_eq!(
        parse_with_limits(&doc.to_compact(), ParseLimits::network()).unwrap(),
        doc
    );
}

#[test]
fn garbage_bytes_never_panic() {
    // A light deterministic fuzz sweep: xor-scramble a valid document
    // at every byte position and require parse() to return (Ok or Err,
    // never panic). The loop doubles as a liveness check — no input
    // may hang the parser.
    let seed = r#"{"k":[1,-2,3.5,true,null,"sA"],"o":{"n":1e2}}"#;
    let mut bytes = seed.as_bytes().to_vec();
    for i in 0..bytes.len() {
        let orig = bytes[i];
        for flip in [0x01u8, 0x20, 0x7f] {
            bytes[i] = orig ^ flip;
            if let Ok(s) = std::str::from_utf8(&bytes) {
                let _ = parse(s);
                let _ = parse_with_limits(s, ParseLimits::network());
            }
        }
        bytes[i] = orig;
    }
}
