//! PALS-style offset exchange: neighbors trade local-clock offsets
//! and slew toward a fault-tolerant midpoint.
//!
//! Where TRIX propagates *pulses* through a layered grid, a PALS-style
//! scheme (physically asynchronous, logically synchronous) keeps a
//! mesh of free-running local clocks logically aligned by periodic
//! **offset exchange**: every round each node collects its neighbors'
//! current clock offsets, trims the extreme sample on each side
//! (Lynch–Welch style; its own post-drift offset is in the pool, so a
//! node never chases a single neighbor), and slews toward the midpoint
//! of the survivors under a per-round slew limit. The trim is what
//! tolerates an outlier; the midpoint — rather than a plain median —
//! is what keeps a displaced *cluster* from becoming a stable fixed
//! point that never erodes.
//!
//! PALS synchrony is *relative*: what matters is that neighboring
//! nodes agree on the round boundary, not that anyone tracks an
//! external phase. (The trim would vote out a single reference sample
//! exactly as it votes out a faulty outlier, so an absolute anchor is
//! not even expressible here — the mesh free-runs as an ensemble.)
//! The skew invariant is therefore the **internal spread**,
//! `max - min` offset over alive nodes, which grows with mesh diameter
//! the way gradient clock synchronization predicts but stays bounded
//! for a fixed size.
//!
//! Faulty nodes are fail-silent, exactly as in the TRIX model: they
//! stop exchanging (neighbors drop their samples), free-run with
//! amplified drift, and rejoin displaced on repair — after which the
//! exchange pulls them back at the slew limit while the trim keeps
//! their outlier samples from dragging healthy neighbors away. That
//! asymmetry (outliers are ignored, yet re-converge) is what makes
//! trimmed exchange self-stabilizing where plain averaging is not.
//!
//! Determinism matches the rest of the workspace: per-node drift and
//! per-link jitter derive from `hash(seed, site[, tick])`, so a run is
//! a pure function of `(seed, fault schedule)`.

use sim_runtime::SplitMix64;

/// Shape and physics of a [`PalsMesh`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PalsParams {
    /// Mesh side: `k × k` nodes.
    pub k: usize,
    /// Healthy per-round oscillator drift half-amplitude (each node
    /// gets a fixed drift in `[-drift, drift]` per round).
    pub drift: f64,
    /// Free-run drift magnitude of a *faulty* node per round.
    pub fault_drift: f64,
    /// Per-link jitter half-amplitude on exchanged offsets.
    pub jitter: f64,
    /// Largest per-round correction (slew limit).
    pub max_slew: f64,
}

impl PalsParams {
    /// Default physics for a `k × k` mesh: healthy drift 0.005,
    /// faulty free-run 0.05, jitter 0.01, slew limit 0.2 per round —
    /// tuned so the internal spread of a healthy mesh stays under ~0.5
    /// up to `k = 16` while an episode's displacement lands well past
    /// 1.0.
    ///
    /// # Panics
    ///
    /// Panics on an empty mesh.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pals mesh must be non-empty");
        PalsParams {
            k,
            drift: 0.005,
            fault_drift: 0.05,
            jitter: 0.01,
            max_slew: 0.2,
        }
    }
}

/// Uniform value in `[-1, 1]` from a hash of the given words.
fn signed_unit(words: [u64; 3]) -> f64 {
    let mut h = 0u64;
    for w in words {
        h = SplitMix64::new(h ^ w).next_u64();
    }
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Lynch–Welch style fault-tolerant midpoint: sort, drop the extreme
/// sample on each side (when there are at least three, so the trim
/// never empties the pool), return the midpoint of what remains.
///
/// A plain median (own sample included) is *too* stubborn: a displaced
/// cluster's corner node sees two in-cluster and two out-cluster
/// samples, the median is its own value, and the cluster becomes a
/// stable fixed point that never erodes. Trimming one extreme per side
/// keeps single-outlier tolerance while the midpoint pulls minority
/// clusters back into the fold. With only two samples (a node isolated
/// down to one alive neighbor) nothing can be voted out and the
/// midpoint degrades to plain averaging — half-rate tracking beats
/// decoupling from the mesh entirely.
fn trimmed_midpoint(vals: &mut [f64]) -> f64 {
    vals.sort_by(f64::total_cmp);
    let trim = usize::from(vals.len() >= 3);
    let inner = &vals[trim..vals.len() - trim];
    (inner[0] + inner[inner.len() - 1]) / 2.0
}

/// The offset-exchange mesh. See the module docs.
#[derive(Debug, Clone)]
pub struct PalsMesh {
    params: PalsParams,
    stream: u64,
    offsets: Vec<f64>,
    drifts: Vec<f64>,
    tick: u64,
}

impl PalsMesh {
    /// A mesh in the synchronized state, with per-node drifts and
    /// jitter streams derived from `seed`.
    #[must_use]
    pub fn new(seed: u64, params: PalsParams) -> Self {
        let stream = SplitMix64::new(seed).next_u64();
        let n = params.k * params.k;
        let drifts = (0..n as u64)
            .map(|site| params.drift * signed_unit([stream, 0x6f7363, site]))
            .collect();
        PalsMesh {
            params,
            stream,
            offsets: vec![0.0; n],
            drifts,
            tick: 0,
        }
    }

    /// Node site id of `(row, col)`.
    #[must_use]
    pub fn site(&self, row: usize, col: usize) -> u64 {
        (row * self.params.k + col) as u64
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the mesh has no nodes (never true — the constructor
    /// rejects empty meshes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Current offset of node `site`.
    #[must_use]
    pub fn offset(&self, site: u64) -> f64 {
        self.offsets[site as usize]
    }

    /// Free-run drift of a faulty node (site-dependent sign and
    /// magnitude, same shape as the TRIX model).
    fn free_run_drift(&self, site: u64) -> f64 {
        let u = signed_unit([self.stream, 0x64726966, site]);
        let mag = self.params.fault_drift * (0.75 + 0.25 * u.abs());
        if u >= 0.0 {
            mag
        } else {
            -mag
        }
    }

    /// Advances one exchange round. `faulty(site)` answers the current
    /// fault state. Returns the post-round
    /// [`max_skew`](Self::max_skew).
    pub fn step(&mut self, faulty: impl Fn(u64) -> bool) -> f64 {
        let k = self.params.k;
        let prev = self.offsets.clone();
        let tick = self.tick;
        for r in 0..k {
            for c in 0..k {
                let site = self.site(r, c);
                let i = site as usize;
                if faulty(site) {
                    self.offsets[i] = prev[i] + self.free_run_drift(site);
                    continue;
                }
                // The local oscillator ticks first...
                let mine = prev[i] + self.drifts[i];
                // ...then the exchange: own offset plus the alive
                // 4-neighbor samples.
                let mut samples = [0.0f64; 5];
                let mut n = 0;
                samples[n] = mine;
                n += 1;
                let neighbors = [
                    (r > 0).then(|| self.site(r - 1, c)),
                    (r + 1 < k).then(|| self.site(r + 1, c)),
                    (c > 0).then(|| self.site(r, c - 1)),
                    (c + 1 < k).then(|| self.site(r, c + 1)),
                ];
                for nb in neighbors.into_iter().flatten() {
                    if !faulty(nb) {
                        let jit = self.params.jitter
                            * signed_unit([self.stream, site ^ (nb << 32), tick]);
                        samples[n] = prev[nb as usize] + jit;
                        n += 1;
                    }
                }
                let target = trimmed_midpoint(&mut samples[..n]);
                let slew =
                    (target - mine).clamp(-self.params.max_slew, self.params.max_slew);
                self.offsets[i] = mine + slew;
            }
        }
        self.tick += 1;
        self.max_skew(faulty)
    }

    /// Internal spread — `max - min` offset over alive nodes (0 when
    /// none are alive); faulty nodes are contained until they rejoin.
    #[must_use]
    pub fn max_skew(&self, faulty: impl Fn(u64) -> bool) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for site in 0..self.offsets.len() as u64 {
            if !faulty(site) {
                let v = self.offsets[site as usize];
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if hi >= lo {
            hi - lo
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_faults::{EpisodeConfig, EpisodePlan};

    const NONE: fn(u64) -> bool = |_| false;

    #[test]
    fn fault_free_mesh_stays_synchronized() {
        let mut m = PalsMesh::new(3, PalsParams::new(4));
        for _ in 0..300 {
            let skew = m.step(NONE);
            assert!(skew < 0.15, "nominal spread stays bounded, got {skew}");
        }
        // The gradient property: bigger meshes spread more, but stay
        // bounded well under an episode's displacement.
        let mut big = PalsMesh::new(3, PalsParams::new(16));
        let mut worst = 0.0f64;
        for _ in 0..300 {
            worst = worst.max(big.step(NONE));
        }
        assert!(worst < 0.6, "k=16 spread bounded, got {worst}");
    }

    #[test]
    fn rounds_are_deterministic() {
        let run = || {
            let mut m = PalsMesh::new(11, PalsParams::new(4));
            (0..100).map(|_| m.step(|s| s == 5)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn outage_is_contained_and_rejoin_heals() {
        let params = PalsParams::new(4);
        let mut m = PalsMesh::new(7, params);
        for _ in 0..50 {
            m.step(NONE);
        }
        let victim = m.site(1, 2);
        for _ in 0..60 {
            let skew = m.step(|s| s == victim);
            assert!(skew < 0.15, "fail-silent containment, got {skew}");
        }
        // Displacement relative to the (ensemble-drifting) mesh.
        let displaced = (m.offset(victim) - m.offset(m.site(1, 1))).abs();
        assert!(displaced > 1.0, "free-run drifted the victim, got {displaced}");
        let skew = m.step(NONE);
        assert!(skew > 0.5, "rejoin exposes the displacement, got {skew}");
        let budget = (displaced / params.max_slew) as usize + 60;
        let mut healed = false;
        for _ in 0..budget {
            if m.step(NONE) < 0.15 {
                healed = true;
                break;
            }
        }
        assert!(healed, "victim must re-align within {budget} rounds");
    }

    #[test]
    fn trim_keeps_outliers_from_dragging_neighbors() {
        let mut m = PalsMesh::new(9, PalsParams::new(4));
        for _ in 0..50 {
            m.step(NONE);
        }
        let victim = m.site(0, 1);
        for _ in 0..80 {
            m.step(|s| s == victim);
        }
        // First rejoin round: the victim's healthy neighbors must not
        // jump toward its outlier sample.
        let nb = m.site(0, 0);
        let before = m.offset(nb);
        m.step(NONE);
        assert!(
            (m.offset(nb) - before).abs() < 0.1,
            "trimmed exchange ignores the outlier sample"
        );
    }

    #[test]
    fn episode_plan_drives_the_round_closure() {
        let cfg = EpisodeConfig {
            rate: 0.4,
            min_duration: 20,
            max_duration: 40,
            horizon: 100,
        };
        let plan = EpisodePlan::new(5, 0, cfg);
        let mut m = PalsMesh::new(5, PalsParams::new(4));
        for t in 0..160 {
            let skew = m.step(|s| plan.faulty_at(s, t));
            assert!(skew.is_finite());
        }
    }
}
