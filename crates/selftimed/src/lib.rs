//! Self-timed and hybrid synchronization for VLSI processor arrays.
//!
//! Implements the alternatives to global clocking that Fisher & Kung
//! (1983) analyse:
//!
//! * [`handshake`] — request/acknowledge links and self-timed chains,
//!   whose per-transfer cost is independent of array size (Section I);
//! * [`hybrid`] — the Section VI scheme (Fig. 8): bounded-size clocked
//!   elements whose local clock nodes synchronize by handshake, giving
//!   a cycle time independent of array size even where Theorem 6 rules
//!   out constant-skew global clocking;
//! * [`metastability`] — the stoppable-clock argument: why the hybrid
//!   scheme cannot fail on a metastable flip-flop while a conventional
//!   synchronizer can;
//! * [`pals`] — PALS-style offset exchange: a mesh of free-running
//!   local clocks kept logically synchronous by trading offsets with
//!   neighbors and slewing toward a fault-tolerant trimmed midpoint,
//!   self-stabilizing after fault episodes.
//!
//! # Example
//!
//! ```
//! use selftimed::prelude::*;
//!
//! let link = HandshakeLink::new(1.0, 0.5, Protocol::TwoPhase);
//! let params = HybridParams::new(4, 2.0, 1.0, 0.1, link);
//! // Cycle time is the same for a 16×16 and a 1024×1024 array.
//! let small = HybridArray::over_mesh(16, params).cycle_time();
//! let huge = HybridArray::over_mesh(1024, params).cycle_time();
//! assert_eq!(small, huge);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataflow;
pub mod gate_element;
pub mod handshake;
pub mod hybrid;
pub mod metastability;
pub mod pals;

/// Convenient re-exports of the crate's primary items.
pub mod prelude {
    pub use crate::dataflow::{SelfTimedArray, WaveStats};
    pub use crate::gate_element::{ElementPair, PairRun};
    pub use crate::handshake::{
        ChainRun, FaultyChainRun, HandshakeChain, HandshakeLink, Protocol,
    };
    pub use crate::hybrid::{HybridArray, HybridParams};
    pub use crate::metastability::MetastabilityModel;
    pub use crate::pals::{PalsMesh, PalsParams};
}
