//! Metastability: why the hybrid scheme gates clocks instead of
//! sampling asynchronous signals.
//!
//! Section VI notes that subordinating the local clocks to the
//! self-timed network "avoids the possibility of synchronization
//! failure due to a flip-flop entering a metastable state, since an
//! element stops its clock synchronously and has its clock started
//! asynchronously". A conventional synchronizer, by contrast, samples
//! an asynchronous signal with a free-running clock and accepts a
//! small per-event failure probability.
//!
//! [`MetastabilityModel`] provides the standard exponential-resolution
//! model and Monte-Carlo counters for both disciplines.

use sim_runtime::{ParallelSweep, Rng, SimRng};

/// Exponential-resolution metastability model: an event landing
/// within `window` of a sampling edge goes metastable, and a
/// metastable state still unresolved after slack `t` occurs with
/// probability `e^(−t/tau)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetastabilityModel {
    window: f64,
    tau: f64,
}

impl MetastabilityModel {
    /// Creates a model with aperture `window` and resolution time
    /// constant `tau`.
    ///
    /// # Panics
    ///
    /// Panics unless both are positive.
    #[must_use]
    pub fn new(window: f64, tau: f64) -> Self {
        assert!(window > 0.0, "window must be positive");
        assert!(tau > 0.0, "tau must be positive");
        MetastabilityModel { window, tau }
    }

    /// Aperture window around a sampling edge.
    #[must_use]
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Resolution time constant.
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Probability that one asynchronous event, uniformly phased
    /// against a free-running clock of the given `period`, produces a
    /// failure after `slack` settle time:
    /// `(window / period) · e^(−slack/tau)`.
    ///
    /// # Panics
    ///
    /// Panics unless `period > window` and `slack ≥ 0`.
    #[must_use]
    pub fn failure_probability(&self, period: f64, slack: f64) -> f64 {
        assert!(period > self.window, "period must exceed the window");
        assert!(slack >= 0.0, "slack must be non-negative");
        (self.window / period) * (-slack / self.tau).exp()
    }

    /// Monte-Carlo count of metastable captures when `events`
    /// uniformly-phased asynchronous arrivals are sampled by a
    /// free-running clock: an arrival within `window` of an edge goes
    /// metastable.
    ///
    /// # Panics
    ///
    /// Panics unless `period > window`.
    #[must_use]
    pub fn count_naive_failures(&self, events: usize, period: f64, seed: u64) -> usize {
        assert!(period > self.window, "period must exceed the window");
        let mut rng = SimRng::seed_from_u64(seed);
        (0..events)
            .filter(|_| {
                let phase: f64 = rng.gen_range(0.0..period);
                let dist_to_edge = phase.min(period - phase);
                dist_to_edge < self.window / 2.0
            })
            .count()
    }

    /// Parallel variant of [`count_naive_failures`] for the E5 sweep:
    /// events are split into fixed chunks of 8192 that fan out across
    /// a [`ParallelSweep`], each chunk drawing from its own per-trial
    /// stream. The count depends only on `seed` — never on the worker
    /// count. (The stream differs from the sequential counter's, so
    /// the two counts agree in rate, not bit-for-bit.)
    ///
    /// # Panics
    ///
    /// Panics unless `period > window`.
    ///
    /// [`count_naive_failures`]: MetastabilityModel::count_naive_failures
    #[must_use]
    pub fn count_naive_failures_par(
        &self,
        events: usize,
        period: f64,
        seed: u64,
        sweep: &ParallelSweep,
    ) -> usize {
        assert!(period > self.window, "period must exceed the window");
        const CHUNK: usize = 8192;
        let chunks = events.div_ceil(CHUNK);
        sweep
            .run(chunks, seed, |i, rng| {
                let n = CHUNK.min(events - i * CHUNK);
                (0..n)
                    .filter(|_| {
                        let phase: f64 = rng.gen_range(0.0..period);
                        let dist_to_edge = phase.min(period - phase);
                        dist_to_edge < self.window / 2.0
                    })
                    .count()
            })
            .into_iter()
            .sum()
    }

    /// The stoppable-clock discipline of the hybrid scheme: the clock
    /// is stopped *synchronously* and restarted only after the
    /// handshake network asserts the asynchronous condition, so no
    /// sampling edge can coincide with an input change — structurally
    /// zero metastable captures, for any number of events.
    ///
    /// (This function exists to make the comparison explicit in
    /// experiment code; it is the constant 0.)
    #[must_use]
    pub fn count_stoppable_clock_failures(&self, events: usize) -> usize {
        let _ = events;
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_probability_shrinks_with_slack() {
        let m = MetastabilityModel::new(0.1, 0.5);
        let p0 = m.failure_probability(10.0, 0.0);
        let p1 = m.failure_probability(10.0, 1.0);
        let p2 = m.failure_probability(10.0, 2.0);
        assert!(p0 > p1 && p1 > p2);
        assert!((p0 - 0.01).abs() < 1e-12);
    }

    #[test]
    fn naive_sampling_fails_at_expected_rate() {
        let m = MetastabilityModel::new(0.2, 0.5);
        let events = 200_000;
        let failures = m.count_naive_failures(events, 10.0, 3);
        let expected = events as f64 * 0.2 / 10.0;
        let ratio = failures as f64 / expected;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn stoppable_clock_never_fails() {
        let m = MetastabilityModel::new(0.2, 0.5);
        assert_eq!(m.count_stoppable_clock_failures(1_000_000), 0);
        // While naive sampling of the same traffic does fail.
        assert!(m.count_naive_failures(1_000_000, 10.0, 4) > 0);
    }

    #[test]
    fn parallel_naive_count_is_thread_count_invariant() {
        let m = MetastabilityModel::new(0.2, 0.5);
        let events = 100_000; // spans several 8192-event chunks
        let base = m.count_naive_failures_par(events, 10.0, 3, &ParallelSweep::new(1));
        for threads in [2, 4] {
            assert_eq!(
                base,
                m.count_naive_failures_par(events, 10.0, 3, &ParallelSweep::new(threads)),
                "threads {threads} diverged"
            );
        }
        // Same expected rate as the sequential counter.
        let expected = events as f64 * 0.2 / 10.0;
        let ratio = base as f64 / expected;
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "exceed the window")]
    fn rejects_period_inside_window() {
        let m = MetastabilityModel::new(1.0, 0.5);
        let _ = m.failure_probability(0.5, 0.0);
    }
}
