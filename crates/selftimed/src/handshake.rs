//! Self-timed handshake communication (Section I and reference \[10\]).
//!
//! In a self-timed scheme, cells synchronize each data transfer
//! locally with a request/acknowledge protocol. Its defining property
//! — the reason the paper considers it at all — is that *the time for
//! a communication event between two cells is independent of the size
//! of the entire processor array*: only the local link matters. Its
//! cost is extra hardware and per-transfer delay.
//!
//! [`HandshakeLink`] models one link's transfer cost under two- or
//! four-phase signalling; [`HandshakeChain`] pushes a token stream
//! through a chain of self-timed stages and measures latency (grows
//! with length) versus throughput (does not).
//! [`HandshakeChain::run_traced`] additionally records every
//! request/acknowledge transition as `sim-trace` events, which the
//! offline checker validates against the 4-phase ordering discipline.

use sim_faults::{FaultPlan, HandshakeFault, RetryPolicy, RunOutcome};
use sim_observe::{ps_from_units, TraceBuf, TraceEvent};

/// Signalling discipline of a handshake link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Two-phase (transition) signalling: one request transition, one
    /// acknowledge transition per transfer.
    TwoPhase,
    /// Four-phase (return-to-zero) signalling: request and acknowledge
    /// each rise *and* fall per transfer.
    FourPhase,
}

/// One request/acknowledge link between two neighbouring cells.
///
/// # Examples
///
/// ```
/// use selftimed::handshake::{HandshakeLink, Protocol};
///
/// let link = HandshakeLink::new(1.0, 0.5, Protocol::TwoPhase);
/// // 2 wire crossings + 1 latch.
/// assert_eq!(link.transfer_time(), 2.5);
/// let rz = HandshakeLink::new(1.0, 0.5, Protocol::FourPhase);
/// // 4 wire crossings + 2 latch events.
/// assert_eq!(rz.transfer_time(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandshakeLink {
    wire_delay: f64,
    latch_delay: f64,
    protocol: Protocol,
}

impl HandshakeLink {
    /// Creates a link with the given one-way wire delay and latch
    /// (control logic) delay.
    ///
    /// # Panics
    ///
    /// Panics unless both delays are positive.
    #[must_use]
    pub fn new(wire_delay: f64, latch_delay: f64, protocol: Protocol) -> Self {
        assert!(wire_delay > 0.0, "wire delay must be positive");
        assert!(latch_delay > 0.0, "latch delay must be positive");
        HandshakeLink {
            wire_delay,
            latch_delay,
            protocol,
        }
    }

    /// One-way wire delay of the link.
    #[must_use]
    pub fn wire_delay(&self) -> f64 {
        self.wire_delay
    }

    /// Latch/control delay per latch event.
    #[must_use]
    pub fn latch_delay(&self) -> f64 {
        self.latch_delay
    }

    /// The protocol in use.
    #[must_use]
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Time for one complete data transfer across the link.
    ///
    /// Crucially, this depends only on the *local* link — never on the
    /// size of the array (contrast A6's equipotential `τ = α · P`).
    #[must_use]
    pub fn transfer_time(&self) -> f64 {
        match self.protocol {
            Protocol::TwoPhase => 2.0 * self.wire_delay + self.latch_delay,
            Protocol::FourPhase => 4.0 * self.wire_delay + 2.0 * self.latch_delay,
        }
    }
}

/// A chain of self-timed stages connected by identical handshake
/// links: the asynchronous counterpart of a one-dimensional array.
#[derive(Debug, Clone)]
pub struct HandshakeChain {
    stages: usize,
    link: HandshakeLink,
    stage_delay: f64,
}

/// Measurements from pushing a token stream through a
/// [`HandshakeChain`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainRun {
    /// Time for the first token to traverse the whole chain.
    pub latency: f64,
    /// Steady-state time between successive tokens emerging.
    pub period: f64,
}

/// Measurements from a lossy-wire run ([`HandshakeChain::run_faulty`]).
///
/// On [`RunOutcome::Deadlock`] the timing fields are infinite — the
/// token never emerged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyChainRun {
    /// How the run terminated: [`RunOutcome::Ok`] if every token made
    /// it through, [`RunOutcome::Deadlock`] if some transfer exhausted
    /// its retries (the lost transition was never resent).
    pub outcome: RunOutcome,
    /// Time for the first token to traverse the whole chain.
    pub latency: f64,
    /// Steady-state time between successive tokens emerging.
    pub period: f64,
    /// Request or acknowledge transitions the wires dropped.
    pub drops: u64,
    /// Requests re-sent after a timeout.
    pub retries: u64,
}

impl HandshakeChain {
    /// Creates a chain of `stages` cells, each with compute time
    /// `stage_delay`, joined by copies of `link`.
    ///
    /// # Panics
    ///
    /// Panics unless `stages > 0` and `stage_delay > 0`.
    #[must_use]
    pub fn new(stages: usize, link: HandshakeLink, stage_delay: f64) -> Self {
        assert!(stages > 0, "need at least one stage");
        assert!(stage_delay > 0.0, "stage delay must be positive");
        HandshakeChain {
            stages,
            link,
            stage_delay,
        }
    }

    /// Pushes `tokens` through the chain and measures latency and
    /// steady-state period.
    ///
    /// Each stage holds one token at a time; a stage starts a token
    /// when it has finished its previous one and the upstream transfer
    /// completes. The transfer pays [`HandshakeLink::transfer_time`].
    ///
    /// # Panics
    ///
    /// Panics if `tokens < 2`.
    #[must_use]
    pub fn run(&self, tokens: usize) -> ChainRun {
        self.run_inner(tokens, None)
    }

    /// Like [`HandshakeChain::run`], but records every protocol
    /// transition into `trace`: for each stage's outgoing link
    /// (`chain.link<i>`), the request/acknowledge transitions of every
    /// transfer, at the sim times the recurrence implies (1 model time
    /// unit = 1 ns of trace time). Two-phase links record one
    /// `Req`/`Ack` pair per transfer, four-phase links the full
    /// `Req+ → Ack+ → Req− → Ack−` return-to-zero sequence.
    ///
    /// Size `trace` to hold all transitions (`tokens × stages × 4`);
    /// a ring overflow drops the oldest transitions, which can leave a
    /// transfer's leading request outside the window.
    ///
    /// # Panics
    ///
    /// Panics if `tokens < 2`.
    #[must_use]
    pub fn run_traced(&self, tokens: usize, trace: &mut TraceBuf) -> ChainRun {
        self.run_inner(tokens, Some(trace))
    }

    fn run_inner(&self, tokens: usize, mut trace: Option<&mut TraceBuf>) -> ChainRun {
        assert!(tokens >= 2, "need at least two tokens to measure a period");
        let step = self.stage_delay + self.link.transfer_time();
        // completion[i] = completion time of the current token at stage i.
        let mut completion = vec![0.0f64; self.stages];
        let mut first_out = 0.0;
        let mut prev_out = 0.0;
        let mut period_sum = 0.0;
        for tok in 0..tokens {
            let mut upstream_done = 0.0f64;
            for (i, slot) in completion.iter_mut().enumerate() {
                let start = upstream_done.max(*slot);
                *slot = start + step;
                upstream_done = *slot;
                if let Some(buf) = trace.as_deref_mut() {
                    // The stage computes during [start, start+stage_delay],
                    // then its outgoing transfer occupies the link.
                    self.record_transfer(buf, i, start + self.stage_delay);
                }
            }
            let out = upstream_done;
            if tok == 0 {
                first_out = out;
            } else {
                period_sum += out - prev_out;
            }
            prev_out = out;
        }
        ChainRun {
            latency: first_out,
            period: period_sum / (tokens - 1) as f64,
        }
    }

    /// Pushes `tokens` through the chain over lossy wires: each
    /// transfer attempt may be dropped or slowed by the fault plan
    /// (domain-separated from the plan's gate and buffer streams).
    ///
    /// A dropped request or acknowledge costs the sender
    /// [`RetryPolicy::timeout`] model-time units before it re-sends; a
    /// transfer that exhausts [`RetryPolicy::max_retries`] deadlocks
    /// the chain — reported as a structured
    /// [`RunOutcome::Deadlock`], never a hang. A delayed transition
    /// stretches that one transfer by its `extra_frac`.
    ///
    /// Transfer attempts draw from per-`(stage, token, attempt)` fault
    /// streams, so the outcome is identical across thread counts and
    /// call orders.
    ///
    /// # Panics
    ///
    /// Panics if `tokens < 2`.
    #[must_use]
    pub fn run_faulty(
        &self,
        tokens: usize,
        plan: &FaultPlan,
        policy: RetryPolicy,
    ) -> FaultyChainRun {
        self.run_faulty_inner(tokens, plan, policy, None)
    }

    /// Like [`HandshakeChain::run_faulty`], but records protocol
    /// transitions and `fault_injected` markers into `trace`. Each
    /// dropped attempt records its doomed request followed by a
    /// `fault_injected` event on the same link (`drop_req`/`drop_ack`),
    /// which tells the offline checker the link resynchronized before
    /// the retry.
    ///
    /// # Panics
    ///
    /// Panics if `tokens < 2`.
    #[must_use]
    pub fn run_faulty_traced(
        &self,
        tokens: usize,
        plan: &FaultPlan,
        policy: RetryPolicy,
        trace: &mut TraceBuf,
    ) -> FaultyChainRun {
        self.run_faulty_inner(tokens, plan, policy, Some(trace))
    }

    fn run_faulty_inner(
        &self,
        tokens: usize,
        plan: &FaultPlan,
        policy: RetryPolicy,
        mut trace: Option<&mut TraceBuf>,
    ) -> FaultyChainRun {
        assert!(tokens >= 2, "need at least two tokens to measure a period");
        if !plan.is_enabled() && trace.is_none() {
            // Disabled faults cost one branch: the clean recurrence,
            // no per-attempt loop, no fault-stream queries.
            let clean = self.run(tokens);
            return FaultyChainRun {
                outcome: RunOutcome::Ok,
                latency: clean.latency,
                period: clean.period,
                drops: 0,
                retries: 0,
            };
        }
        let attempts_per_transfer = u64::from(policy.max_retries) + 1;
        let mut completion = vec![0.0f64; self.stages];
        let (mut drops, mut retries) = (0u64, 0u64);
        let mut first_out = 0.0;
        let mut prev_out = 0.0;
        let mut period_sum = 0.0;
        for tok in 0..tokens {
            let mut upstream_done = 0.0f64;
            for (i, slot) in completion.iter_mut().enumerate() {
                let start = upstream_done.max(*slot);
                // The stage computes, then fights the lossy link.
                let mut t = start + self.stage_delay;
                let mut done = None;
                for attempt in 0..attempts_per_transfer {
                    if attempt > 0 {
                        retries += 1;
                    }
                    let key = (tok as u64) * attempts_per_transfer + attempt;
                    match plan.handshake_fault(i as u64, key) {
                        Some(fault @ (HandshakeFault::DropReq | HandshakeFault::DropAck)) => {
                            drops += 1;
                            if let Some(buf) = trace.as_deref_mut() {
                                self.record_dropped_attempt(buf, i, t, fault);
                            }
                            t += policy.timeout;
                        }
                        Some(HandshakeFault::Delay { extra_frac }) => {
                            if let Some(buf) = trace.as_deref_mut() {
                                self.record_transfer(buf, i, t);
                            }
                            done = Some(t + self.link.transfer_time() * (1.0 + extra_frac));
                            break;
                        }
                        None => {
                            if let Some(buf) = trace.as_deref_mut() {
                                self.record_transfer(buf, i, t);
                            }
                            done = Some(t + self.link.transfer_time());
                            break;
                        }
                    }
                }
                let Some(done_t) = done else {
                    // Retries exhausted: the transfer is lost for good.
                    return FaultyChainRun {
                        outcome: RunOutcome::Deadlock,
                        latency: f64::INFINITY,
                        period: f64::INFINITY,
                        drops,
                        retries,
                    };
                };
                *slot = done_t;
                upstream_done = done_t;
            }
            let out = upstream_done;
            if tok == 0 {
                first_out = out;
            } else {
                period_sum += out - prev_out;
            }
            prev_out = out;
        }
        FaultyChainRun {
            outcome: RunOutcome::Ok,
            latency: first_out,
            period: period_sum / (tokens - 1) as f64,
            drops,
            retries,
        }
    }

    /// Records a dropped transfer attempt on stage `i`'s link: the
    /// doomed request, then the fault marker that resets the link.
    fn record_dropped_attempt(
        &self,
        buf: &mut TraceBuf,
        i: usize,
        t0: f64,
        fault: HandshakeFault,
    ) {
        let link = format!("chain.link{i}");
        let kind = match fault {
            HandshakeFault::DropReq => "drop_req",
            HandshakeFault::DropAck => "drop_ack",
            HandshakeFault::Delay { .. } => "hs_delay",
        };
        buf.record(TraceEvent::HandshakeReq {
            t_ps: ps_from_units(t0),
            link: link.clone(),
            rising: true,
        });
        buf.record(TraceEvent::FaultInjected {
            t_ps: ps_from_units(t0 + self.link.wire_delay()),
            site: link,
            kind: kind.to_string(),
        });
    }

    /// Records one transfer's protocol transitions on stage `i`'s
    /// outgoing link, request asserted at model time `t0`.
    fn record_transfer(&self, buf: &mut TraceBuf, i: usize, t0: f64) {
        let link = format!("chain.link{i}");
        let (w, l) = (self.link.wire_delay(), self.link.latch_delay());
        let req = |t: f64, rising: bool| TraceEvent::HandshakeReq {
            t_ps: ps_from_units(t),
            link: link.clone(),
            rising,
        };
        let ack = |t: f64, rising: bool| TraceEvent::HandshakeAck {
            t_ps: ps_from_units(t),
            link: link.clone(),
            rising,
        };
        match self.link.protocol() {
            Protocol::TwoPhase => {
                // Req crosses the wire, the latch acts, the Ack answers.
                buf.record(req(t0, true));
                buf.record(ack(t0 + w + l, true));
            }
            Protocol::FourPhase => {
                // Return-to-zero: Req+ → Ack+ → Req− → Ack−; the sender
                // sees the final Ack− one wire crossing later, closing
                // the 4w + 2l transfer window.
                buf.record(req(t0, true));
                buf.record(ack(t0 + w + l, true));
                buf.record(req(t0 + 2.0 * w + l, false));
                buf.record(ack(t0 + 3.0 * w + 2.0 * l, false));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> HandshakeLink {
        HandshakeLink::new(1.0, 0.5, Protocol::TwoPhase)
    }

    #[test]
    fn transfer_time_is_local() {
        // The same link cost regardless of how long the chain is —
        // the property that motivates self-timing for large arrays.
        let l = link();
        assert_eq!(l.transfer_time(), 2.5);
    }

    #[test]
    fn four_phase_costs_more() {
        let two = HandshakeLink::new(1.0, 0.5, Protocol::TwoPhase);
        let four = HandshakeLink::new(1.0, 0.5, Protocol::FourPhase);
        assert!(four.transfer_time() > two.transfer_time());
    }

    #[test]
    fn latency_grows_with_chain_length() {
        let short = HandshakeChain::new(4, link(), 1.0).run(10);
        let long = HandshakeChain::new(64, link(), 1.0).run(10);
        assert!(long.latency > short.latency);
        // Latency is stages × (stage + transfer).
        assert!((short.latency - 4.0 * 3.5).abs() < 1e-9);
    }

    #[test]
    fn throughput_independent_of_chain_length() {
        let short = HandshakeChain::new(4, link(), 1.0).run(50);
        let long = HandshakeChain::new(256, link(), 1.0).run(50);
        assert!(
            (short.period - long.period).abs() < 1e-9,
            "{} vs {}",
            short.period,
            long.period
        );
    }

    #[test]
    fn period_is_stage_plus_transfer() {
        let run = HandshakeChain::new(16, link(), 2.0).run(20);
        assert!((run.period - (2.0 + 2.5)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two tokens")]
    fn run_needs_tokens() {
        let _ = HandshakeChain::new(2, link(), 1.0).run(1);
    }

    #[test]
    fn faulty_run_with_disabled_plan_matches_clean_run() {
        use sim_faults::{FaultPlan, RetryPolicy};
        let chain = HandshakeChain::new(8, link(), 1.0);
        let clean = chain.run(12);
        let faulty = chain.run_faulty(12, &FaultPlan::disabled(), RetryPolicy::new(3, 10.0));
        assert!(faulty.outcome.is_ok());
        assert_eq!((faulty.drops, faulty.retries), (0, 0));
        assert!((faulty.latency - clean.latency).abs() < 1e-9);
        assert!((faulty.period - clean.period).abs() < 1e-9);
    }

    #[test]
    fn dropped_transitions_cost_timeouts_but_recover() {
        use sim_faults::{FaultPlan, FaultRates, RetryPolicy};
        let rates = FaultRates {
            handshake_drop: 0.3,
            ..FaultRates::none()
        };
        let chain = HandshakeChain::new(8, link(), 1.0);
        let clean = chain.run(12);
        let plan = FaultPlan::new(3, 0, rates);
        let faulty = chain.run_faulty(12, &plan, RetryPolicy::new(8, 10.0));
        assert!(faulty.outcome.is_ok(), "{:?}", faulty.outcome);
        assert!(faulty.drops > 0, "30% drop rate over 96 transfers");
        assert_eq!(faulty.retries, faulty.drops, "every drop was retried");
        assert!(faulty.period > clean.period, "timeouts cost throughput");
        // Determinism: the same plan reproduces the run exactly.
        assert_eq!(faulty, chain.run_faulty(12, &plan, RetryPolicy::new(8, 10.0)));
    }

    #[test]
    fn exhausted_retries_deadlock_instead_of_hanging() {
        use sim_faults::{FaultPlan, FaultRates, RetryPolicy, RunOutcome};
        let rates = FaultRates {
            handshake_drop: 1.0,
            ..FaultRates::none()
        };
        let chain = HandshakeChain::new(4, link(), 1.0);
        let run = chain.run_faulty(6, &FaultPlan::new(1, 0, rates), RetryPolicy::new(2, 10.0));
        assert_eq!(run.outcome, RunOutcome::Deadlock);
        assert!(run.latency.is_infinite() && run.period.is_infinite());
        assert_eq!(run.drops, 3, "initial attempt plus two retries, all lost");
    }

    #[test]
    fn faulty_trace_passes_the_checker() {
        use sim_faults::{FaultPlan, FaultRates, RetryPolicy};
        let rates = FaultRates {
            handshake_drop: 0.3,
            ..FaultRates::none()
        };
        for protocol in [Protocol::TwoPhase, Protocol::FourPhase] {
            let chain =
                HandshakeChain::new(4, HandshakeLink::new(1.0, 0.5, protocol), 1.0);
            let plan = FaultPlan::new(3, 0, rates);
            let mut buf = TraceBuf::new(1 << 12);
            let traced = chain.run_faulty_traced(8, &plan, RetryPolicy::new(8, 10.0), &mut buf);
            assert_eq!(traced, chain.run_faulty(8, &plan, RetryPolicy::new(8, 10.0)));
            assert!(traced.drops > 0, "want dropped transitions in the trace");
            let (events, dropped) = buf.into_ordered();
            assert_eq!(dropped, 0);
            assert!(events.iter().any(|e| e.kind() == "fault_injected"));
            let mut buf = TraceBuf::new(events.len());
            for ev in events {
                buf.record(ev);
            }
            let mut trace = sim_observe::Trace::new();
            trace.add_track("handshake", buf);
            let report = sim_observe::check_trace(&trace);
            assert!(report.is_ok(), "{protocol:?}: {:?}", report.violations);
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_obeys_the_protocol() {
        for protocol in [Protocol::TwoPhase, Protocol::FourPhase] {
            let chain =
                HandshakeChain::new(4, HandshakeLink::new(1.0, 0.5, protocol), 1.0);
            let plain = chain.run(6);
            let mut buf = TraceBuf::new(4096);
            let traced = chain.run_traced(6, &mut buf);
            assert_eq!(plain, traced, "{protocol:?}");

            assert_eq!(buf.dropped(), 0);
            let per_transfer = match protocol {
                Protocol::TwoPhase => 2,
                Protocol::FourPhase => 4,
            };
            assert_eq!(buf.len(), 6 * 4 * per_transfer, "{protocol:?}");

            let mut trace = sim_observe::Trace::new();
            trace.add_track("handshake", buf);
            let report = sim_observe::check_trace(&trace);
            assert!(report.is_ok(), "{protocol:?}: {:?}", report.violations);
        }
    }
}
