//! A gate-level pair of hybrid elements: Fig. 8's "an element stops
//! its clock synchronously and has its clock started asynchronously",
//! implemented as an actual circuit and simulated at the gate level.
//!
//! Each element owns a stoppable (gated ring-oscillator) local clock
//! and a one-bit *phase* register toggled by its own clock. The
//! synchronization network is two gates:
//!
//! ```text
//! enable_A = XNOR(phase_A, phase_B)   (A ticks when it is not ahead)
//! enable_B = XOR (phase_A, phase_B)   (B ticks when it is behind)
//! ```
//!
//! A's tick flips `phase_A`, which *synchronously* drops `enable_A`
//! (the element stops its own clock) and *asynchronously* raises
//! `enable_B` (the neighbour's clock is started by the handshake).
//! Ticks therefore alternate A, B, A, B, … in lock step, at a rate set
//! entirely by local gate delays — the hybrid scheme's constant cycle,
//! with zero setup/hold violations by construction.

use desim::engine::{GateFn, NetId, Simulator};
use desim::stoppable_clock::{add_stoppable_clock, StoppableClock};
use desim::time::SimTime;

/// The two-element gate-level hybrid network.
#[derive(Debug)]
pub struct ElementPair {
    sim: Simulator,
    phase_a: NetId,
    phase_b: NetId,
    clock_a: StoppableClock,
    clock_b: StoppableClock,
}

/// Result of running the element pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairRun {
    /// Tick count of element A (phase transitions).
    pub ticks_a: usize,
    /// Tick count of element B.
    pub ticks_b: usize,
    /// Mean time between consecutive A-ticks, in picoseconds.
    pub period_ps: u64,
    /// Setup/hold violations recorded anywhere in the circuit.
    pub violations: usize,
    /// Interleaved tick log: `(time, element)` with `0 = A, 1 = B`.
    pub log: Vec<(SimTime, u8)>,
}

impl ElementPair {
    /// Builds the pair. `half_stages`, `inv_delay`, `nand_delay` size
    /// each element's ring oscillator; the phase registers get
    /// generous windows that the protocol must (and does) respect.
    ///
    /// # Panics
    ///
    /// Panics on non-positive delays (see
    /// [`add_stoppable_clock`]).
    #[must_use]
    pub fn new(half_stages: usize, inv_delay: SimTime, nand_delay: SimTime) -> Self {
        let mut sim = Simulator::new();
        let clock_a = add_stoppable_clock(&mut sim, half_stages, inv_delay, nand_delay);
        let clock_b = add_stoppable_clock(&mut sim, half_stages, inv_delay, nand_delay);
        // Phase registers: Q toggles every local clock tick
        // (D = NOT Q).
        let (phase_a, phase_b) = (sim.add_net(), sim.add_net());
        let (da, db) = (sim.add_net(), sim.add_net());
        let reg_delay = SimTime::from_ps(30);
        let window = SimTime::from_ps(40);
        sim.add_register(da, clock_a.clk, phase_a, window, window, reg_delay);
        sim.add_register(db, clock_b.clk, phase_b, window, window, reg_delay);
        sim.add_inverter(phase_a, da, SimTime::from_ps(20), SimTime::from_ps(20));
        sim.add_inverter(phase_b, db, SimTime::from_ps(20), SimTime::from_ps(20));
        // The synchronization network.
        let gd = SimTime::from_ps(25);
        sim.add_gate2(GateFn::Xnor, phase_a, phase_b, clock_a.enable, gd, gd);
        sim.add_gate2(GateFn::Xor, phase_a, phase_b, clock_b.enable, gd, gd);
        sim.watch(phase_a);
        sim.watch(phase_b);
        // Also watched for waveform capture (`run_capture`): the local
        // clocks and their enables tell the whole stop/start story.
        sim.watch(clock_a.clk);
        sim.watch(clock_b.clk);
        sim.watch(clock_a.enable);
        sim.watch(clock_b.enable);
        ElementPair {
            sim,
            phase_a,
            phase_b,
            clock_a,
            clock_b,
        }
    }

    /// The local ring period of each element's clock.
    #[must_use]
    pub fn local_period(&self) -> SimTime {
        self.clock_a.period
    }

    /// Enables event-lifecycle tracing on the underlying simulator
    /// (see [`Simulator::enable_trace`]) and marks both local clocks,
    /// so a traced run records `ClockEdge` events for `clk_a`/`clk_b`.
    /// Call before [`ElementPair::run_capture`]; retrieve the ring
    /// from the returned simulator with `take_trace`.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.sim.enable_trace(capacity);
        // Both marked phase 0: the local clocks are independent rings,
        // not a two-phase discipline, so A4 non-overlap does not apply.
        self.sim.mark_clock(self.clock_a.clk, "clk_a", 0);
        self.sim.mark_clock(self.clock_b.clk, "clk_b", 0);
    }

    /// Runs until `until` and reports tick statistics.
    ///
    /// # Panics
    ///
    /// Panics if the network deadlocks (fewer than two A-ticks).
    #[must_use]
    pub fn run(self, until: SimTime) -> PairRun {
        self.run_capture(until).0
    }

    /// Like [`ElementPair::run`], but also hands back the finished
    /// simulator together with named signals of interest
    /// (`clk_a/clk_b`, `enable_a/enable_b`, `phase_a/phase_b`) — what
    /// a VCD dump or an engine trace wants.
    ///
    /// # Panics
    ///
    /// As for [`ElementPair::run`].
    #[must_use]
    pub fn run_capture(
        mut self,
        until: SimTime,
    ) -> (PairRun, Simulator, Vec<(NetId, &'static str)>) {
        self.sim.run_until(until);
        let signals = vec![
            (self.clock_a.clk, "clk_a"),
            (self.clock_b.clk, "clk_b"),
            (self.clock_a.enable, "enable_a"),
            (self.clock_b.enable, "enable_b"),
            (self.phase_a, "phase_a"),
            (self.phase_b, "phase_b"),
        ];
        let a: Vec<SimTime> = self
            .sim
            .transitions(self.phase_a)
            .iter()
            .map(|&(t, _)| t)
            .collect();
        let b: Vec<SimTime> = self
            .sim
            .transitions(self.phase_b)
            .iter()
            .map(|&(t, _)| t)
            .collect();
        assert!(a.len() >= 2, "element pair deadlocked: A ticks {}", a.len());
        let period_ps =
            (a.last().expect("non-empty").as_ps() - a[0].as_ps()) / (a.len() as u64 - 1);
        let mut log: Vec<(SimTime, u8)> = a
            .iter()
            .map(|&t| (t, 0u8))
            .chain(b.iter().map(|&t| (t, 1u8)))
            .collect();
        log.sort();
        let run = PairRun {
            ticks_a: a.len(),
            ticks_b: b.len(),
            period_ps,
            violations: self.sim.violations().len(),
            log,
        };
        (run, self.sim, signals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: u64) -> SimTime {
        SimTime::from_ps(v)
    }

    fn run_pair() -> PairRun {
        ElementPair::new(2, ps(50), ps(80)).run(ps(200_000))
    }

    #[test]
    fn elements_tick_in_lock_step() {
        let run = run_pair();
        assert!(run.ticks_a > 10, "{run:?}");
        // Lock step: counts within one of each other.
        assert!(
            run.ticks_a.abs_diff(run.ticks_b) <= 1,
            "A {} vs B {}",
            run.ticks_a,
            run.ticks_b
        );
        // And strictly alternating, A first.
        for (i, &(_, who)) in run.log.iter().enumerate() {
            assert_eq!(who as usize, i % 2, "tick order broke at {i}: {:?}", run.log);
        }
    }

    #[test]
    fn no_timing_violations_by_construction() {
        let run = run_pair();
        assert_eq!(run.violations, 0, "{run:?}");
    }

    #[test]
    fn pair_rate_constant_over_time() {
        let short = ElementPair::new(2, ps(50), ps(80)).run(ps(100_000));
        let long = ElementPair::new(2, ps(50), ps(80)).run(ps(400_000));
        let ratio = long.period_ps as f64 / short.period_ps as f64;
        assert!((0.9..1.1).contains(&ratio), "{short:?} vs {long:?}");
    }

    #[test]
    fn capture_exposes_signals_and_a_checkable_trace() {
        let mut pair = ElementPair::new(2, ps(50), ps(80));
        pair.enable_trace(1 << 14);
        let (run, mut sim, signals) = pair.run_capture(ps(200_000));
        assert_eq!(run, run_pair(), "capture must not perturb the run");
        assert_eq!(signals.len(), 6);
        for &(net, name) in &signals {
            assert!(
                !sim.transitions(net).is_empty(),
                "signal {name} never toggled"
            );
        }
        let buf = sim.take_trace().expect("tracing was enabled");
        let mut trace = sim_observe::Trace::new();
        trace.add_track("pair", buf);
        assert!(trace.event_count() > 0);
        let report = sim_observe::check_trace(&trace);
        assert!(report.is_ok(), "{:?}", report.violations);
    }

    #[test]
    fn slower_gates_slow_the_handshake_rate() {
        let fast = ElementPair::new(2, ps(50), ps(80)).run(ps(300_000));
        let slow = ElementPair::new(2, ps(150), ps(240)).run(ps(900_000));
        assert!(slow.period_ps > 2 * fast.period_ps, "{fast:?} vs {slow:?}");
    }
}
