//! Fully self-timed execution over arbitrary communication graphs.
//!
//! Generalizes the linear-pipeline analysis of
//! [`systolic::throughput`] to any COMM topology: a cell may begin
//! wave `w` once it has finished wave `w − 1` *and* every
//! communicating neighbour has delivered its wave-`w − 1` output
//! (each delivery paying the handshake cost):
//!
//! ```text
//! t[v][w] = max(t[v][w−1], max over neighbours u of t[u][w−1] + h) + d[v][w]
//! ```
//!
//! Cell delays are data-dependent (fast with probability `p`, worst
//! case otherwise), re-drawn per cell per wave. The paper's Section I
//! argument — that a large array's throughput decays to worst case —
//! shows up here on meshes and trees exactly as on paths, with the
//! decay *faster* the higher the node degree (more neighbours to wait
//! for).

use array_layout::graph::{CellId, CommGraph};
use desim::stats::mean_std;
use sim_runtime::{Rng, SimRng};

/// A self-timed array over an arbitrary communication graph.
#[derive(Debug, Clone)]
pub struct SelfTimedArray {
    comm: CommGraph,
    fast: f64,
    slow: f64,
    p_fast: f64,
    handshake: f64,
}

/// Measurements from a self-timed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveStats {
    /// Mean steady-state time per wave.
    pub period: f64,
    /// Completion time of the final wave.
    pub makespan: f64,
    /// Std-dev of the steady-state per-wave times.
    pub period_std: f64,
}

impl SelfTimedArray {
    /// Creates the array model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fast ≤ slow`, `0 ≤ p_fast ≤ 1`, and
    /// `handshake ≥ 0`.
    #[must_use]
    pub fn new(comm: &CommGraph, fast: f64, slow: f64, p_fast: f64, handshake: f64) -> Self {
        assert!(0.0 < fast && fast <= slow, "need 0 < fast <= slow");
        assert!((0.0..=1.0).contains(&p_fast), "p_fast must be in [0, 1]");
        assert!(handshake >= 0.0, "handshake must be non-negative");
        SelfTimedArray {
            comm: comm.clone(),
            fast,
            slow,
            p_fast,
            handshake,
        }
    }

    /// The communication graph.
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Worst-case clocked period for the same cells: `slow` plus the
    /// handshake the clocked design does *not* pay.
    #[must_use]
    pub fn clocked_period(&self) -> f64 {
        self.slow
    }

    /// Simulates `waves` waves and measures the steady-state period
    /// over the second half.
    ///
    /// # Panics
    ///
    /// Panics if `waves < 4`.
    #[must_use]
    pub fn simulate(&self, waves: usize, seed: u64) -> WaveStats {
        assert!(waves >= 4, "need a few waves to measure steady state");
        let n = self.comm.node_count();
        let neighbors: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                self.comm
                    .undirected_neighbors(CellId::new(i))
                    .into_iter()
                    .map(CellId::index)
                    .collect()
            })
            .collect();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut prev = vec![0.0f64; n];
        let mut cur = vec![0.0f64; n];
        let mut wave_ends = Vec::with_capacity(waves);
        for _ in 0..waves {
            for v in 0..n {
                let mut ready = prev[v];
                for &u in &neighbors[v] {
                    ready = ready.max(prev[u] + self.handshake);
                }
                let d = if rng.gen_f64() < self.p_fast {
                    self.fast
                } else {
                    self.slow
                };
                cur[v] = ready + d;
            }
            wave_ends.push(cur.iter().copied().fold(0.0, f64::max));
            std::mem::swap(&mut prev, &mut cur);
        }
        let half = waves / 2;
        let diffs: Vec<f64> = wave_ends[half..]
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect();
        let (period, period_std) = if diffs.is_empty() {
            (wave_ends[waves - 1] / waves as f64, 0.0)
        } else {
            mean_std(&diffs)
        };
        WaveStats {
            period,
            makespan: wave_ends[waves - 1],
            period_std,
        }
    }

    /// Self-timed advantage over the worst-case-clocked design
    /// (`clocked_period / measured period`, ≥ ~1 when handshake-free).
    #[must_use]
    pub fn advantage(&self, waves: usize, seed: u64) -> f64 {
        self.clocked_period() / self.simulate(waves, seed).period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_delays_give_exact_period() {
        let comm = CommGraph::mesh(4, 4);
        let arr = SelfTimedArray::new(&comm, 2.0, 2.0, 1.0, 0.5);
        let stats = arr.simulate(40, 1);
        // Every wave: neighbour ready + handshake + delay.
        assert!((stats.period - 2.5).abs() < 1e-9, "{stats:?}");
        assert!(stats.period_std < 1e-9);
    }

    #[test]
    fn isolated_cell_never_pays_handshake() {
        let comm = CommGraph::linear(1);
        let arr = SelfTimedArray::new(&comm, 1.0, 3.0, 1.0, 5.0);
        let stats = arr.simulate(20, 2);
        assert!((stats.period - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mesh_decays_at_least_as_fast_as_path() {
        // Same cell count; the mesh's extra coupling (degree 4 vs 2)
        // drags the period at least as close to worst case.
        let path = CommGraph::linear(64);
        let mesh = CommGraph::mesh(8, 8);
        let p_path = SelfTimedArray::new(&path, 1.0, 2.0, 0.9, 0.0)
            .simulate(600, 3)
            .period;
        let p_mesh = SelfTimedArray::new(&mesh, 1.0, 2.0, 0.9, 0.0)
            .simulate(600, 3)
            .period;
        assert!(
            p_mesh >= p_path - 0.05,
            "mesh {p_mesh} should not beat path {p_path}"
        );
    }

    #[test]
    fn advantage_decays_with_size_on_meshes() {
        let small = CommGraph::mesh(2, 2);
        let large = CommGraph::mesh(16, 16);
        let a_small = SelfTimedArray::new(&small, 1.0, 2.0, 0.9, 0.0).advantage(500, 5);
        let a_large = SelfTimedArray::new(&large, 1.0, 2.0, 0.9, 0.0).advantage(500, 5);
        assert!(a_small > a_large, "{a_small} vs {a_large}");
        assert!(a_large < 1.35, "{a_large}");
    }

    #[test]
    fn handshake_cost_slows_every_wave() {
        let comm = CommGraph::mesh(6, 6);
        let free = SelfTimedArray::new(&comm, 1.0, 2.0, 0.9, 0.0).simulate(300, 7);
        let costly = SelfTimedArray::new(&comm, 1.0, 2.0, 0.9, 0.6).simulate(300, 7);
        assert!(costly.period > free.period + 0.5, "{costly:?} vs {free:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let comm = CommGraph::hex(4, 4);
        let arr = SelfTimedArray::new(&comm, 1.0, 2.0, 0.8, 0.1);
        assert_eq!(arr.simulate(100, 9), arr.simulate(100, 9));
    }

    #[test]
    fn works_on_tree_topologies() {
        let comm = CommGraph::complete_binary_tree(6);
        let arr = SelfTimedArray::new(&comm, 1.0, 2.0, 0.9, 0.1);
        let stats = arr.simulate(200, 4);
        assert!(stats.period >= 1.1);
        assert!(stats.period <= 2.0 + 0.1 + 1e-9);
    }
}
