//! The hybrid synchronization scheme of Section VI (Fig. 8).
//!
//! When global clocking cannot give constant rates — two-dimensional
//! arrays under the summation model, or any array when the invariance
//! assumption A8 fails — the paper proposes a hybrid: break the layout
//! into bounded-size *elements*, give each element a local clock
//! distribution node, and let the element nodes synchronize among
//! themselves with a self-timed handshake network. All synchronization
//! paths become local, so the cycle time is a constant independent of
//! array size, while the cells themselves are designed as if globally
//! clocked.
//!
//! [`HybridArray`] partitions an `n × n` mesh into `e × e` elements
//! and provides both the analytic cycle time and a wave-accurate
//! simulation (element `E` starts tick `w` once its neighbours have
//! completed tick `w − 1`).

use crate::handshake::HandshakeLink;
use desim::stats::sample_normal;
use sim_faults::{FaultPlan, HandshakeFault, RetryPolicy, RunOutcome};
use sim_runtime::SimRng;

/// Parameters of a hybrid-synchronized array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridParams {
    /// Element edge length, in cells (`e × e` cells per element).
    pub element_size: usize,
    /// Cell compute + propagate delay δ (A5).
    pub cell_delta: f64,
    /// Per-unit-length wire delay within an element's local clock
    /// distribution.
    pub unit_wire_delay: f64,
    /// Per-unit-length delay *variation* within an element (the ε of
    /// Section III), bounding local skew by `ε · s_local`.
    pub unit_wire_variation: f64,
    /// The handshake link joining neighbouring element clock nodes.
    pub link: HandshakeLink,
}

impl HybridParams {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics unless sizes and delays are positive and the variation
    /// is smaller than the nominal delay.
    #[must_use]
    pub fn new(
        element_size: usize,
        cell_delta: f64,
        unit_wire_delay: f64,
        unit_wire_variation: f64,
        link: HandshakeLink,
    ) -> Self {
        assert!(element_size > 0, "element size must be positive");
        assert!(cell_delta > 0.0, "cell delta must be positive");
        assert!(unit_wire_delay > 0.0, "wire delay must be positive");
        assert!(
            (0.0..unit_wire_delay).contains(&unit_wire_variation),
            "variation must satisfy 0 <= eps < m"
        );
        HybridParams {
            element_size,
            cell_delta,
            unit_wire_delay,
            unit_wire_variation,
            link,
        }
    }
}

/// An `n × n` mesh partitioned into clocked elements synchronized by
/// handshake (Fig. 8).
///
/// # Examples
///
/// ```
/// use selftimed::handshake::{HandshakeLink, Protocol};
/// use selftimed::hybrid::{HybridArray, HybridParams};
///
/// let link = HandshakeLink::new(1.0, 0.5, Protocol::TwoPhase);
/// let params = HybridParams::new(4, 2.0, 1.0, 0.1, link);
/// let small = HybridArray::over_mesh(16, params);
/// let large = HybridArray::over_mesh(256, params);
/// // The headline property: cycle time independent of array size.
/// assert_eq!(small.cycle_time(), large.cycle_time());
/// ```
#[derive(Debug, Clone)]
pub struct HybridArray {
    n: usize,
    elements_per_side: usize,
    params: HybridParams,
}

impl HybridArray {
    /// Partitions an `n × n` mesh into `⌈n/e⌉ × ⌈n/e⌉` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn over_mesh(n: usize, params: HybridParams) -> Self {
        assert!(n > 0, "array must be non-empty");
        HybridArray {
            n,
            elements_per_side: n.div_ceil(params.element_size),
            params,
        }
    }

    /// Array edge length in cells.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of elements along one side.
    #[must_use]
    pub fn elements_per_side(&self) -> usize {
        self.elements_per_side
    }

    /// Total number of elements.
    #[must_use]
    pub fn element_count(&self) -> usize {
        self.elements_per_side * self.elements_per_side
    }

    /// Worst-case local clock skew between communicating cells inside
    /// one element: the summation model applied to a local
    /// distribution whose path length is bounded by the element
    /// perimeter — a constant in `e`, never in `n`.
    #[must_use]
    pub fn local_skew(&self) -> f64 {
        let e = self.params.element_size as f64;
        self.params.unit_wire_variation * 2.0 * e
    }

    /// Time for an element's local node to distribute one clock event
    /// to its cells (local equipotential distribution over a path of
    /// at most the element diameter).
    #[must_use]
    pub fn local_distribution_time(&self) -> f64 {
        let e = self.params.element_size as f64;
        self.params.unit_wire_delay * e
    }

    /// The hybrid cycle time: handshake with the neighbouring element
    /// nodes + local clock distribution + local skew + δ.
    ///
    /// Every term depends only on the element size and link — the
    /// cycle time is **independent of `n`**, which is the theorem-level
    /// claim of Section VI.
    #[must_use]
    pub fn cycle_time(&self) -> f64 {
        self.params.link.transfer_time()
            + self.local_distribution_time()
            + self.local_skew()
            + self.params.cell_delta
    }

    /// Wave-accurate simulation: element `E` starts tick `w` once all
    /// its grid neighbours completed tick `w − 1` (the handshake), and
    /// each tick locally costs [`HybridArray::cycle_time`] plus a
    /// Gaussian jitter (`jitter_std`, clipped at zero).
    ///
    /// Returns the measured steady-state tick period. With zero jitter
    /// this equals `cycle_time()` exactly, for every `n`.
    ///
    /// # Panics
    ///
    /// Panics if `waves < 4` or `jitter_std < 0`.
    #[must_use]
    pub fn simulate_period(&self, waves: usize, jitter_std: f64, seed: u64) -> f64 {
        assert!(waves >= 4, "need a few waves to measure steady state");
        assert!(jitter_std >= 0.0, "jitter must be non-negative");
        let side = self.elements_per_side;
        let base = self.cycle_time();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut prev = vec![0.0f64; side * side];
        let mut cur = vec![0.0f64; side * side];
        let mut completions = Vec::with_capacity(waves);
        for _ in 0..waves {
            for r in 0..side {
                for c in 0..side {
                    let i = r * side + c;
                    let mut ready = prev[i];
                    if r > 0 {
                        ready = ready.max(prev[i - side]);
                    }
                    if r + 1 < side {
                        ready = ready.max(prev[i + side]);
                    }
                    if c > 0 {
                        ready = ready.max(prev[i - 1]);
                    }
                    if c + 1 < side {
                        ready = ready.max(prev[i + 1]);
                    }
                    let tick = (base + sample_normal(&mut rng, 0.0, jitter_std)).max(0.0);
                    cur[i] = ready + tick;
                }
            }
            completions.push(cur.iter().copied().fold(0.0, f64::max));
            std::mem::swap(&mut prev, &mut cur);
        }
        let half = waves / 2;
        (completions[waves - 1] - completions[half - 1]) / (waves - half) as f64
    }

    /// Wave-accurate simulation over lossy inter-element handshake
    /// wires: each element's per-wave rendezvous with its neighbours
    /// may be dropped (costing [`RetryPolicy::timeout`] per re-send)
    /// or slowed by the fault plan. An element that exhausts its
    /// retries stalls the whole array — returned as a structured
    /// [`RunOutcome::Deadlock`] with an infinite period, never a hang.
    ///
    /// Jitter is omitted so the run is a pure function of
    /// `(plan, waves, policy)` — byte-identical across thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `waves < 4`.
    #[must_use]
    pub fn simulate_period_faulty(
        &self,
        waves: usize,
        plan: &FaultPlan,
        policy: RetryPolicy,
    ) -> (RunOutcome, f64) {
        assert!(waves >= 4, "need a few waves to measure steady state");
        let side = self.elements_per_side;
        let base = self.cycle_time();
        let attempts_per_wave = u64::from(policy.max_retries) + 1;
        let mut prev = vec![0.0f64; side * side];
        let mut cur = vec![0.0f64; side * side];
        let mut completions = Vec::with_capacity(waves);
        for w in 0..waves {
            for r in 0..side {
                for c in 0..side {
                    let i = r * side + c;
                    let mut ready = prev[i];
                    if r > 0 {
                        ready = ready.max(prev[i - side]);
                    }
                    if r + 1 < side {
                        ready = ready.max(prev[i + side]);
                    }
                    if c > 0 {
                        ready = ready.max(prev[i - 1]);
                    }
                    if c + 1 < side {
                        ready = ready.max(prev[i + 1]);
                    }
                    // The element's rendezvous with its neighbours for
                    // this wave, over lossy wires.
                    let mut penalty = 0.0;
                    let mut synced = false;
                    for attempt in 0..attempts_per_wave {
                        let key = (w as u64) * attempts_per_wave + attempt;
                        match plan.handshake_fault(i as u64, key) {
                            Some(HandshakeFault::DropReq | HandshakeFault::DropAck) => {
                                penalty += policy.timeout;
                            }
                            Some(HandshakeFault::Delay { extra_frac }) => {
                                penalty += extra_frac * self.params.link.transfer_time();
                                synced = true;
                                break;
                            }
                            None => {
                                synced = true;
                                break;
                            }
                        }
                    }
                    if !synced {
                        return (RunOutcome::Deadlock, f64::INFINITY);
                    }
                    cur[i] = ready + base + penalty;
                }
            }
            completions.push(cur.iter().copied().fold(0.0, f64::max));
            std::mem::swap(&mut prev, &mut cur);
        }
        let half = waves / 2;
        let period = (completions[waves - 1] - completions[half - 1]) / (waves - half) as f64;
        (RunOutcome::Ok, period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::Protocol;

    fn params(e: usize) -> HybridParams {
        HybridParams::new(
            e,
            2.0,
            1.0,
            0.1,
            HandshakeLink::new(1.0, 0.5, Protocol::TwoPhase),
        )
    }

    #[test]
    fn cycle_time_independent_of_array_size() {
        let p = params(4);
        let cycles: Vec<f64> = [8usize, 32, 128, 512]
            .iter()
            .map(|&n| HybridArray::over_mesh(n, p).cycle_time())
            .collect();
        for w in cycles.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn cycle_time_grows_with_element_size() {
        let small = HybridArray::over_mesh(64, params(2)).cycle_time();
        let big = HybridArray::over_mesh(64, params(16)).cycle_time();
        assert!(big > small);
    }

    #[test]
    fn element_grid_covers_array() {
        let h = HybridArray::over_mesh(20, params(6));
        assert_eq!(h.elements_per_side(), 4);
        assert_eq!(h.element_count(), 16);
    }

    #[test]
    fn simulated_period_matches_analytic_without_jitter() {
        for n in [8usize, 64] {
            let h = HybridArray::over_mesh(n, params(4));
            let measured = h.simulate_period(50, 0.0, 1);
            assert!(
                (measured - h.cycle_time()).abs() < 1e-9,
                "n={n}: {measured} vs {}",
                h.cycle_time()
            );
        }
    }

    #[test]
    fn simulated_period_stays_bounded_under_jitter() {
        // Jitter couples neighbouring elements, raising the period by
        // a bounded constant — not by anything that grows with n.
        let p = params(4);
        let small = HybridArray::over_mesh(16, p).simulate_period(200, 0.3, 2);
        let large = HybridArray::over_mesh(128, p).simulate_period(200, 0.3, 2);
        let base = HybridArray::over_mesh(16, p).cycle_time();
        assert!(small >= base - 1e-9);
        assert!(large >= base - 1e-9);
        // The large array pays a little more coupling penalty, but the
        // ratio stays near 1 (bounded LPP constant, not Θ(n) growth).
        assert!(large / small < 1.25, "{large} vs {small}");
    }

    #[test]
    fn faulty_period_degrades_gracefully_and_deterministically() {
        use sim_faults::{FaultPlan, FaultRates, RetryPolicy, RunOutcome};
        let h = HybridArray::over_mesh(16, params(4));
        let clean = h.simulate_period(40, 0.0, 1);
        // Disabled plan reproduces the clean run.
        let (outcome, period) =
            h.simulate_period_faulty(40, &FaultPlan::disabled(), RetryPolicy::new(3, 10.0));
        assert_eq!(outcome, RunOutcome::Ok);
        assert!((period - clean).abs() < 1e-9);
        // Moderate drops recover via retries but cost throughput.
        let rates = FaultRates {
            handshake_drop: 0.2,
            ..FaultRates::none()
        };
        let plan = FaultPlan::new(7, 0, rates);
        let policy = RetryPolicy::new(8, 10.0);
        let (outcome, degraded) = h.simulate_period_faulty(40, &plan, policy);
        assert_eq!(outcome, RunOutcome::Ok);
        assert!(degraded > clean, "{degraded} vs {clean}");
        assert_eq!(
            h.simulate_period_faulty(40, &plan, policy),
            (outcome, degraded)
        );
        // Zero retries under certain drops: a classified deadlock.
        let certain = FaultRates {
            handshake_drop: 1.0,
            ..FaultRates::none()
        };
        let (outcome, period) = h.simulate_period_faulty(
            40,
            &FaultPlan::new(7, 0, certain),
            RetryPolicy::new(0, 10.0),
        );
        assert_eq!(outcome, RunOutcome::Deadlock);
        assert!(period.is_infinite());
    }

    #[test]
    fn local_skew_bounded_by_element_perimeter() {
        let h = HybridArray::over_mesh(100, params(5));
        assert!((h.local_skew() - 0.1 * 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "element size")]
    fn rejects_zero_element() {
        let _ = HybridParams::new(
            0,
            1.0,
            1.0,
            0.1,
            HandshakeLink::new(1.0, 0.5, Protocol::TwoPhase),
        );
    }
}
