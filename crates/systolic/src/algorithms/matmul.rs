//! Systolic matrix multiplication on a two-dimensional mesh.
//!
//! The canonical two-dimensional systolic workload — and, per
//! Section V-B, the kind of array that *cannot* be clocked at constant
//! period under the summation model as it grows.
//!
//! Design ("stationary C"): cell `(i, j)` accumulates `c_ij`; row `i`
//! of `A` streams eastward through mesh row `i`, staggered `i` cycles;
//! column `j` of `B` streams southward through mesh column `j`,
//! staggered `j` cycles. Cell `(i, j)` at cycle `t` multiplies
//! `a_{i,k}` with `b_{k,j}` where `k = t − i − j`, so products align
//! and `c_ij = Σ_k a_{ik} b_{kj}` completes after `K + n + m` cycles.

use crate::exec::{in_port_from, out_port_to, ArrayAlgorithm, Item};
use array_layout::graph::{CellId, CommGraph};

/// Systolic mesh matrix-multiply state: `C = A · B`.
///
/// `A` is `n × k`, `B` is `k × m`, the mesh is `n × m`.
///
/// # Examples
///
/// ```
/// use systolic::algorithms::matmul::SystolicMatMul;
///
/// let a = vec![vec![1, 2], vec![3, 4]];
/// let b = vec![vec![5, 6], vec![7, 8]];
/// assert_eq!(
///     SystolicMatMul::multiply(&a, &b),
///     vec![vec![19, 22], vec![43, 50]],
/// );
/// ```
#[derive(Debug, Clone)]
pub struct SystolicMatMul {
    comm: CommGraph,
    a: Vec<Vec<i64>>,
    b: Vec<Vec<i64>>,
    acc: Vec<Vec<i64>>,
    rows: usize,
    cols: usize,
    inner: usize,
    west_in: Vec<Option<usize>>,
    north_in: Vec<Option<usize>>,
    east_out: Vec<Option<usize>>,
    south_out: Vec<Option<usize>>,
}

impl SystolicMatMul {
    /// Builds the mesh for `a` (`n × k`) and `b` (`k × m`).
    ///
    /// # Panics
    ///
    /// Panics if either matrix is empty or ragged, or the inner
    /// dimensions disagree.
    #[must_use]
    pub fn new(a: &[Vec<i64>], b: &[Vec<i64>]) -> Self {
        assert!(!a.is_empty() && !a[0].is_empty(), "A must be non-empty");
        assert!(!b.is_empty() && !b[0].is_empty(), "B must be non-empty");
        let (n, k) = (a.len(), a[0].len());
        let m = b[0].len();
        assert!(a.iter().all(|r| r.len() == k), "A rows must have equal length");
        assert!(b.iter().all(|r| r.len() == m), "B rows must have equal length");
        assert_eq!(b.len(), k, "inner dimensions must agree");
        let comm = CommGraph::mesh(n, m);
        let port = |r: usize, c: usize, dr: isize, dc: isize, incoming: bool| -> Option<usize> {
            let nr = r.checked_add_signed(dr)?;
            let nc = c.checked_add_signed(dc)?;
            if nr >= n || nc >= m {
                return None;
            }
            let here = comm.grid_id(r, c);
            let there = comm.grid_id(nr, nc);
            if incoming {
                in_port_from(&comm, here, there)
            } else {
                out_port_to(&comm, here, there)
            }
        };
        let mut west_in = Vec::with_capacity(n * m);
        let mut north_in = Vec::with_capacity(n * m);
        let mut east_out = Vec::with_capacity(n * m);
        let mut south_out = Vec::with_capacity(n * m);
        for r in 0..n {
            for c in 0..m {
                west_in.push(port(r, c, 0, -1, true));
                north_in.push(port(r, c, -1, 0, true));
                east_out.push(port(r, c, 0, 1, false));
                south_out.push(port(r, c, 1, 0, false));
            }
        }
        SystolicMatMul {
            comm,
            a: a.to_vec(),
            b: b.to_vec(),
            acc: vec![vec![0; m]; n],
            rows: n,
            cols: m,
            inner: k,
            west_in,
            north_in,
            east_out,
            south_out,
        }
    }

    /// The communication graph (an `n × m` mesh).
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Cycles needed for every accumulator to complete.
    #[must_use]
    pub fn cycles_needed(&self) -> usize {
        self.inner + self.rows + self.cols
    }

    /// The accumulated product so far.
    #[must_use]
    pub fn product(&self) -> &[Vec<i64>] {
        &self.acc
    }

    /// Convenience: run to completion on an ideal executor.
    ///
    /// # Panics
    ///
    /// As for [`SystolicMatMul::new`].
    #[must_use]
    pub fn multiply(a: &[Vec<i64>], b: &[Vec<i64>]) -> Vec<Vec<i64>> {
        let mut mm = SystolicMatMul::new(a, b);
        let mut exec = crate::exec::IdealExecutor::new(&mm.comm().clone());
        let cycles = mm.cycles_needed();
        exec.run(&mut mm, cycles);
        mm.acc
    }

    /// Reference implementation: direct triple loop.
    #[must_use]
    pub fn reference(a: &[Vec<i64>], b: &[Vec<i64>]) -> Vec<Vec<i64>> {
        let (n, k, m) = (a.len(), a[0].len(), b[0].len());
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| (0..k).map(|l| a[i][l] * b[l][j]).sum())
                    .collect()
            })
            .collect()
    }
}

impl ArrayAlgorithm for SystolicMatMul {
    fn step_cell(&mut self, cell: CellId, cycle: usize, inputs: &[Item], outputs: &mut [Item]) {
        let idx = cell.index();
        let (r, c) = (idx / self.cols, idx % self.cols);
        // a-operand: from the west neighbour, or injected by the host
        // at column 0 so that cell (r, 0) sees a_{r,t−r} at cycle t.
        let a_in: Option<i64> = if c == 0 {
            cycle
                .checked_sub(r)
                .and_then(|k| self.a[r].get(k))
                .copied()
        } else {
            self.west_in[idx].and_then(|p| inputs[p])
        };
        // b-operand: from the north neighbour, or injected at row 0.
        let b_in: Option<i64> = if r == 0 {
            cycle
                .checked_sub(c)
                .and_then(|k| self.b.get(k))
                .map(|row| row[c])
        } else {
            self.north_in[idx].and_then(|p| inputs[p])
        };
        if let (Some(a), Some(b)) = (a_in, b_in) {
            self.acc[r][c] += a * b;
        }
        if let (Some(a), Some(p)) = (a_in, self.east_out[idx]) {
            outputs[p] = Some(a);
        }
        if let (Some(b), Some(p)) = (b_in, self.south_out[idx]) {
            outputs[p] = Some(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two() {
        let a = vec![vec![1, 2], vec![3, 4]];
        let b = vec![vec![5, 6], vec![7, 8]];
        assert_eq!(
            SystolicMatMul::multiply(&a, &b),
            SystolicMatMul::reference(&a, &b)
        );
    }

    #[test]
    fn rectangular_shapes() {
        // (3×2) · (2×4) = 3×4.
        let a = vec![vec![1, -1], vec![2, 0], vec![3, 5]];
        let b = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]];
        assert_eq!(
            SystolicMatMul::multiply(&a, &b),
            SystolicMatMul::reference(&a, &b)
        );
    }

    #[test]
    fn identity_times_anything() {
        let id = vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        let b = vec![vec![2, 3, 4], vec![5, 6, 7], vec![8, 9, 10]];
        assert_eq!(SystolicMatMul::multiply(&id, &b), b);
    }

    #[test]
    fn single_cell_mesh() {
        let a = vec![vec![2, 3]];
        let b = vec![vec![4], vec![5]];
        assert_eq!(SystolicMatMul::multiply(&a, &b), vec![vec![23]]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn rejects_dimension_mismatch() {
        let _ = SystolicMatMul::new(&[vec![1, 2]], &[vec![1, 2]]);
    }
}
