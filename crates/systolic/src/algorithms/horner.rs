//! Pipelined polynomial evaluation (Horner's rule) on a linear array.
//!
//! Cell `k` holds coefficient `a_{d−k}` (highest degree first); an
//! evaluation point `x` and its running accumulator flow rightward
//! together, one cell per cycle, with each cell applying one Horner
//! step `acc ← acc·x + a`. A new point enters every cycle, so the
//! array evaluates a degree-`d` polynomial at throughput one point per
//! cycle with latency `d + 1` — another bounded-I/O linear-array
//! workload of the kind Section V-A declares ideal for spine clocking.
//!
//! The COMM graph uses two parallel rightward channels per neighbour
//! pair (point and accumulator), exercising the multi-edge capability
//! of assumption A1's directed-graph model.

use crate::exec::{ArrayAlgorithm, Item};
use array_layout::graph::{CellId, CommGraph, CommGraphBuilder};

/// Systolic Horner evaluator state.
///
/// # Examples
///
/// ```
/// use systolic::algorithms::horner::SystolicHorner;
///
/// // p(x) = 2x^2 + 3x + 5
/// let coeffs = [5, 3, 2];
/// let points = [0, 1, 2, -1];
/// assert_eq!(SystolicHorner::evaluate(&coeffs, &points), vec![5, 10, 19, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct SystolicHorner {
    comm: CommGraph,
    /// Coefficients highest-degree first: `v[k] = a_{d−k}`.
    v: Vec<i64>,
    points: Vec<i64>,
    results: Vec<i64>,
    /// Per cell: (x-channel, acc-channel) input port indices.
    in_ports: Vec<Option<(usize, usize)>>,
    /// Per cell: (x-channel, acc-channel) output port indices.
    out_ports: Vec<Option<(usize, usize)>>,
}

impl SystolicHorner {
    /// Builds the evaluator for coefficients `a_0..a_d` (lowest degree
    /// first, as a polynomial is usually written down) and a stream of
    /// evaluation points.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    #[must_use]
    pub fn new(coeffs: &[i64], points: &[i64]) -> Self {
        assert!(!coeffs.is_empty(), "need at least one coefficient");
        let k = coeffs.len();
        // Two parallel rightward channels per adjacent pair: channel 0
        // carries the point, channel 1 the accumulator.
        let mut b = CommGraphBuilder::new(k);
        for i in 0..k.saturating_sub(1) {
            b.edge(CellId::new(i), CellId::new(i + 1)); // x channel
            b.edge(CellId::new(i), CellId::new(i + 1)); // acc channel
        }
        let comm = b.build();
        // Port discovery: each cell's in/out edges were inserted in
        // (x, acc) order, so ports 0 and 1 are x and acc respectively.
        let in_ports = (0..k)
            .map(|i| (i > 0).then_some((0usize, 1usize)))
            .collect();
        let out_ports = (0..k)
            .map(|i| (i + 1 < k).then_some((0usize, 1usize)))
            .collect();
        SystolicHorner {
            comm,
            v: coeffs.iter().rev().copied().collect(),
            points: points.to_vec(),
            results: Vec::new(),
            in_ports,
            out_ports,
        }
    }

    /// The communication graph (two parallel channels per link).
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Cycles needed to evaluate every point.
    #[must_use]
    pub fn cycles_needed(&self) -> usize {
        self.points.len() + self.v.len() + 1
    }

    /// Results collected so far, in point order.
    #[must_use]
    pub fn results(&self) -> &[i64] {
        &self.results
    }

    /// Convenience: evaluate all points on a fresh ideal executor.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    #[must_use]
    pub fn evaluate(coeffs: &[i64], points: &[i64]) -> Vec<i64> {
        let mut h = SystolicHorner::new(coeffs, points);
        let mut exec = crate::exec::IdealExecutor::new(&h.comm().clone());
        let cycles = h.cycles_needed();
        exec.run(&mut h, cycles);
        h.results
    }

    /// Reference implementation: direct Horner evaluation.
    #[must_use]
    pub fn reference(coeffs: &[i64], points: &[i64]) -> Vec<i64> {
        points
            .iter()
            .map(|&x| coeffs.iter().rev().fold(0i64, |acc, &a| acc * x + a))
            .collect()
    }
}

impl ArrayAlgorithm for SystolicHorner {
    fn step_cell(&mut self, cell: CellId, cycle: usize, inputs: &[Item], outputs: &mut [Item]) {
        let i = cell.index();
        let (x, acc) = if i == 0 {
            // Host injects point t at cycle t with a zero accumulator.
            match self.points.get(cycle) {
                Some(&x) => (Some(x), Some(0)),
                None => (None, None),
            }
        } else {
            match self.in_ports[i] {
                Some((px, pa)) => (inputs[px], inputs[pa]),
                None => (None, None),
            }
        };
        let (Some(x), Some(acc)) = (x, acc) else {
            return;
        };
        let acc = acc * x + self.v[i];
        if let Some((px, pa)) = self.out_ports[i] {
            outputs[px] = Some(x);
            outputs[pa] = Some(acc);
        } else {
            // Last cell: the Horner chain is complete.
            self.results.push(acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference() {
        let coeffs = [1, -2, 0, 3]; // 3x^3 - 2x + 1
        let points = [-3, -1, 0, 1, 2, 5];
        assert_eq!(
            SystolicHorner::evaluate(&coeffs, &points),
            SystolicHorner::reference(&coeffs, &points)
        );
    }

    #[test]
    fn constant_polynomial() {
        assert_eq!(SystolicHorner::evaluate(&[7], &[1, 2, 3]), vec![7, 7, 7]);
    }

    #[test]
    fn linear_polynomial() {
        // p(x) = 2x + 1.
        assert_eq!(
            SystolicHorner::evaluate(&[1, 2], &[0, 5, -4]),
            vec![1, 11, -7]
        );
    }

    #[test]
    fn empty_point_stream() {
        assert_eq!(SystolicHorner::evaluate(&[1, 2, 3], &[]), Vec::<i64>::new());
    }

    #[test]
    fn results_in_point_order() {
        let coeffs = [0, 1]; // p(x) = x
        let points = [9, 8, 7, 6];
        assert_eq!(SystolicHorner::evaluate(&coeffs, &points), vec![9, 8, 7, 6]);
    }
}
