//! Systolic FIR filter / convolution on a one-dimensional array.
//!
//! The motivating workload for one-dimensional systolic arrays (Kung,
//! *Why Systolic Architectures?*, 1982; cited by the paper as reference \[4\]):
//! compute `y_j = Σ_k w_k · x_{j+k}` with one cell per weight.
//!
//! Design: `x` values stream rightward one cell per cycle, partial
//! results `y` stream leftward one cell per cycle, with consecutive
//! items spaced two cycles apart so that every `y` meets every `x` it
//! needs. Cell `k` holds `w_{K−1−k}` (the weight order is reversed
//! because a leftward-moving `y` meets the `x` stream back-to-front).
//!
//! Timetable (cycle numbers are the cycle a cell *processes* the
//! item): `x_i` is processed by cell `k` at cycle `2i + k`; `y_j` is
//! injected at the rightmost cell when `x_j` arrives there (cycle
//! `2j + K − 1`) and exits complete from cell 0 at cycle
//! `2j + 2(K−1)`.

use crate::exec::{in_port_from, out_port_to, ArrayAlgorithm, Item};
use array_layout::graph::{CellId, CommGraph};

/// Systolic FIR filter state: weights, input stream, and collected
/// outputs.
///
/// # Examples
///
/// ```
/// use systolic::algorithms::fir::SystolicFir;
///
/// let weights = [1, 2, 3];
/// let xs = [4, 5, 6, 7, 8];
/// let outputs = SystolicFir::convolve(&weights, &xs);
/// // y_0 = 1·4 + 2·5 + 3·6 = 32, etc.
/// assert_eq!(outputs, vec![32, 38, 44]);
/// ```
#[derive(Debug, Clone)]
pub struct SystolicFir {
    comm: CommGraph,
    /// Reversed weights: `v[k] = w[K−1−k]`.
    v: Vec<i64>,
    xs: Vec<i64>,
    outputs: Vec<i64>,
    /// Per cell: input port arriving from the left / right neighbour.
    left_in: Vec<Option<usize>>,
    right_in: Vec<Option<usize>>,
    /// Per cell: output port toward the right / left neighbour.
    right_out: Vec<Option<usize>>,
    left_out: Vec<Option<usize>>,
}

impl SystolicFir {
    /// Builds the array for the given weights and input stream.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or shorter than 1, or
    /// `xs.len() < weights.len()` (no full-overlap output exists).
    #[must_use]
    pub fn new(weights: &[i64], xs: &[i64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(
            xs.len() >= weights.len(),
            "input shorter than the filter ({} < {})",
            xs.len(),
            weights.len()
        );
        let k = weights.len();
        let comm = CommGraph::linear(k);
        let cell = CellId::new;
        let left_in = (0..k)
            .map(|i| i.checked_sub(1).and_then(|l| in_port_from(&comm, cell(i), cell(l))))
            .collect();
        let right_in = (0..k)
            .map(|i| {
                (i + 1 < k)
                    .then(|| in_port_from(&comm, cell(i), cell(i + 1)))
                    .flatten()
            })
            .collect();
        let right_out = (0..k)
            .map(|i| {
                (i + 1 < k)
                    .then(|| out_port_to(&comm, cell(i), cell(i + 1)))
                    .flatten()
            })
            .collect();
        let left_out = (0..k)
            .map(|i| i.checked_sub(1).and_then(|l| out_port_to(&comm, cell(i), cell(l))))
            .collect();
        SystolicFir {
            comm,
            v: weights.iter().rev().copied().collect(),
            xs: xs.to_vec(),
            outputs: Vec::new(),
            left_in,
            right_in,
            right_out,
            left_out,
        }
    }

    /// The communication graph (a `K`-cell linear array).
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Number of cycles needed to produce all outputs.
    #[must_use]
    pub fn cycles_needed(&self) -> usize {
        let (n, k) = (self.xs.len(), self.v.len());
        // Last output y_{n−k} completes at cycle 2(n−k) + 2(k−1);
        // one extra cycle for the final collection step.
        2 * (n - k) + 2 * (k - 1) + 2
    }

    /// Outputs collected so far (`y_0, y_1, …` in order).
    #[must_use]
    pub fn outputs(&self) -> &[i64] {
        &self.outputs
    }

    /// Convenience: run the whole filter on a fresh ideal executor and
    /// return all `n − K + 1` outputs.
    ///
    /// # Panics
    ///
    /// As for [`SystolicFir::new`].
    #[must_use]
    pub fn convolve(weights: &[i64], xs: &[i64]) -> Vec<i64> {
        let mut fir = SystolicFir::new(weights, xs);
        let mut exec = crate::exec::IdealExecutor::new(&fir.comm().clone());
        let cycles = fir.cycles_needed();
        exec.run(&mut fir, cycles);
        fir.outputs
    }

    /// Reference implementation: direct convolution.
    #[must_use]
    pub fn reference(weights: &[i64], xs: &[i64]) -> Vec<i64> {
        let k = weights.len();
        (0..=xs.len() - k)
            .map(|j| (0..k).map(|m| weights[m] * xs[j + m]).sum())
            .collect()
    }
}

impl ArrayAlgorithm for SystolicFir {
    fn step_cell(&mut self, cell: CellId, cycle: usize, inputs: &[Item], outputs: &mut [Item]) {
        let i = cell.index();
        let k = self.v.len();
        let n = self.xs.len();
        // --- gather x (from the left neighbour, or the host at cell 0)
        let x_in: Option<i64> = if i == 0 {
            // Host injects x_t at cycle 2t.
            if cycle.is_multiple_of(2) && cycle / 2 < n {
                Some(self.xs[cycle / 2])
            } else {
                None
            }
        } else {
            self.left_in[i].and_then(|p| inputs[p])
        };
        // --- gather y (from the right neighbour, or the host at the
        // rightmost cell)
        let y_in: Option<i64> = if i == k - 1 {
            // Host injects y_j = 0 when x_j reaches this cell: cycle
            // 2j + K − 1, for j = 0..=n−k.
            if cycle >= k - 1 && (cycle - (k - 1)).is_multiple_of(2) && (cycle - (k - 1)) / 2 <= n - k
            {
                Some(0)
            } else {
                None
            }
        } else {
            self.right_in[i].and_then(|p| inputs[p])
        };
        // --- compute and route
        let y_out = match (x_in, y_in) {
            (Some(x), Some(y)) => Some(y + self.v[i] * x),
            (None, Some(y)) => Some(y),
            _ => None,
        };
        // x always continues rightward.
        if let (Some(x), Some(p)) = (x_in, self.right_out[i]) {
            outputs[p] = Some(x);
        }
        // y continues leftward, or is complete at cell 0.
        if let Some(y) = y_out {
            if i == 0 {
                self.outputs.push(y);
            } else if let Some(p) = self.left_out[i] {
                outputs[p] = Some(y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_small() {
        let w = [1, 2, 3];
        let x = [4, 5, 6, 7, 8, 9];
        assert_eq!(SystolicFir::convolve(&w, &x), SystolicFir::reference(&w, &x));
    }

    #[test]
    fn single_weight_is_scaling() {
        let w = [5];
        let x = [1, 2, 3];
        assert_eq!(SystolicFir::convolve(&w, &x), vec![5, 10, 15]);
    }

    #[test]
    fn exact_length_input_gives_one_output() {
        let w = [2, 3, 4];
        let x = [1, 1, 1];
        assert_eq!(SystolicFir::convolve(&w, &x), vec![9]);
    }

    #[test]
    fn negative_values() {
        let w = [-1, 2];
        let x = [3, -4, 5];
        assert_eq!(
            SystolicFir::convolve(&w, &x),
            SystolicFir::reference(&w, &x)
        );
    }

    #[test]
    fn reference_is_direct_convolution() {
        assert_eq!(SystolicFir::reference(&[1, 0], &[7, 8, 9]), vec![7, 8]);
    }

    #[test]
    #[should_panic(expected = "input shorter")]
    fn rejects_short_input() {
        let _ = SystolicFir::new(&[1, 2, 3], &[1]);
    }
}
