//! A systolic priority queue on a linear array (after Leiserson's
//! systolic data structures): constant-time `insert` and
//! `extract-min` at the host end, with the sorting work rippling
//! through the array one cell per cycle.
//!
//! Invariants: cell values are non-decreasing left to right, with all
//! empty cells forming a suffix; the minimum always sits in cell 0.
//! Operations are issued by the host at cell 0 once every **two**
//! cycles, which keeps the rightward-moving insert waves and
//! hole-filling pull waves ordered.
//!
//! Channels per neighbour pair: rightward `insert` (displaced value)
//! and `pull` (hole-propagation request); leftward `reply` (value
//! filling the hole). A reserved sentinel encodes "empty".

use crate::exec::{ArrayAlgorithm, Item};
use array_layout::graph::{CellId, CommGraph, CommGraphBuilder};
use std::collections::VecDeque;

/// Sentinel carried on the reply channel meaning "no value (hole)".
const HOLE: i64 = i64::MIN;

/// One host-side operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqOp {
    /// Insert a value (must not equal the reserved sentinel).
    Insert(i64),
    /// Remove and return the minimum, if any.
    ExtractMin,
}

/// The systolic priority queue.
///
/// # Examples
///
/// ```
/// use systolic::algorithms::priority_queue::{PqOp, SystolicPriorityQueue};
///
/// let ops = [
///     PqOp::Insert(5),
///     PqOp::Insert(2),
///     PqOp::Insert(8),
///     PqOp::ExtractMin,
///     PqOp::ExtractMin,
/// ];
/// let outs = SystolicPriorityQueue::run_ops(4, &ops);
/// assert_eq!(outs, vec![Some(2), Some(5)]);
/// ```
#[derive(Debug, Clone)]
pub struct SystolicPriorityQueue {
    comm: CommGraph,
    cells: usize,
    /// Value held by each cell (`None` = empty).
    held: Vec<Option<i64>>,
    ops: VecDeque<PqOp>,
    outputs: Vec<Option<i64>>,
}

impl SystolicPriorityQueue {
    /// Builds a queue of `cells` cells loaded with `ops` to process.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0`, if more values could be live at once
    /// than the array can hold, or if an inserted value equals the
    /// reserved sentinel.
    #[must_use]
    pub fn new(cells: usize, ops: &[PqOp]) -> Self {
        assert!(cells > 0, "need at least one cell");
        let mut live: i64 = 0;
        let mut peak: i64 = 0;
        for op in ops {
            match op {
                PqOp::Insert(v) => {
                    assert_ne!(*v, HOLE, "value collides with the reserved sentinel");
                    live += 1;
                }
                PqOp::ExtractMin => live = (live - 1).max(0),
            }
            peak = peak.max(live);
        }
        assert!(
            peak as usize <= cells,
            "operation sequence needs {peak} cells but the array has {cells}"
        );
        // Channels per adjacent pair: rightward insert, rightward
        // pull, leftward reply — in that insertion order.
        let mut b = CommGraphBuilder::new(cells);
        for i in 0..cells - 1 {
            b.edge(CellId::new(i), CellId::new(i + 1)); // insert
            b.edge(CellId::new(i), CellId::new(i + 1)); // pull
            b.edge(CellId::new(i + 1), CellId::new(i)); // reply
        }
        SystolicPriorityQueue {
            comm: b.build(),
            cells,
            held: vec![None; cells],
            ops: ops.iter().copied().collect(),
            outputs: Vec::new(),
        }
    }

    /// The communication graph (three channels per link).
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Cycles needed to process all queued operations and let the
    /// internal waves settle.
    #[must_use]
    pub fn cycles_needed(&self) -> usize {
        2 * self.ops.len() + 2 * self.cells + 4
    }

    /// Host-visible outputs, one per `ExtractMin`, in issue order.
    #[must_use]
    pub fn outputs(&self) -> &[Option<i64>] {
        &self.outputs
    }

    /// Convenience: run an operation sequence to completion and return
    /// the extract results.
    ///
    /// # Panics
    ///
    /// As for [`SystolicPriorityQueue::new`].
    #[must_use]
    pub fn run_ops(cells: usize, ops: &[PqOp]) -> Vec<Option<i64>> {
        let mut pq = SystolicPriorityQueue::new(cells, ops);
        let mut exec = crate::exec::IdealExecutor::new(&pq.comm().clone());
        let cycles = pq.cycles_needed();
        exec.run(&mut pq, cycles);
        pq.outputs
    }

    /// Port layout per cell, derived from the builder's insertion
    /// order.
    ///
    /// In-ports of cell `i > 0`: `[insert, pull]` from the left
    /// (plus `[reply]` from the right when `i < cells−1`, appended
    /// after). Out-ports of cell `i`: `[insert, pull]` rightward
    /// (when `i < cells−1`), `[reply]` leftward (when `i > 0`).
    fn ports(&self, i: usize) -> Ports {
        let has_left = i > 0;
        let has_right = i + 1 < self.cells;
        // In-edge insertion order: for cell i, the left pair's
        // (insert, pull) edges are inserted when processing pair
        // (i-1, i); the right reply edge when processing pair (i, i+1).
        // Pairs are processed left to right, so left ports come first.
        Ports {
            in_insert: has_left.then_some(0),
            in_pull: has_left.then_some(1),
            in_reply: has_right.then_some(if has_left { 2 } else { 0 }),
            out_insert: has_right.then_some(if has_left { 1 } else { 0 }),
            out_pull: has_right.then_some(if has_left { 2 } else { 1 }),
            out_reply: has_left.then_some(0),
        }
    }
}

struct Ports {
    in_insert: Option<usize>,
    in_pull: Option<usize>,
    in_reply: Option<usize>,
    out_insert: Option<usize>,
    out_pull: Option<usize>,
    out_reply: Option<usize>,
}

impl ArrayAlgorithm for SystolicPriorityQueue {
    fn step_cell(&mut self, cell: CellId, cycle: usize, inputs: &[Item], outputs: &mut [Item]) {
        let i = cell.index();
        let ports = self.ports(i);

        // 1. A reply from the right fills our hole (must be applied
        //    before any operation arriving this same cycle).
        if let Some(p) = ports.in_reply {
            if let Some(v) = inputs[p] {
                debug_assert!(self.held[i].is_none(), "reply into a full cell");
                self.held[i] = (v != HOLE).then_some(v);
            }
        }

        // 2. Incoming work: either a host op (cell 0, every 2 cycles)
        //    or a wave from the left.
        enum Wave {
            Insert(i64),
            Pull,
        }
        let wave = if i == 0 {
            if cycle.is_multiple_of(2) {
                match self.ops.pop_front() {
                    Some(PqOp::Insert(v)) => Some(Wave::Insert(v)),
                    Some(PqOp::ExtractMin) => Some(Wave::Pull),
                    None => None,
                }
            } else {
                None
            }
        } else {
            let ins = ports.in_insert.and_then(|p| inputs[p]);
            let pull = ports.in_pull.and_then(|p| inputs[p]);
            debug_assert!(
                ins.is_none() || pull.is_none(),
                "waves must stay separated"
            );
            match (ins, pull) {
                (Some(v), None) => Some(Wave::Insert(v)),
                (None, Some(_)) => Some(Wave::Pull),
                _ => None,
            }
        };

        match wave {
            Some(Wave::Insert(v)) => match self.held[i] {
                None => self.held[i] = Some(v),
                Some(cur) => {
                    let keep = cur.min(v);
                    let pass = cur.max(v);
                    self.held[i] = Some(keep);
                    match ports.out_insert {
                        Some(p) => outputs[p] = Some(pass),
                        None => panic!("insert overflow past the last cell"),
                    }
                }
            },
            Some(Wave::Pull) => {
                let value = self.held[i];
                if i == 0 {
                    self.outputs.push(value);
                } else if let Some(p) = ports.out_reply {
                    outputs[p] = Some(value.unwrap_or(HOLE));
                }
                if value.is_some() {
                    // We gave our value away; pull a replacement.
                    self.held[i] = None;
                    if let Some(p) = ports.out_pull {
                        outputs[p] = Some(1);
                    }
                }
                // An empty cell absorbs the pull: everything to the
                // right is empty too (suffix invariant).
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    /// Replays ops against a std BinaryHeap (min-heap via Reverse).
    fn reference(ops: &[PqOp]) -> Vec<Option<i64>> {
        let mut heap = BinaryHeap::new();
        let mut out = Vec::new();
        for op in ops {
            match op {
                PqOp::Insert(v) => heap.push(std::cmp::Reverse(*v)),
                PqOp::ExtractMin => out.push(heap.pop().map(|r| r.0)),
            }
        }
        out
    }

    #[test]
    fn insert_then_extract_sorted() {
        let ops: Vec<PqOp> = [5, 3, 9, 1, 7]
            .iter()
            .map(|&v| PqOp::Insert(v))
            .chain(std::iter::repeat_n(PqOp::ExtractMin, 5))
            .collect();
        assert_eq!(
            SystolicPriorityQueue::run_ops(8, &ops),
            vec![Some(1), Some(3), Some(5), Some(7), Some(9)]
        );
    }

    #[test]
    fn interleaved_ops_match_reference() {
        let ops = [
            PqOp::Insert(4),
            PqOp::Insert(2),
            PqOp::ExtractMin,
            PqOp::Insert(6),
            PqOp::Insert(1),
            PqOp::ExtractMin,
            PqOp::ExtractMin,
            PqOp::Insert(3),
            PqOp::ExtractMin,
            PqOp::ExtractMin,
        ];
        assert_eq!(
            SystolicPriorityQueue::run_ops(8, &ops),
            reference(&ops)
        );
    }

    #[test]
    fn extract_from_empty_returns_none() {
        let ops = [PqOp::ExtractMin, PqOp::Insert(5), PqOp::ExtractMin, PqOp::ExtractMin];
        assert_eq!(
            SystolicPriorityQueue::run_ops(4, &ops),
            vec![None, Some(5), None]
        );
    }

    #[test]
    fn duplicates_preserved() {
        let ops = [
            PqOp::Insert(2),
            PqOp::Insert(2),
            PqOp::Insert(2),
            PqOp::ExtractMin,
            PqOp::ExtractMin,
            PqOp::ExtractMin,
        ];
        assert_eq!(
            SystolicPriorityQueue::run_ops(4, &ops),
            vec![Some(2), Some(2), Some(2)]
        );
    }

    #[test]
    fn randomised_against_reference() {
        use sim_runtime::Rng;
        use sim_runtime::SimRng;
        let mut rng = SimRng::seed_from_u64(99);
        for trial in 0..20 {
            let mut live = 0usize;
            let ops: Vec<PqOp> = (0..40)
                .map(|_| {
                    if live > 0 && rng.gen_bool(0.45) {
                        live -= 1;
                        PqOp::ExtractMin
                    } else {
                        live += 1;
                        PqOp::Insert(rng.gen_range(-100..100))
                    }
                })
                .collect();
            assert_eq!(
                SystolicPriorityQueue::run_ops(48, &ops),
                reference(&ops),
                "trial {trial}: {ops:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn rejects_overflowing_sequence() {
        let ops = [PqOp::Insert(1), PqOp::Insert(2), PqOp::Insert(3)];
        let _ = SystolicPriorityQueue::new(2, &ops);
    }
}
