//! Odd–even transposition sort on a one-dimensional array.
//!
//! A classic linear-array algorithm with purely neighbour
//! communication: `n` cells each hold one value; in even phases the
//! pairs `(0,1), (2,3), …` compare-exchange, in odd phases the pairs
//! `(1,2), (3,4), …`. After `n` phases the values are sorted.
//!
//! Each phase takes two executor cycles: one to ship values to the
//! partner, one to receive and keep the min (left cell) or max (right
//! cell). The exchange itself is the lock-step simultaneity that the
//! paper's synchronization machinery exists to provide.

use crate::exec::{in_port_from, out_port_to, ArrayAlgorithm, Item};
use array_layout::graph::{CellId, CommGraph};

/// Odd–even transposition sorter state.
///
/// # Examples
///
/// ```
/// use systolic::algorithms::sort::OddEvenSorter;
///
/// assert_eq!(
///     OddEvenSorter::sort(&[3, 1, 4, 1, 5, 9, 2, 6]),
///     vec![1, 1, 2, 3, 4, 5, 6, 9],
/// );
/// ```
#[derive(Debug, Clone)]
pub struct OddEvenSorter {
    comm: CommGraph,
    values: Vec<i64>,
    left_in: Vec<Option<usize>>,
    right_in: Vec<Option<usize>>,
    left_out: Vec<Option<usize>>,
    right_out: Vec<Option<usize>>,
}

impl OddEvenSorter {
    /// Builds a sorter holding `values` (one per cell).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn new(values: &[i64]) -> Self {
        assert!(!values.is_empty(), "need at least one value");
        let n = values.len();
        let comm = CommGraph::linear(n);
        let cell = CellId::new;
        let left_in = (0..n)
            .map(|i| i.checked_sub(1).and_then(|l| in_port_from(&comm, cell(i), cell(l))))
            .collect();
        let right_in = (0..n)
            .map(|i| {
                (i + 1 < n)
                    .then(|| in_port_from(&comm, cell(i), cell(i + 1)))
                    .flatten()
            })
            .collect();
        let left_out = (0..n)
            .map(|i| i.checked_sub(1).and_then(|l| out_port_to(&comm, cell(i), cell(l))))
            .collect();
        let right_out = (0..n)
            .map(|i| {
                (i + 1 < n)
                    .then(|| out_port_to(&comm, cell(i), cell(i + 1)))
                    .flatten()
            })
            .collect();
        OddEvenSorter {
            comm,
            values: values.to_vec(),
            left_in,
            right_in,
            left_out,
            right_out,
        }
    }

    /// The communication graph (an `n`-cell linear array).
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Executor cycles needed: `n` phases × 2 cycles.
    #[must_use]
    pub fn cycles_needed(&self) -> usize {
        2 * self.values.len()
    }

    /// The values currently held by the cells, in cell order.
    #[must_use]
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// In phase `p`, the index of the partner of cell `i`, if any.
    fn partner(&self, i: usize, phase: usize) -> Option<usize> {
        let n = self.values.len();
        let left = if phase.is_multiple_of(2) {
            // pairs (0,1), (2,3), …
            i.is_multiple_of(2)
        } else {
            // pairs (1,2), (3,4), …
            i % 2 == 1
        };
        let p = if left { i + 1 } else { i.checked_sub(1)? };
        (p < n).then_some(p)
    }

    /// Convenience: sort on a fresh ideal executor.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn sort(values: &[i64]) -> Vec<i64> {
        let mut sorter = OddEvenSorter::new(values);
        let mut exec = crate::exec::IdealExecutor::new(&sorter.comm().clone());
        let cycles = sorter.cycles_needed();
        exec.run(&mut sorter, cycles);
        sorter.values
    }
}

impl ArrayAlgorithm for OddEvenSorter {
    fn step_cell(&mut self, cell: CellId, cycle: usize, inputs: &[Item], outputs: &mut [Item]) {
        let i = cell.index();
        let phase = cycle / 2;
        let Some(p) = self.partner(i, phase) else {
            return; // idle this phase (unpaired boundary cell)
        };
        if cycle.is_multiple_of(2) {
            // Ship my value to the partner.
            let port = if p > i { self.right_out[i] } else { self.left_out[i] };
            if let Some(port) = port {
                outputs[port] = Some(self.values[i]);
            }
        } else {
            // Receive the partner's value; keep min or max by side.
            let port = if p > i { self.right_in[i] } else { self.left_in[i] };
            let received = port
                .and_then(|q| inputs[q])
                .expect("partner always ships in the previous cycle");
            self.values[i] = if p > i {
                self.values[i].min(received)
            } else {
                self.values[i].max(received)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_runtime::{SimRng, SliceRandom};

    #[test]
    fn sorts_small_arrays() {
        assert_eq!(OddEvenSorter::sort(&[2, 1]), vec![1, 2]);
        assert_eq!(OddEvenSorter::sort(&[1]), vec![1]);
        assert_eq!(OddEvenSorter::sort(&[3, 2, 1]), vec![1, 2, 3]);
        assert_eq!(
            OddEvenSorter::sort(&[5, 4, 3, 2, 1]),
            vec![1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn sorts_with_duplicates() {
        assert_eq!(
            OddEvenSorter::sort(&[2, 2, 1, 1, 3, 3]),
            vec![1, 1, 2, 2, 3, 3]
        );
    }

    #[test]
    fn already_sorted_stays_sorted() {
        let v: Vec<i64> = (0..16).collect();
        assert_eq!(OddEvenSorter::sort(&v), v);
    }

    #[test]
    fn reverse_order_worst_case() {
        let v: Vec<i64> = (0..20).rev().collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        assert_eq!(OddEvenSorter::sort(&v), expected);
    }

    #[test]
    fn random_permutations() {
        let mut rng = SimRng::seed_from_u64(5);
        for n in [7usize, 12, 33] {
            let mut v: Vec<i64> = (0..n as i64).collect();
            v.shuffle(&mut rng);
            let mut expected = v.clone();
            expected.sort_unstable();
            assert_eq!(OddEvenSorter::sort(&v), expected, "n = {n}");
        }
    }
}
