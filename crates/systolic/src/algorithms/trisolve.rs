//! Systolic triangular-system solver on a linear array (Kung &
//! Leiserson's companion design to the band matmul).
//!
//! Solves `L·x = b` for a **unit** lower-triangular band matrix `L`
//! (ones on the diagonal, half-bandwidth `w`): with integer inputs the
//! solution is integral, keeping the workspace's exact-arithmetic
//! testing discipline.
//!
//! Design (counter-flowing streams, one equation every two cycles —
//! the same rhythm as the systolic FIR): the running right-hand side
//! `y_i` enters cell 0 at cycle `2i` and moves rightward one cell per
//! cycle; solved components `x_j` are produced at the last cell and
//! move leftward. Cell `q` owns subdiagonal depth `w−1−q`: when `y_i`
//! passes it (cycle `2i+q`) it meets exactly `x_j` with
//! `j = i − (w−1) + q` and subtracts `L[i][j]·x_j`. At the last cell
//! the unit diagonal makes `x_i = y_i`; the solution streams back out
//! through cell 0. The array has `w` cells — **independent of `n`**,
//! the bounded-hardware systolic signature.

use crate::exec::{in_port_from, out_port_to, ArrayAlgorithm, Item};
use array_layout::graph::{CellId, CommGraph, CommGraphBuilder};

/// Systolic solver state for `L·x = b`.
///
/// # Examples
///
/// ```
/// use systolic::algorithms::trisolve::SystolicTriSolve;
///
/// // L = [[1,0,0],[2,1,0],[0,3,1]] (unit diagonal, bandwidth 2).
/// let l = vec![vec![1, 0, 0], vec![2, 1, 0], vec![0, 3, 1]];
/// let b = vec![5, 12, 13];
/// // x = [5, 2, 7]
/// assert_eq!(SystolicTriSolve::solve(&l, &b, 2), vec![5, 2, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct SystolicTriSolve {
    comm: CommGraph,
    n: usize,
    w: usize,
    l: Vec<Vec<i64>>,
    b: Vec<i64>,
    x: Vec<i64>,
    right_in: Vec<Option<usize>>,
    left_in: Vec<Option<usize>>,
    right_out: Vec<Option<usize>>,
    left_out: Vec<Option<usize>>,
}

impl SystolicTriSolve {
    /// Builds the solver for unit lower-triangular `l` with
    /// half-bandwidth `w` and right-hand side `b`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is not square and matching `b`, is not unit
    /// lower-triangular, has entries outside the band, or `w < 1`.
    #[must_use]
    pub fn new(l: &[Vec<i64>], b: &[i64], w: usize) -> Self {
        let n = l.len();
        assert!(n > 0, "system must be non-empty");
        assert!(w >= 1, "bandwidth must be at least 1");
        assert!(l.iter().all(|r| r.len() == n), "L must be square");
        assert_eq!(b.len(), n, "right-hand side must match L");
        for (i, row) in l.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i == j {
                    assert_eq!(v, 1, "L[{i}][{j}] must be 1 (unit diagonal)");
                } else if j > i {
                    assert_eq!(v, 0, "L[{i}][{j}] must be 0 (lower triangular)");
                } else {
                    assert!(
                        v == 0 || i - j < w,
                        "L[{i}][{j}] = {v} lies outside the bandwidth-{w} band"
                    );
                }
            }
        }
        // w cells; channel 0 of each link carries y rightward,
        // channel 1 carries solved x leftward.
        let cells = w;
        let mut builder = CommGraphBuilder::new(cells);
        for i in 0..cells.saturating_sub(1) {
            builder.edge(CellId::new(i), CellId::new(i + 1));
            builder.edge(CellId::new(i + 1), CellId::new(i));
        }
        let comm = builder.build();
        let cell = CellId::new;
        let right_in = (0..cells)
            .map(|i| {
                (i + 1 < cells)
                    .then(|| in_port_from(&comm, cell(i), cell(i + 1)))
                    .flatten()
            })
            .collect();
        let left_in = (0..cells)
            .map(|i| i.checked_sub(1).and_then(|p| in_port_from(&comm, cell(i), cell(p))))
            .collect();
        let right_out = (0..cells)
            .map(|i| {
                (i + 1 < cells)
                    .then(|| out_port_to(&comm, cell(i), cell(i + 1)))
                    .flatten()
            })
            .collect();
        let left_out = (0..cells)
            .map(|i| i.checked_sub(1).and_then(|p| out_port_to(&comm, cell(i), cell(p))))
            .collect();
        SystolicTriSolve {
            comm,
            n,
            w,
            l: l.to_vec(),
            b: b.to_vec(),
            x: Vec::new(),
            right_in,
            left_in,
            right_out,
            left_out,
        }
    }

    /// The communication graph (`w` cells, independent of `n`).
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Cycles needed to solve the full system: the last component is
    /// collected at cycle `2(n−1) + 2(w−1)`.
    #[must_use]
    pub fn cycles_needed(&self) -> usize {
        2 * self.n + 2 * self.w + 2
    }

    /// The solution components recovered so far, in index order.
    #[must_use]
    pub fn solution(&self) -> &[i64] {
        &self.x
    }

    /// Convenience: solve on a fresh ideal executor.
    ///
    /// # Panics
    ///
    /// As for [`SystolicTriSolve::new`].
    #[must_use]
    pub fn solve(l: &[Vec<i64>], b: &[i64], w: usize) -> Vec<i64> {
        let mut ts = SystolicTriSolve::new(l, b, w);
        let mut exec = crate::exec::IdealExecutor::new(&ts.comm().clone());
        let cycles = ts.cycles_needed();
        exec.run(&mut ts, cycles);
        ts.x
    }

    /// Reference implementation: forward substitution.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    #[must_use]
    pub fn reference(l: &[Vec<i64>], b: &[i64]) -> Vec<i64> {
        let n = l.len();
        assert_eq!(b.len(), n, "dimension mismatch");
        let mut x = vec![0i64; n];
        for i in 0..n {
            let mut rhs = b[i];
            for j in 0..i {
                rhs -= l[i][j] * x[j];
            }
            x[i] = rhs; // unit diagonal
        }
        x
    }
}

impl ArrayAlgorithm for SystolicTriSolve {
    fn step_cell(&mut self, cell: CellId, cycle: usize, inputs: &[Item], outputs: &mut [Item]) {
        let q = cell.index();
        let w = self.w;
        let last = w - 1;

        // --- incoming x (leftward stream), if any.
        let x_in: Option<i64> = if q == last {
            None // generated locally below
        } else {
            self.right_in[q].and_then(|p| inputs[p])
        };

        // --- incoming y (rightward stream) or host injection.
        let y_in: Option<i64> = if q == 0 {
            if cycle.is_multiple_of(2) && cycle / 2 < self.n {
                Some(self.b[cycle / 2])
            } else {
                None
            }
        } else {
            self.left_in[q].and_then(|p| inputs[p])
        };

        // --- produce/propagate x.
        let mut x_here: Option<i64> = x_in;
        if let Some(y) = y_in {
            // Which equation is passing: y_i at cell q at cycle 2i+q.
            debug_assert_eq!((cycle - q) % 2, 0, "y stream off schedule");
            let i = (cycle - q) / 2;
            if q == last {
                // Depth 0 = the unit diagonal: every subdiagonal term
                // was subtracted on the way here, so the equation
                // completes: x_i = y.
                let _ = i;
                x_here = Some(y);
            } else {
                // Subtract this cell's subdiagonal term, if its paired
                // x exists (early equations have none).
                let depth = last - q;
                let mut y = y;
                if let Some(x) = x_in {
                    let j = (i as i64) - (depth as i64);
                    debug_assert!(j >= 0, "x token paired with too-early equation");
                    let j = j as usize;
                    y -= self.l[i][j] * x;
                }
                let p = self.right_out[q].expect("non-last cell has a right link");
                outputs[p] = Some(y);
            }
        }

        // --- route x onward (leftward) or collect at the host.
        if let Some(x) = x_here {
            if q == 0 {
                self.x.push(x);
            } else {
                let p = self.left_out[q].expect("non-host cell has a left link");
                outputs[p] = Some(x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_runtime::{Rng, SimRng};

    fn random_system(n: usize, w: usize, seed: u64) -> (Vec<Vec<i64>>, Vec<i64>) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut l = vec![vec![0i64; n]; n];
        for (i, row) in l.iter_mut().enumerate() {
            row[i] = 1;
            for v in row.iter_mut().take(i).skip(i.saturating_sub(w - 1)) {
                *v = rng.gen_range(-4..=4);
            }
        }
        let b: Vec<i64> = (0..n).map(|_| rng.gen_range(-20..=20)).collect();
        (l, b)
    }

    #[test]
    fn doc_example() {
        let l = vec![vec![1, 0, 0], vec![2, 1, 0], vec![0, 3, 1]];
        let b = vec![5, 12, 13];
        assert_eq!(SystolicTriSolve::solve(&l, &b, 2), vec![5, 2, 7]);
    }

    #[test]
    fn identity_returns_rhs() {
        let l = vec![vec![1, 0], vec![0, 1]];
        let b = vec![-4, 9];
        assert_eq!(SystolicTriSolve::solve(&l, &b, 1), b);
    }

    #[test]
    fn matches_reference_various_bandwidths() {
        for (n, w, seed) in [(6usize, 2usize, 1u64), (8, 3, 2), (12, 4, 3), (10, 1, 4), (9, 5, 5)] {
            let (l, b) = random_system(n, w, seed);
            assert_eq!(
                SystolicTriSolve::solve(&l, &b, w),
                SystolicTriSolve::reference(&l, &b),
                "n={n}, w={w}"
            );
        }
    }

    #[test]
    fn array_size_is_bandwidth_not_n() {
        let (l, b) = random_system(50, 3, 9);
        let ts = SystolicTriSolve::new(&l, &b, 3);
        assert_eq!(ts.comm().node_count(), 3);
        assert_eq!(
            SystolicTriSolve::solve(&l, &b, 3),
            SystolicTriSolve::reference(&l, &b)
        );
    }

    #[test]
    #[should_panic(expected = "unit diagonal")]
    fn rejects_non_unit_diagonal() {
        let l = vec![vec![2, 0], vec![1, 1]];
        let _ = SystolicTriSolve::new(&l, &[1, 2], 2);
    }

    #[test]
    #[should_panic(expected = "lower triangular")]
    fn rejects_upper_entries() {
        let l = vec![vec![1, 5], vec![1, 1]];
        let _ = SystolicTriSolve::new(&l, &[1, 2], 2);
    }
}
