//! The Bentley–Kung tree machine for searching problems.
//!
//! Section VIII of the paper points to tree machines (reference \[2\]) as the
//! interesting case of clocking with *asymptotically growing* wire
//! delays: an `N`-node planar tree layout must have an edge of length
//! `Ω(√N / log N)`, but clock events can be distributed along the data
//! paths, and pipeline registers on long edges give a constant
//! pipeline interval.
//!
//! The machine: leaves hold one key each; membership queries enter at
//! the root, are broadcast down the tree one level per cycle, answered
//! at the leaves, and the answers are OR-combined on the way back up.
//! Latency is `2·(levels − 1) + 1` cycles; throughput is one query per
//! cycle because the tree is fully pipelined — the property that the
//! paper's constant-pipeline-interval observation delivers.

use crate::exec::{in_port_from, out_port_to, ArrayAlgorithm, Item};
use array_layout::graph::{CellId, CommGraph};
use std::collections::VecDeque;

/// The pipelined tree search machine.
///
/// # Examples
///
/// ```
/// use systolic::algorithms::tree_machine::TreeSearchMachine;
///
/// let keys = [10, 20, 30, 40];
/// let queries = [20, 25, 40];
/// let found = TreeSearchMachine::search(&keys, &queries);
/// assert_eq!(found, vec![true, false, true]);
/// ```
#[derive(Debug, Clone)]
pub struct TreeSearchMachine {
    comm: CommGraph,
    levels: usize,
    /// Key held by each node (only leaves' keys are consulted).
    leaf_key: Vec<Option<i64>>,
    queries: VecDeque<i64>,
    answers: Vec<bool>,
    /// Per node: ports toward parent and children.
    up_out: Vec<Option<usize>>,
    down_out: Vec<[Option<usize>; 2]>,
    parent_in: Vec<Option<usize>>,
    child_in: Vec<[Option<usize>; 2]>,
}

impl TreeSearchMachine {
    /// Builds a machine whose leaves hold `keys` (must be a power of
    /// two so the complete binary tree is full), loading `queries` to
    /// stream through.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty or not a power of two in length.
    #[must_use]
    pub fn new(keys: &[i64], queries: &[i64]) -> Self {
        assert!(!keys.is_empty(), "need at least one key");
        assert!(
            keys.len().is_power_of_two(),
            "leaf count must be a power of two, got {}",
            keys.len()
        );
        let levels = keys.len().trailing_zeros() as usize + 1;
        let comm = CommGraph::complete_binary_tree(levels);
        let n = comm.node_count();
        let first_leaf = n - keys.len();
        let mut leaf_key = vec![None; n];
        for (i, &k) in keys.iter().enumerate() {
            leaf_key[first_leaf + i] = Some(k);
        }
        let cell = CellId::new;
        let parent_of = |i: usize| -> Option<usize> { (i > 0).then(|| (i - 1) / 2) };
        let mut up_out = Vec::with_capacity(n);
        let mut down_out = Vec::with_capacity(n);
        let mut parent_in = Vec::with_capacity(n);
        let mut child_in = Vec::with_capacity(n);
        for i in 0..n {
            up_out.push(parent_of(i).and_then(|p| out_port_to(&comm, cell(i), cell(p))));
            parent_in.push(parent_of(i).and_then(|p| in_port_from(&comm, cell(i), cell(p))));
            let kids = [2 * i + 1, 2 * i + 2];
            down_out.push(kids.map(|k| {
                (k < n)
                    .then(|| out_port_to(&comm, cell(i), cell(k)))
                    .flatten()
            }));
            child_in.push(kids.map(|k| {
                (k < n)
                    .then(|| in_port_from(&comm, cell(i), cell(k)))
                    .flatten()
            }));
        }
        TreeSearchMachine {
            comm,
            levels,
            leaf_key,
            queries: queries.iter().copied().collect(),
            answers: Vec::new(),
            up_out,
            down_out,
            parent_in,
            child_in,
        }
    }

    /// The communication graph (a complete binary tree).
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Number of tree levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Answer latency: cycles from injecting a query to collecting its
    /// answer.
    #[must_use]
    pub fn latency(&self) -> usize {
        2 * (self.levels - 1) + 1
    }

    /// Cycles to drain `q` queries: latency plus pipeline fill.
    #[must_use]
    pub fn cycles_needed(&self, q: usize) -> usize {
        self.latency() + q + 1
    }

    /// Answers collected so far, in query order.
    #[must_use]
    pub fn answers(&self) -> &[bool] {
        &self.answers
    }

    /// Convenience: run all queries to completion on an ideal
    /// executor and return their membership answers in order.
    ///
    /// # Panics
    ///
    /// As for [`TreeSearchMachine::new`].
    #[must_use]
    pub fn search(keys: &[i64], queries: &[i64]) -> Vec<bool> {
        let mut machine = TreeSearchMachine::new(keys, queries);
        let mut exec = crate::exec::IdealExecutor::new(&machine.comm().clone());
        let cycles = machine.cycles_needed(machine.queries.len());
        exec.run(&mut machine, cycles);
        machine.answers
    }

    fn is_leaf(&self, i: usize) -> bool {
        2 * i + 1 >= self.comm.node_count()
    }
}

impl ArrayAlgorithm for TreeSearchMachine {
    fn step_cell(&mut self, cell: CellId, _cycle: usize, inputs: &[Item], outputs: &mut [Item]) {
        let i = cell.index();
        // --- downward wave: query keys
        let query: Option<i64> = if i == 0 {
            self.queries.pop_front()
        } else {
            self.parent_in[i].and_then(|p| inputs[p])
        };
        if let Some(q) = query {
            if self.is_leaf(i) {
                // Answer immediately: 1 = found here, 0 = not.
                let found = self.leaf_key[i] == Some(q);
                if let Some(p) = self.up_out[i] {
                    outputs[p] = Some(i64::from(found));
                }
                if i == 0 {
                    // Degenerate single-node tree.
                    self.answers.push(found);
                }
            } else {
                for p in self.down_out[i].iter().flatten() {
                    outputs[*p] = Some(q);
                }
            }
        }
        // --- upward wave: OR-combined answers
        if !self.is_leaf(i) {
            let kids: Vec<i64> = self.child_in[i]
                .iter()
                .flatten()
                .filter_map(|&p| inputs[p])
                .collect();
            if !kids.is_empty() {
                debug_assert_eq!(kids.len(), 2, "complete tree: answers arrive in pairs");
                let combined = i64::from(kids.iter().any(|&v| v != 0));
                if i == 0 {
                    self.answers.push(combined != 0);
                } else if let Some(p) = self.up_out[i] {
                    outputs[p] = Some(combined);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_queries() {
        let keys = [1, 5, 9, 13];
        let queries = [1, 2, 5, 13, 14];
        assert_eq!(
            TreeSearchMachine::search(&keys, &queries),
            vec![true, false, true, true, false]
        );
    }

    #[test]
    fn single_leaf_tree() {
        assert_eq!(
            TreeSearchMachine::search(&[7], &[7, 8]),
            vec![true, false]
        );
    }

    #[test]
    fn large_tree_pipelines_queries() {
        let keys: Vec<i64> = (0..64).map(|i| i * 3).collect();
        let queries: Vec<i64> = (0..100).collect();
        let answers = TreeSearchMachine::search(&keys, &queries);
        assert_eq!(answers.len(), 100);
        for (q, &found) in queries.iter().zip(&answers) {
            assert_eq!(found, q % 3 == 0 && *q < 192, "query {q}");
        }
    }

    #[test]
    fn latency_grows_with_levels() {
        let m2 = TreeSearchMachine::new(&[1, 2], &[]);
        let m16 = TreeSearchMachine::new(&(0..16).collect::<Vec<_>>(), &[]);
        assert_eq!(m2.levels(), 2);
        assert_eq!(m16.levels(), 5);
        assert!(m16.latency() > m2.latency());
    }

    #[test]
    fn throughput_one_answer_per_cycle_once_filled() {
        // With q queries the machine finishes in latency + q + 1
        // cycles — i.e. after pipeline fill, one answer per cycle.
        let keys: Vec<i64> = (0..8).collect();
        let queries: Vec<i64> = (0..32).collect();
        let mut machine = TreeSearchMachine::new(&keys, &queries);
        let mut exec = crate::exec::IdealExecutor::new(&machine.comm().clone());
        let cycles = machine.latency() + 32 + 1;
        exec.run(&mut machine, cycles);
        assert_eq!(machine.answers().len(), 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_leaves() {
        let _ = TreeSearchMachine::new(&[1, 2, 3], &[]);
    }
}
