//! Classic systolic algorithms, each implemented as an
//! [`ArrayAlgorithm`](crate::exec::ArrayAlgorithm) over the
//! appropriate communication graph and verified against a direct
//! reference implementation.
//!
//! * [`fir`] — convolution / FIR filtering on a linear array (the
//!   paper's flagship one-dimensional workload);
//! * [`matvec`] — matrix–vector product on a linear array;
//! * [`matmul`] — matrix–matrix product on a mesh (the
//!   two-dimensional array of Section V-B);
//! * [`hex_matmul`] — the Kung–Leiserson hexagonal matrix multiply
//!   (the workload behind Fig. 3(c));
//! * [`sort`] — odd–even transposition sort on a linear array;
//! * [`horner`] — pipelined polynomial evaluation on a linear array;
//! * [`priority_queue`] — a systolic priority queue with constant-time
//!   host operations;
//! * [`trisolve`] — banded triangular-system solver on a linear array
//!   (bounded hardware for unbounded problems);
//! * [`tree_machine`] — the Bentley–Kung tree search machine
//!   (Section VIII).

pub mod fir;
pub mod hex_matmul;
pub mod horner;
pub mod matmul;
pub mod matvec;
pub mod priority_queue;
pub mod sort;
pub mod tree_machine;
pub mod trisolve;
