//! Systolic matrix–vector multiplication on a one-dimensional array.
//!
//! `y = A·x` with `A` an `n × m` matrix: cell `i` keeps `y_i`
//! stationary and holds row `i` of `A` in local memory; the vector `x`
//! streams rightward one cell per cycle. Cell `i` sees `x_t` at cycle
//! `t + i` and accumulates `A[i][t] · x_t`. After `m + n − 1` cycles
//! every accumulator is complete.
//!
//! This is the classic "results stay, operands move" design with
//! bounded I/O: only cell 0 talks to the host.

use crate::exec::{in_port_from, out_port_to, ArrayAlgorithm, Item};
use array_layout::graph::{CellId, CommGraph};

/// Systolic matrix–vector product state.
///
/// # Examples
///
/// ```
/// use systolic::algorithms::matvec::SystolicMatVec;
///
/// let a = vec![vec![1, 2], vec![3, 4]];
/// let x = vec![5, 6];
/// assert_eq!(SystolicMatVec::multiply(&a, &x), vec![17, 39]);
/// ```
#[derive(Debug, Clone)]
pub struct SystolicMatVec {
    comm: CommGraph,
    a: Vec<Vec<i64>>,
    x: Vec<i64>,
    acc: Vec<i64>,
    left_in: Vec<Option<usize>>,
    right_out: Vec<Option<usize>>,
}

impl SystolicMatVec {
    /// Builds the array for `a` (`n` rows of length `m`) and `x`
    /// (length `m`).
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty, ragged, or its row length differs from
    /// `x.len()`.
    #[must_use]
    pub fn new(a: &[Vec<i64>], x: &[i64]) -> Self {
        assert!(!a.is_empty(), "matrix must have at least one row");
        let m = a[0].len();
        assert!(m > 0, "matrix must have at least one column");
        assert!(
            a.iter().all(|row| row.len() == m),
            "matrix rows must have equal length"
        );
        assert_eq!(m, x.len(), "matrix width must match vector length");
        let n = a.len();
        let comm = CommGraph::linear(n);
        let cell = CellId::new;
        let left_in = (0..n)
            .map(|i| i.checked_sub(1).and_then(|l| in_port_from(&comm, cell(i), cell(l))))
            .collect();
        let right_out = (0..n)
            .map(|i| {
                (i + 1 < n)
                    .then(|| out_port_to(&comm, cell(i), cell(i + 1)))
                    .flatten()
            })
            .collect();
        SystolicMatVec {
            comm,
            a: a.to_vec(),
            x: x.to_vec(),
            acc: vec![0; n],
            left_in,
            right_out,
        }
    }

    /// The communication graph (an `n`-cell linear array).
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Cycles needed for all accumulators to complete.
    #[must_use]
    pub fn cycles_needed(&self) -> usize {
        self.x.len() + self.a.len()
    }

    /// The per-cell accumulators (`y` after enough cycles).
    #[must_use]
    pub fn accumulators(&self) -> &[i64] {
        &self.acc
    }

    /// Convenience: run to completion on an ideal executor.
    ///
    /// # Panics
    ///
    /// As for [`SystolicMatVec::new`].
    #[must_use]
    pub fn multiply(a: &[Vec<i64>], x: &[i64]) -> Vec<i64> {
        let mut mv = SystolicMatVec::new(a, x);
        let mut exec = crate::exec::IdealExecutor::new(&mv.comm().clone());
        let cycles = mv.cycles_needed();
        exec.run(&mut mv, cycles);
        mv.acc
    }

    /// Reference implementation: direct product.
    #[must_use]
    pub fn reference(a: &[Vec<i64>], x: &[i64]) -> Vec<i64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(&aij, &xj)| aij * xj).sum())
            .collect()
    }
}

impl ArrayAlgorithm for SystolicMatVec {
    fn step_cell(&mut self, cell: CellId, cycle: usize, inputs: &[Item], outputs: &mut [Item]) {
        let i = cell.index();
        let x_in: Option<i64> = if i == 0 {
            // Host injects x_t at cycle t.
            self.x.get(cycle).copied()
        } else {
            self.left_in[i].and_then(|p| inputs[p])
        };
        if let Some(x) = x_in {
            // x_t reaches cell i at cycle t + i.
            let t = cycle - i;
            self.acc[i] += self.a[i][t] * x;
            if let Some(p) = self.right_out[i] {
                outputs[p] = Some(x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference() {
        let a = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9], vec![1, 0, 1]];
        let x = vec![2, -1, 3];
        assert_eq!(
            SystolicMatVec::multiply(&a, &x),
            SystolicMatVec::reference(&a, &x)
        );
    }

    #[test]
    fn single_cell() {
        let a = vec![vec![3, 4]];
        let x = vec![5, 6];
        assert_eq!(SystolicMatVec::multiply(&a, &x), vec![39]);
    }

    #[test]
    fn identity_matrix() {
        let a = vec![vec![1, 0], vec![0, 1]];
        let x = vec![9, -2];
        assert_eq!(SystolicMatVec::multiply(&a, &x), vec![9, -2]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_ragged_matrix() {
        let _ = SystolicMatVec::new(&[vec![1, 2], vec![3]], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "match vector length")]
    fn rejects_width_mismatch() {
        let _ = SystolicMatVec::new(&[vec![1, 2]], &[1, 2, 3]);
    }
}
