//! Hexagonal systolic matrix multiplication (Kung & Leiserson) — the
//! workload the Fig. 3(c) hexagonal array exists for.
//!
//! Three data streams flow through a hexagonally connected array:
//! `a_{ik}` northward, `b_{kj}` eastward, and the accumulating
//! `c_{ij}` south-westward along the diagonal links. The classic
//! timetable places the meeting of the triple `(i, j, k)` — the
//! multiply-accumulate `c_{ij} += a_{ik}·b_{kj}` — at cell
//! `(x, y) = (i−k, j−k)` at cycle `t = i + j + k`:
//!
//! * fixing `(i, k)`: `a_{ik}` sits at `(i−k, j−k)` at `i+j+k`, so it
//!   moves one step in `+y` per cycle;
//! * fixing `(k, j)`: `b_{kj}` moves `+x` per cycle;
//! * fixing `(i, j)`: `c_{ij}` moves `(−1, −1)` per cycle — exactly
//!   the north-east↔south-west diagonal that distinguishes the hex
//!   array from a mesh.
//!
//! A cell is active when `t ≡ x + y (mod 3)` — the famous one-third
//! utilization of the hexagonal design. A dense `n × n` product uses
//! the `(2n−1) × (2n−1)` hex array; the design's real target is band
//! matrices, where the array size depends only on the bandwidths.

use crate::exec::{in_port_from, out_port_to, ArrayAlgorithm, Item};
use array_layout::graph::{CellId, CommGraph};

/// Hexagonal systolic matrix-multiply state: `C = A · B`, all `n × n`.
///
/// # Examples
///
/// ```
/// use systolic::algorithms::hex_matmul::HexMatMul;
///
/// let a = vec![vec![1, 2], vec![3, 4]];
/// let b = vec![vec![5, 6], vec![7, 8]];
/// assert_eq!(HexMatMul::multiply(&a, &b), vec![vec![19, 22], vec![43, 50]]);
/// ```
#[derive(Debug, Clone)]
pub struct HexMatMul {
    comm: CommGraph,
    n: usize,
    side: usize,
    a: Vec<Vec<i64>>,
    b: Vec<Vec<i64>>,
    c: Vec<Vec<i64>>,
    /// Per cell: in-port from the south (the `a` stream, moving +y).
    south_in: Vec<Option<usize>>,
    /// Per cell: in-port from the west (the `b` stream, moving +x).
    west_in: Vec<Option<usize>>,
    /// Per cell: in-port from the north-east diagonal (the `c`
    /// stream, moving −x,−y).
    ne_in: Vec<Option<usize>>,
    north_out: Vec<Option<usize>>,
    east_out: Vec<Option<usize>>,
    sw_out: Vec<Option<usize>>,
}

impl HexMatMul {
    /// Builds the array for square `a` and `b` of the same size.
    ///
    /// # Panics
    ///
    /// Panics if the matrices are empty, non-square, or differently
    /// sized.
    #[must_use]
    pub fn new(a: &[Vec<i64>], b: &[Vec<i64>]) -> Self {
        let n = a.len();
        assert!(n > 0, "matrices must be non-empty");
        assert!(
            a.iter().all(|r| r.len() == n),
            "A must be square ({n} x {n})"
        );
        assert_eq!(b.len(), n, "B must match A's size");
        assert!(
            b.iter().all(|r| r.len() == n),
            "B must be square ({n} x {n})"
        );
        let side = 2 * n - 1;
        let comm = CommGraph::hex(side, side);
        let cell = |r: usize, c: usize| comm.grid_id(r, c);
        let mut south_in = Vec::with_capacity(side * side);
        let mut west_in = Vec::with_capacity(side * side);
        let mut ne_in = Vec::with_capacity(side * side);
        let mut north_out = Vec::with_capacity(side * side);
        let mut east_out = Vec::with_capacity(side * side);
        let mut sw_out = Vec::with_capacity(side * side);
        for r in 0..side {
            for c in 0..side {
                let here = cell(r, c);
                south_in.push(
                    (r > 0).then(|| in_port_from(&comm, here, cell(r - 1, c))).flatten(),
                );
                west_in.push(
                    (c > 0).then(|| in_port_from(&comm, here, cell(r, c - 1))).flatten(),
                );
                ne_in.push(
                    (r + 1 < side && c + 1 < side)
                        .then(|| in_port_from(&comm, here, cell(r + 1, c + 1)))
                        .flatten(),
                );
                north_out.push(
                    (r + 1 < side).then(|| out_port_to(&comm, here, cell(r + 1, c))).flatten(),
                );
                east_out.push(
                    (c + 1 < side).then(|| out_port_to(&comm, here, cell(r, c + 1))).flatten(),
                );
                sw_out.push(
                    (r > 0 && c > 0)
                        .then(|| out_port_to(&comm, here, cell(r - 1, c - 1)))
                        .flatten(),
                );
            }
        }
        HexMatMul {
            comm,
            n,
            side,
            a: a.to_vec(),
            b: b.to_vec(),
            c: vec![vec![0; n]; n],
            south_in,
            west_in,
            ne_in,
            north_out,
            east_out,
            sw_out,
        }
    }

    /// The communication graph (a `(2n−1) × (2n−1)` hexagonal array).
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Cycles needed for every `c_{ij}` to complete:
    /// `max t = 2(n−1) + (n−1) + 1` plus a margin.
    #[must_use]
    pub fn cycles_needed(&self) -> usize {
        3 * (self.n - 1) + self.n + 2
    }

    /// The accumulated product.
    #[must_use]
    pub fn product(&self) -> &[Vec<i64>] {
        &self.c
    }

    /// Convenience: run to completion on an ideal executor.
    ///
    /// # Panics
    ///
    /// As for [`HexMatMul::new`].
    #[must_use]
    pub fn multiply(a: &[Vec<i64>], b: &[Vec<i64>]) -> Vec<Vec<i64>> {
        let mut hm = HexMatMul::new(a, b);
        let mut exec = crate::exec::IdealExecutor::new(&hm.comm().clone());
        let cycles = hm.cycles_needed();
        exec.run(&mut hm, cycles);
        hm.c
    }

    /// Reference implementation: direct triple loop.
    #[must_use]
    pub fn reference(a: &[Vec<i64>], b: &[Vec<i64>]) -> Vec<Vec<i64>> {
        crate::algorithms::matmul::SystolicMatMul::reference(a, b)
    }

    /// Decodes the `(i, j, k)` triple meeting at grid cell `(r, c)` at
    /// cycle `t`, if any: `x = c − (n−1)`, `y = r − (n−1)`,
    /// `k = (t − x − y)/3`, `i = x + k`, `j = y + k`.
    fn triple_at(&self, r: usize, c: usize, t: usize) -> Option<(usize, usize, usize)> {
        let off = self.n as i64 - 1;
        let x = c as i64 - off;
        let y = r as i64 - off;
        let rem = t as i64 - x - y;
        if rem < 0 || rem % 3 != 0 {
            return None;
        }
        let k = rem / 3;
        let i = x + k;
        let j = y + k;
        let n = self.n as i64;
        if (0..n).contains(&k) && (0..n).contains(&i) && (0..n).contains(&j) {
            Some((i as usize, j as usize, k as usize))
        } else {
            None
        }
    }
}

impl ArrayAlgorithm for HexMatMul {
    fn step_cell(&mut self, cell: CellId, cycle: usize, inputs: &[Item], outputs: &mut [Item]) {
        let idx = cell.index();
        let (r, c) = (idx / self.side, idx % self.side);
        let Some((i, j, k)) = self.triple_at(r, c, cycle) else {
            return;
        };
        // Gather the three streams: first meetings are host-injected.
        let a_val = if j == 0 {
            self.a[i][k]
        } else {
            self.south_in[idx]
                .and_then(|p| inputs[p])
                .expect("a-stream token must arrive on schedule")
        };
        let b_val = if i == 0 {
            self.b[k][j]
        } else {
            self.west_in[idx]
                .and_then(|p| inputs[p])
                .expect("b-stream token must arrive on schedule")
        };
        let c_val = if k == 0 {
            0
        } else {
            self.ne_in[idx]
                .and_then(|p| inputs[p])
                .expect("c-stream token must arrive on schedule")
        };
        let c_new = c_val + a_val * b_val;
        // Route onward (or retire).
        if j + 1 < self.n {
            let p = self.north_out[idx].expect("a-stream has room to move north");
            outputs[p] = Some(a_val);
        }
        if i + 1 < self.n {
            let p = self.east_out[idx].expect("b-stream has room to move east");
            outputs[p] = Some(b_val);
        }
        if k + 1 < self.n {
            let p = self.sw_out[idx].expect("c-stream has room to move south-west");
            outputs[p] = Some(c_new);
        } else {
            self.c[i][j] = c_new;
        }
    }
}

/// Band-matrix hexagonal multiply: the configuration Kung & Leiserson
/// actually designed for. With both operands banded (`a_{ik} = 0`
/// unless `|i−k| < w`, same for `b`), the meeting coordinates satisfy
/// `|x|, |y| < w`, so a `(2w−1) × (2w−1)` array multiplies band
/// matrices of **any** size `n` — the bounded-hardware property that
/// makes the hex array a practical systolic machine.
///
/// # Examples
///
/// ```
/// use systolic::algorithms::hex_matmul::HexBandMatMul;
///
/// // Tridiagonal (w = 2) 5×5 matrices on a 3×3 hex array.
/// let a = HexBandMatMul::band_matrix(5, 2, |i, k| (i + k + 1) as i64);
/// let b = HexBandMatMul::band_matrix(5, 2, |k, j| (k * 2 + j) as i64 - 3);
/// let c = HexBandMatMul::multiply(&a, &b, 2);
/// assert_eq!(c, systolic_reference(&a, &b));
/// # fn systolic_reference(a: &[Vec<i64>], b: &[Vec<i64>]) -> Vec<Vec<i64>> {
/// #     systolic::algorithms::matmul::SystolicMatMul::reference(a, b)
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HexBandMatMul {
    comm: CommGraph,
    n: usize,
    w: usize,
    side: usize,
    a: Vec<Vec<i64>>,
    b: Vec<Vec<i64>>,
    c: Vec<Vec<i64>>,
    south_in: Vec<Option<usize>>,
    west_in: Vec<Option<usize>>,
    ne_in: Vec<Option<usize>>,
    north_out: Vec<Option<usize>>,
    east_out: Vec<Option<usize>>,
    sw_out: Vec<Option<usize>>,
}

impl HexBandMatMul {
    /// Builds a banded `n × n` matrix with half-bandwidth `w`
    /// (`m[i][j] = f(i, j)` when `|i−j| < w`, else 0) — a convenience
    /// for constructing test operands.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ w`.
    #[must_use]
    pub fn band_matrix(n: usize, w: usize, f: impl Fn(usize, usize) -> i64) -> Vec<Vec<i64>> {
        assert!(w >= 1, "bandwidth must be at least 1");
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| if i.abs_diff(j) < w { f(i, j) } else { 0 })
                    .collect()
            })
            .collect()
    }

    /// Builds the band multiplier for `a · b`, both `n × n` with
    /// half-bandwidth `w`. The hex array has `(2w−1)²` cells no
    /// matter how large `n` is.
    ///
    /// # Panics
    ///
    /// Panics if the matrices are not square and equal-sized, if
    /// `w < 1`, or if either matrix has a nonzero entry outside the
    /// band.
    #[must_use]
    pub fn new(a: &[Vec<i64>], b: &[Vec<i64>], w: usize) -> Self {
        let n = a.len();
        assert!(n > 0, "matrices must be non-empty");
        assert!(w >= 1, "bandwidth must be at least 1");
        assert!(a.iter().all(|r| r.len() == n), "A must be square");
        assert_eq!(b.len(), n, "B must match A's size");
        assert!(b.iter().all(|r| r.len() == n), "B must be square");
        for (name, m) in [("A", a), ("B", b)] {
            for (i, row) in m.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    assert!(
                        v == 0 || i.abs_diff(j) < w,
                        "{name}[{i}][{j}] = {v} lies outside the bandwidth-{w} band"
                    );
                }
            }
        }
        let side = 2 * w - 1;
        let comm = CommGraph::hex(side, side);
        let cell = |r: usize, c: usize| comm.grid_id(r, c);
        let mut south_in = Vec::with_capacity(side * side);
        let mut west_in = Vec::with_capacity(side * side);
        let mut ne_in = Vec::with_capacity(side * side);
        let mut north_out = Vec::with_capacity(side * side);
        let mut east_out = Vec::with_capacity(side * side);
        let mut sw_out = Vec::with_capacity(side * side);
        for r in 0..side {
            for c in 0..side {
                let here = cell(r, c);
                south_in.push(
                    (r > 0).then(|| in_port_from(&comm, here, cell(r - 1, c))).flatten(),
                );
                west_in.push(
                    (c > 0).then(|| in_port_from(&comm, here, cell(r, c - 1))).flatten(),
                );
                ne_in.push(
                    (r + 1 < side && c + 1 < side)
                        .then(|| in_port_from(&comm, here, cell(r + 1, c + 1)))
                        .flatten(),
                );
                north_out.push(
                    (r + 1 < side).then(|| out_port_to(&comm, here, cell(r + 1, c))).flatten(),
                );
                east_out.push(
                    (c + 1 < side).then(|| out_port_to(&comm, here, cell(r, c + 1))).flatten(),
                );
                sw_out.push(
                    (r > 0 && c > 0)
                        .then(|| out_port_to(&comm, here, cell(r - 1, c - 1)))
                        .flatten(),
                );
            }
        }
        HexBandMatMul {
            comm,
            n,
            w,
            side,
            a: a.to_vec(),
            b: b.to_vec(),
            c: vec![vec![0; n]; n],
            south_in,
            west_in,
            ne_in,
            north_out,
            east_out,
            sw_out,
        }
    }

    /// The communication graph: a `(2w−1) × (2w−1)` hex array,
    /// independent of `n`.
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Cycles needed: `max t = (n−1) + (n−1) + (n−1)` plus margin.
    #[must_use]
    pub fn cycles_needed(&self) -> usize {
        3 * self.n + 2
    }

    /// The accumulated product.
    #[must_use]
    pub fn product(&self) -> &[Vec<i64>] {
        &self.c
    }

    /// Convenience: run to completion on an ideal executor.
    ///
    /// # Panics
    ///
    /// As for [`HexBandMatMul::new`].
    #[must_use]
    pub fn multiply(a: &[Vec<i64>], b: &[Vec<i64>], w: usize) -> Vec<Vec<i64>> {
        let mut hm = HexBandMatMul::new(a, b, w);
        let mut exec = crate::exec::IdealExecutor::new(&hm.comm().clone());
        let cycles = hm.cycles_needed();
        exec.run(&mut hm, cycles);
        hm.c
    }

    /// The range of `k` contributing to `c_{ij}` within the bands.
    fn k_range(&self, i: usize, j: usize) -> Option<(usize, usize)> {
        let w = self.w;
        let lo = i.max(j).saturating_sub(w - 1);
        let hi = (i.min(j) + w - 1).min(self.n - 1);
        (lo <= hi).then_some((lo, hi))
    }

    /// Decodes the meeting triple at `(r, c)` at cycle `t`, if it is a
    /// live in-band meeting.
    fn triple_at(&self, r: usize, c: usize, t: usize) -> Option<(usize, usize, usize)> {
        let off = self.w as i64 - 1;
        let x = c as i64 - off;
        let y = r as i64 - off;
        let rem = t as i64 - x - y;
        if rem < 0 || rem % 3 != 0 {
            return None;
        }
        let k = rem / 3;
        let i = x + k;
        let j = y + k;
        let n = self.n as i64;
        if !((0..n).contains(&k) && (0..n).contains(&i) && (0..n).contains(&j)) {
            return None;
        }
        let (i, j, k) = (i as usize, j as usize, k as usize);
        // Only meetings inside the band region carry tokens.
        let (lo, hi) = self.k_range(i, j)?;
        (lo..=hi).contains(&k).then_some((i, j, k))
    }
}

impl ArrayAlgorithm for HexBandMatMul {
    fn step_cell(&mut self, cell: CellId, cycle: usize, inputs: &[Item], outputs: &mut [Item]) {
        let idx = cell.index();
        let (r, c) = (idx / self.side, idx % self.side);
        let Some((i, j, k)) = self.triple_at(r, c, cycle) else {
            return;
        };
        let w = self.w;
        // a_{ik}'s first in-band meeting is at the smallest valid j.
        let a_first_j = k.saturating_sub(w - 1);
        let b_first_i = k.saturating_sub(w - 1);
        let (c_lo, c_hi) = self.k_range(i, j).expect("triple implies a live range");
        let a_val = if j == a_first_j {
            self.a[i][k]
        } else {
            self.south_in[idx]
                .and_then(|p| inputs[p])
                .expect("a-stream token must arrive on schedule")
        };
        let b_val = if i == b_first_i {
            self.b[k][j]
        } else {
            self.west_in[idx]
                .and_then(|p| inputs[p])
                .expect("b-stream token must arrive on schedule")
        };
        let c_val = if k == c_lo {
            0
        } else {
            self.ne_in[idx]
                .and_then(|p| inputs[p])
                .expect("c-stream token must arrive on schedule")
        };
        let c_new = c_val + a_val * b_val;
        // a_{ik} continues while the next j is still in band and range.
        if j + 1 < self.n && j < k + w - 1 {
            let p = self.north_out[idx].expect("a-stream has room to move north");
            outputs[p] = Some(a_val);
        }
        if i + 1 < self.n && i < k + w - 1 {
            let p = self.east_out[idx].expect("b-stream has room to move east");
            outputs[p] = Some(b_val);
        }
        if k < c_hi {
            let p = self.sw_out[idx].expect("c-stream has room to move south-west");
            outputs[p] = Some(c_new);
        } else {
            self.c[i][j] = c_new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_by_one() {
        assert_eq!(HexMatMul::multiply(&[vec![3]], &[vec![-4]]), vec![vec![-12]]);
    }

    #[test]
    fn two_by_two_matches_reference() {
        let a = vec![vec![1, 2], vec![3, 4]];
        let b = vec![vec![5, 6], vec![7, 8]];
        assert_eq!(HexMatMul::multiply(&a, &b), HexMatMul::reference(&a, &b));
    }

    #[test]
    fn four_by_four_matches_reference() {
        let a: Vec<Vec<i64>> = (0..4)
            .map(|i| (0..4).map(|j| ((i * 4 + j) % 7) as i64 - 3).collect())
            .collect();
        let b: Vec<Vec<i64>> = (0..4)
            .map(|i| (0..4).map(|j| ((i + j * 3) % 5) as i64 - 2).collect())
            .collect();
        assert_eq!(HexMatMul::multiply(&a, &b), HexMatMul::reference(&a, &b));
    }

    #[test]
    fn identity_passthrough() {
        let id = vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        let b = vec![vec![9, 8, 7], vec![6, 5, 4], vec![3, 2, 1]];
        assert_eq!(HexMatMul::multiply(&id, &b), b);
    }

    #[test]
    fn agrees_with_mesh_design() {
        // Two independent systolic designs computing the same product.
        let a = vec![vec![2, -1, 3], vec![0, 4, 1], vec![-2, 5, -3]];
        let b = vec![vec![1, 2, 0], vec![3, -1, 2], vec![4, 0, -2]];
        assert_eq!(
            HexMatMul::multiply(&a, &b),
            crate::algorithms::matmul::SystolicMatMul::multiply(&a, &b)
        );
    }

    #[test]
    fn one_third_utilization() {
        // A cell is active only when t ≡ x + y (mod 3): count active
        // (cell, cycle) pairs for n = 3 and verify the density.
        let a = vec![vec![1; 3]; 3];
        let hm = HexMatMul::new(&a, &a);
        let mut active = 0usize;
        let mut possible = 0usize;
        for t in 0..hm.cycles_needed() {
            for r in 0..hm.side {
                for c in 0..hm.side {
                    possible += 1;
                    if hm.triple_at(r, c, t).is_some() {
                        active += 1;
                    }
                }
            }
        }
        let density = active as f64 / possible as f64;
        assert!(density < 0.34, "hex utilization must be ≤ 1/3: {density}");
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let _ = HexMatMul::new(&[vec![1, 2]], &[vec![1], vec![2]]);
    }

    // ------------------------- band version -------------------------

    #[test]
    fn band_tridiagonal_matches_reference() {
        let a = HexBandMatMul::band_matrix(6, 2, |i, k| (i * 3 + k) as i64 - 4);
        let b = HexBandMatMul::band_matrix(6, 2, |k, j| (k + j * 2) as i64 - 3);
        assert_eq!(
            HexBandMatMul::multiply(&a, &b, 2),
            HexMatMul::reference(&a, &b)
        );
    }

    #[test]
    fn band_array_size_independent_of_n() {
        let small = HexBandMatMul::new(
            &HexBandMatMul::band_matrix(4, 3, |i, j| (i + j) as i64),
            &HexBandMatMul::band_matrix(4, 3, |i, j| (i * j) as i64 + 1),
            3,
        );
        let large = HexBandMatMul::new(
            &HexBandMatMul::band_matrix(40, 3, |i, j| (i + j) as i64),
            &HexBandMatMul::band_matrix(40, 3, |i, j| (i * j) as i64 + 1),
            3,
        );
        assert_eq!(small.comm().node_count(), 25);
        assert_eq!(
            small.comm().node_count(),
            large.comm().node_count(),
            "band array size must not depend on n"
        );
    }

    #[test]
    fn band_large_n_correct() {
        let n = 24;
        let a = HexBandMatMul::band_matrix(n, 3, |i, k| ((i * 7 + k * 3) % 11) as i64 - 5);
        let b = HexBandMatMul::band_matrix(n, 3, |k, j| ((k * 5 + j) % 9) as i64 - 4);
        assert_eq!(
            HexBandMatMul::multiply(&a, &b, 3),
            HexMatMul::reference(&a, &b)
        );
    }

    #[test]
    fn band_diagonal_only() {
        // w = 1: pure diagonal matrices on a single cell.
        let a = HexBandMatMul::band_matrix(5, 1, |i, _| i as i64 + 1);
        let b = HexBandMatMul::band_matrix(5, 1, |i, _| 2 * i as i64 - 3);
        let hm = HexBandMatMul::new(&a, &b, 1);
        assert_eq!(hm.comm().node_count(), 1);
        assert_eq!(
            HexBandMatMul::multiply(&a, &b, 1),
            HexMatMul::reference(&a, &b)
        );
    }

    #[test]
    #[should_panic(expected = "outside the bandwidth")]
    fn band_rejects_out_of_band_entries() {
        let mut a = HexBandMatMul::band_matrix(4, 2, |_, _| 1);
        a[0][3] = 5;
        let b = HexBandMatMul::band_matrix(4, 2, |_, _| 1);
        let _ = HexBandMatMul::new(&a, &b, 2);
    }
}
