//! Ideally synchronized systolic arrays and their execution under
//! clock skew.
//!
//! This crate provides the *processor array* half of the Fisher–Kung
//! reproduction: the lock-step semantics that assumption A1 grants an
//! ideally synchronized array, classic systolic algorithms to run on
//! it, and a skew-aware executor that shows what happens when the
//! clocking assumptions are violated.
//!
//! * [`exec`] — lock-step execution over a communication graph;
//! * [`algorithms`] — FIR filtering, matrix–vector, mesh matrix
//!   multiply, odd–even sort, and the Bentley–Kung tree machine;
//! * [`timing`] — setup/hold analysis per communication edge, the
//!   minimum safe period (the concrete σ + δ + τ of A5), and a
//!   fault-injecting executor;
//! * [`throughput`] — Section I's `1 − p^k` self-timing analysis.
//!
//! # Example: skew corrupts a computation, zero skew does not
//!
//! ```
//! use systolic::prelude::*;
//!
//! // A 4-tap filter over a short signal, under an ideal clock.
//! let weights = [1, -2, 3, 1];
//! let xs = [5, 1, 4, 2, 8, 3];
//! assert_eq!(
//!     SystolicFir::convolve(&weights, &xs),
//!     SystolicFir::reference(&weights, &xs),
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithms;
pub mod exec;
pub mod relay;
pub mod throughput;
pub mod timing;

/// Convenient re-exports of the crate's primary items.
pub mod prelude {
    pub use crate::algorithms::fir::SystolicFir;
    pub use crate::algorithms::hex_matmul::{HexBandMatMul, HexMatMul};
    pub use crate::algorithms::horner::SystolicHorner;
    pub use crate::algorithms::priority_queue::{PqOp, SystolicPriorityQueue};
    pub use crate::algorithms::matmul::SystolicMatMul;
    pub use crate::algorithms::matvec::SystolicMatVec;
    pub use crate::algorithms::sort::OddEvenSorter;
    pub use crate::algorithms::tree_machine::TreeSearchMachine;
    pub use crate::algorithms::trisolve::SystolicTriSolve;
    pub use crate::exec::{in_port_from, out_port_to, ArrayAlgorithm, IdealExecutor, Item};
    pub use crate::relay::Relayed;
    pub use crate::throughput::{PipelineModel, ThroughputSample};
    pub use crate::timing::{
        classify_edges, min_safe_period, CellTiming, ClockSchedule, HoldRaceError,
        SkewedExecutor, TransferStatus, CORRUPTION_MASK,
    };
}
