//! The self-timing speed-advantage analysis from Section I.
//!
//! The paper argues that self-timed arrays rarely beat clocked ones on
//! speed, because the throughput along a `k`-cell path is limited by
//! the slowest computation on it, and the probability that *some* cell
//! on the path does a worst-case computation is `1 − p^k → 1`
//! (argument 2 of Section I).
//!
//! [`PipelineModel`] simulates a `k`-stage self-timed pipeline whose
//! stages take a fast time with probability `p` and a slow (worst
//! case) time otherwise, using the asynchronous dataflow recurrence
//! `t[i][j] = max(t[i−1][j], t[i][j−1]) + d[i][j]`. The measured
//! steady-state period is compared against the clocked array's
//! worst-case period.

use sim_runtime::{Rng, SimRng};

/// A `k`-stage pipeline with two-point stage-delay distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineModel {
    /// Number of pipeline stages (cells on the path).
    pub stages: usize,
    /// Fast (typical) stage delay.
    pub fast: f64,
    /// Slow (worst-case) stage delay.
    pub slow: f64,
    /// Probability that a given cell's computation is *not* worst
    /// case (the paper's `p`).
    pub p_fast: f64,
    /// Extra per-wave handshake cost of the self-timed implementation
    /// (the paper's "extra hardware and delay in each cell"). Zero by
    /// default.
    pub handshake_overhead: f64,
}

/// Result of simulating one self-timed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputSample {
    /// Mean inter-completion time at the pipeline's output.
    pub self_timed_period: f64,
    /// The clocked array's period (worst-case stage delay).
    pub clocked_period: f64,
}

impl ThroughputSample {
    /// Self-timed speed advantage over the clocked design
    /// (`≥ 1`; → 1 as arrays grow, per the paper).
    #[must_use]
    pub fn advantage(&self) -> f64 {
        self.clocked_period / self.self_timed_period
    }
}

impl PipelineModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless `stages > 0`, `0 < fast ≤ slow`, and
    /// `0 ≤ p_fast ≤ 1`.
    #[must_use]
    pub fn new(stages: usize, fast: f64, slow: f64, p_fast: f64) -> Self {
        assert!(stages > 0, "need at least one stage");
        assert!(0.0 < fast && fast <= slow, "need 0 < fast <= slow");
        assert!((0.0..=1.0).contains(&p_fast), "p_fast must be in [0, 1]");
        PipelineModel {
            stages,
            fast,
            slow,
            p_fast,
            handshake_overhead: 0.0,
        }
    }

    /// Adds a per-wave handshake cost to the self-timed side — the
    /// paper's observation that self-timing "can be costly in terms of
    /// extra hardware and delay in each cell".
    ///
    /// # Panics
    ///
    /// Panics if `overhead` is negative.
    #[must_use]
    pub fn with_handshake_overhead(mut self, overhead: f64) -> Self {
        assert!(overhead >= 0.0, "overhead must be non-negative");
        self.handshake_overhead = overhead;
        self
    }

    /// Probability that a `k`-cell path contains at least one
    /// worst-case computation for a single item: `1 − p^k`
    /// (the paper's formula).
    #[must_use]
    pub fn worst_case_path_probability(&self) -> f64 {
        1.0 - self.p_fast.powi(self.stages as i32)
    }

    /// Simulates `waves` lock-step-equivalent computation waves
    /// through the self-timed array and returns measured periods.
    ///
    /// Systolic arrays are *coupled*: data flows in both directions
    /// (the FIR array's `x` rightward and `y` leftward), so cell `i`
    /// cannot start wave `w` before its **neighbours** finish wave
    /// `w − 1`:
    ///
    /// ```text
    /// t[i][w] = max(t[i−1][w−1], t[i][w−1], t[i+1][w−1]) + d[i][w]
    /// ```
    ///
    /// Slowness therefore propagates spatially, and the long-run wave
    /// period climbs toward the worst-case delay as the array grows —
    /// the paper's argument 2. Delays are re-drawn per cell per wave
    /// (data-dependent computation time); the period is measured over
    /// the steady-state second half of the run.
    ///
    /// # Panics
    ///
    /// Panics if `waves < 4`.
    #[must_use]
    pub fn simulate(&self, waves: usize, seed: u64) -> ThroughputSample {
        assert!(waves >= 4, "need a few waves to measure steady state");
        let mut rng = SimRng::seed_from_u64(seed);
        let k = self.stages;
        let mut prev = vec![0.0f64; k];
        let mut cur = vec![0.0f64; k];
        let mut finish_times = Vec::with_capacity(waves);
        for _ in 0..waves {
            for i in 0..k {
                let d = self.handshake_overhead
                    + if rng.gen_f64() < self.p_fast {
                        self.fast
                    } else {
                        self.slow
                    };
                let mut ready = prev[i];
                if i > 0 {
                    ready = ready.max(prev[i - 1]);
                }
                if i + 1 < k {
                    ready = ready.max(prev[i + 1]);
                }
                cur[i] = ready + d;
            }
            // The wave is delivered to the host when the boundary cell
            // finishes (outputs leave at cell 0 in the FIR design).
            finish_times.push(cur[0]);
            std::mem::swap(&mut prev, &mut cur);
        }
        let half = waves / 2;
        let steady = &finish_times[half..];
        let span = steady.last().expect("non-empty") - finish_times[half - 1];
        let self_timed_period = span / steady.len() as f64;
        ThroughputSample {
            self_timed_period,
            clocked_period: self.slow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_paper() {
        let m = PipelineModel::new(10, 1.0, 2.0, 0.9);
        let q = m.worst_case_path_probability();
        assert!((q - (1.0 - 0.9f64.powi(10))).abs() < 1e-12);
    }

    #[test]
    fn all_fast_runs_at_fast_period() {
        let m = PipelineModel::new(8, 1.0, 3.0, 1.0);
        let s = m.simulate(200, 1);
        assert!((s.self_timed_period - 1.0).abs() < 1e-9);
        assert!((s.advantage() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn all_slow_runs_at_worst_case() {
        let m = PipelineModel::new(8, 1.0, 3.0, 0.0);
        let s = m.simulate(200, 1);
        assert!((s.self_timed_period - 3.0).abs() < 1e-9);
        assert!((s.advantage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn advantage_shrinks_as_pipeline_grows() {
        // The paper's argument 2: longer paths are more likely to
        // contain a worst-case computation, so the self-timed
        // advantage decays toward 1.
        let adv = |k: usize| {
            PipelineModel::new(k, 1.0, 2.0, 0.9)
                .simulate(2400, 7)
                .advantage()
        };
        let (a1, a8, a256) = (adv(1), adv(8), adv(256));
        assert!(a1 > a8, "a1 {a1} vs a8 {a8}");
        assert!(a8 > a256 + 0.02, "a8 {a8} vs a256 {a256}");
        assert!(a256 < 1.4, "advantage should have mostly decayed: {a256}");
        assert!(a1 > 1.5, "short pipelines should show advantage: {a1}");
    }

    #[test]
    fn handshake_overhead_erases_remaining_advantage() {
        // The paper's conclusion: with realistic handshake cost the
        // large-array self-timed advantage disappears entirely.
        let plain = PipelineModel::new(256, 1.0, 2.0, 0.9).simulate(600, 7);
        let costly = PipelineModel::new(256, 1.0, 2.0, 0.9)
            .with_handshake_overhead(0.5)
            .simulate(600, 7);
        assert!(plain.advantage() > 1.0);
        assert!(
            costly.advantage() <= 1.05,
            "advantage with overhead: {}",
            costly.advantage()
        );
    }

    #[test]
    fn advantage_at_least_one() {
        for k in [2usize, 5, 50] {
            let s = PipelineModel::new(k, 1.0, 4.0, 0.5).simulate(200, k as u64);
            assert!(s.advantage() >= 1.0 - 1e-9, "k={k}: {}", s.advantage());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = PipelineModel::new(12, 1.0, 2.0, 0.8);
        assert_eq!(m.simulate(100, 3), m.simulate(100, 3));
    }
}
