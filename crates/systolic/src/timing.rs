//! Skew-aware execution: what clock skew *does* to an array.
//!
//! The paper's central practical claim is that skew between
//! communicating cells causes synchronization failure unless the
//! clock period is stretched (A5) — and that some failures (races)
//! cannot be fixed by any period. This module makes that concrete
//! with standard single-phase edge-triggered timing. For an edge
//! `u → v`, with clock arrival offsets `o_u`, `o_v`, period `T`,
//! output delay in `[δ_min, δ_max]`, and register windows
//! `setup`/`hold`:
//!
//! * **Setup constraint** — data launched at `u`'s edge must arrive
//!   before `v`'s *next* edge: `T ≥ (o_u − o_v) + δ_max + setup`.
//!   Violations are fixed by lowering the clock rate — the paper's
//!   "avoided by lowering clock rates".
//! * **Hold constraint** — fresh data must not overrun `v`'s capture
//!   of the old value at the *same* edge:
//!   `o_v − o_u ≤ δ_min − hold`. This is independent of `T`: no
//!   slowdown helps; only delay padding (`δ_min`) does — the paper's
//!   "and/or adding delay to circuits".
//!
//! [`SkewedExecutor`] runs an [`ArrayAlgorithm`] under a
//! [`ClockSchedule`], corrupting exactly the transfers whose
//! constraints fail, so experiments can check outputs against the
//! ideal lock-step run.

use crate::exec::{ArrayAlgorithm, Item};
use array_layout::graph::CommGraph;
use std::fmt;

/// Deterministic corruption applied to a value that loses a hold race
/// (modelling a metastable/garbage capture).
pub const CORRUPTION_MASK: i64 = 0x5A5A_5A5A;

/// Per-cell register and logic timing, in the same time units as the
/// clock schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTiming {
    /// Minimum clock-to-output plus wire delay.
    pub delta_min: f64,
    /// Maximum clock-to-output plus wire delay (the δ of A5).
    pub delta_max: f64,
    /// Register setup window.
    pub setup: f64,
    /// Register hold window.
    pub hold: f64,
}

impl CellTiming {
    /// Creates a timing spec.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ delta_min ≤ delta_max` and windows are
    /// non-negative.
    #[must_use]
    pub fn new(delta_min: f64, delta_max: f64, setup: f64, hold: f64) -> Self {
        assert!(
            0.0 <= delta_min && delta_min <= delta_max,
            "need 0 <= delta_min <= delta_max"
        );
        assert!(setup >= 0.0 && hold >= 0.0, "windows must be non-negative");
        CellTiming {
            delta_min,
            delta_max,
            setup,
            hold,
        }
    }
}

/// Clock arrival offsets for each cell, plus the clock period.
///
/// Offsets typically come from a clock tree's arrival-time analysis;
/// any per-cell phase profile is accepted.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockSchedule {
    offsets: Vec<f64>,
    period: f64,
}

impl ClockSchedule {
    /// Creates a schedule from explicit offsets.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive or any offset is negative.
    #[must_use]
    pub fn new(offsets: Vec<f64>, period: f64) -> Self {
        assert!(period > 0.0, "period must be positive");
        assert!(
            offsets.iter().all(|&o| o >= 0.0),
            "offsets must be non-negative"
        );
        ClockSchedule { offsets, period }
    }

    /// The zero-skew schedule for `n` cells.
    #[must_use]
    pub fn uniform(n: usize, period: f64) -> Self {
        ClockSchedule::new(vec![0.0; n], period)
    }

    /// Clock arrival offset of cell `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn offset(&self, i: usize) -> f64 {
        self.offsets[i]
    }

    /// All offsets, indexed by cell.
    #[must_use]
    pub fn offsets(&self) -> &[f64] {
        &self.offsets
    }

    /// The clock period.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Largest offset difference between any two communicating cells:
    /// the measured σ of this schedule.
    ///
    /// # Panics
    ///
    /// Panics if the graph references cells beyond the offset table.
    #[must_use]
    pub fn max_comm_skew(&self, comm: &CommGraph) -> f64 {
        comm.communicating_pairs()
            .into_iter()
            .map(|(a, b)| (self.offsets[a.index()] - self.offsets[b.index()]).abs())
            .fold(0.0, f64::max)
    }
}

/// Outcome of the timing analysis for one directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferStatus {
    /// Both constraints met: data transfers faithfully.
    Clean,
    /// Setup failed: the receiver samples before the new data lands
    /// (sees the stale previous value). Curable by a longer period.
    SetupViolation,
    /// Hold failed: the new data overruns the capture of the old
    /// (race). *Not* curable by any period.
    HoldViolation,
}

/// Classifies every directed edge of `comm` under the given schedule
/// and timing.
///
/// A hold violation takes precedence over a setup violation on the
/// same edge (the race corrupts the captured value regardless).
///
/// # Panics
///
/// Panics if the schedule covers fewer cells than the graph.
#[must_use]
pub fn classify_edges(
    comm: &CommGraph,
    schedule: &ClockSchedule,
    timing: CellTiming,
) -> Vec<TransferStatus> {
    assert!(
        schedule.offsets().len() >= comm.node_count(),
        "schedule must cover every cell"
    );
    comm.edges()
        .iter()
        .map(|e| {
            let (ou, ov) = (
                schedule.offset(e.src.index()),
                schedule.offset(e.dst.index()),
            );
            if ov - ou > timing.delta_min - timing.hold {
                TransferStatus::HoldViolation
            } else if schedule.period() < (ou - ov) + timing.delta_max + timing.setup {
                TransferStatus::SetupViolation
            } else {
                TransferStatus::Clean
            }
        })
        .collect()
}

/// Error returned by [`min_safe_period`] when some edge has a hold
/// race that no clock period can fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoldRaceError {
    /// Index of the racing edge.
    pub edge: usize,
    /// The skew `o_v − o_u` on that edge.
    pub skew: f64,
}

impl fmt::Display for HoldRaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edge {} has a hold race (receiver lags sender by {}): no clock period can fix it",
            self.edge, self.skew
        )
    }
}

impl std::error::Error for HoldRaceError {}

/// The minimum clock period at which every transfer is clean — the
/// concrete instance of A5's `σ + δ + τ` for this schedule — or the
/// hold race that makes no period safe.
///
/// # Errors
///
/// Returns [`HoldRaceError`] for the first edge whose hold constraint
/// fails.
///
/// # Panics
///
/// Panics if the offsets cover fewer cells than the graph.
pub fn min_safe_period(
    comm: &CommGraph,
    offsets: &[f64],
    timing: CellTiming,
) -> Result<f64, HoldRaceError> {
    assert!(
        offsets.len() >= comm.node_count(),
        "offsets must cover every cell"
    );
    let mut t_min = 0.0f64;
    for (idx, e) in comm.edges().iter().enumerate() {
        let (ou, ov) = (offsets[e.src.index()], offsets[e.dst.index()]);
        if ov - ou > timing.delta_min - timing.hold {
            return Err(HoldRaceError {
                edge: idx,
                skew: ov - ou,
            });
        }
        t_min = t_min.max((ou - ov) + timing.delta_max + timing.setup);
    }
    Ok(t_min)
}

/// Lock-step executor that applies the skew-induced faults of a
/// [`ClockSchedule`] to every transfer.
///
/// Clean edges behave exactly as in
/// [`IdealExecutor`](crate::exec::IdealExecutor); setup-violated edges
/// deliver the *previous* cycle's value (stale sample); hold-violated
/// edges deliver a deterministically corrupted value.
#[derive(Debug, Clone)]
pub struct SkewedExecutor {
    comm: CommGraph,
    status: Vec<TransferStatus>,
    edge_regs: Vec<Item>,
    edge_regs_prev: Vec<Item>,
    cycle: usize,
}

impl SkewedExecutor {
    /// Creates an executor for `comm` under `schedule` and `timing`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule covers fewer cells than the graph.
    #[must_use]
    pub fn new(comm: &CommGraph, schedule: &ClockSchedule, timing: CellTiming) -> Self {
        let status = classify_edges(comm, schedule, timing);
        SkewedExecutor {
            status,
            edge_regs: vec![None; comm.edge_count()],
            edge_regs_prev: vec![None; comm.edge_count()],
            comm: comm.clone(),
            cycle: 0,
        }
    }

    /// Per-edge transfer statuses.
    #[must_use]
    pub fn statuses(&self) -> &[TransferStatus] {
        &self.status
    }

    /// Returns `true` when every edge transfers cleanly (execution
    /// will match the ideal executor exactly).
    #[must_use]
    pub fn is_faithful(&self) -> bool {
        self.status.iter().all(|&s| s == TransferStatus::Clean)
    }

    /// Runs one cycle, applying per-edge fault semantics.
    pub fn cycle<A: ArrayAlgorithm>(&mut self, alg: &mut A) {
        let mut next = vec![None; self.edge_regs.len()];
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for cell in self.comm.cells() {
            inputs.clear();
            for &e in self.comm.in_edge_ids(cell) {
                let v = match self.status[e] {
                    TransferStatus::Clean => self.edge_regs[e],
                    TransferStatus::SetupViolation => self.edge_regs_prev[e],
                    TransferStatus::HoldViolation => {
                        self.edge_regs[e].map(|v| v ^ CORRUPTION_MASK)
                    }
                };
                inputs.push(v);
            }
            let out_ids = self.comm.out_edge_ids(cell);
            outputs.clear();
            outputs.resize(out_ids.len(), None);
            alg.step_cell(cell, self.cycle, &inputs, &mut outputs);
            for (&e, &v) in out_ids.iter().zip(outputs.iter()) {
                next[e] = v;
            }
        }
        self.edge_regs_prev = std::mem::replace(&mut self.edge_regs, next);
        self.cycle += 1;
    }

    /// Runs `n` cycles.
    pub fn run<A: ArrayAlgorithm>(&mut self, alg: &mut A, n: usize) {
        for _ in 0..n {
            self.cycle(alg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_layout::graph::CellId;

    fn timing() -> CellTiming {
        CellTiming::new(0.2, 1.0, 0.3, 0.1)
    }

    /// Relay: cell i forwards its input (from the left) rightward.
    struct Relay;
    impl ArrayAlgorithm for Relay {
        fn step_cell(&mut self, cell: CellId, _t: usize, inp: &[Item], out: &mut [Item]) {
            // On a linear array, forward the value coming from the
            // left neighbour to the right neighbour.
            let from_left = inp.iter().copied().flatten().next();
            if let Some(slot) = out.iter_mut().last() {
                let _ = cell;
                *slot = from_left;
            }
        }
    }

    #[test]
    fn zero_skew_is_faithful() {
        let comm = CommGraph::linear(4);
        let schedule = ClockSchedule::uniform(4, 2.0);
        let exec = SkewedExecutor::new(&comm, &schedule, timing());
        assert!(exec.is_faithful());
    }

    #[test]
    fn min_safe_period_matches_a5_shape() {
        // Offsets rising by 0.05 per cell: receiver-late edges need a
        // longer period; receiver-early edges risk hold.
        let comm = CommGraph::linear(3);
        let offsets = vec![0.0, 0.05, 0.10];
        let t = min_safe_period(&comm, &offsets, timing()).expect("no race");
        // Worst setup edge is right-to-left (sender later than
        // receiver by 0.05): T ≥ 0.05 + 1.0 + 0.3.
        assert!((t - 1.35).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn hold_race_not_fixable_by_period() {
        // Receiver's clock lags the sender's by more than
        // delta_min − hold = 0.1: a race.
        let comm = CommGraph::linear(2);
        let offsets = vec![0.0, 0.5];
        let err = min_safe_period(&comm, &offsets, timing()).unwrap_err();
        assert!(err.skew > 0.0);
        // And the classifier flags exactly the 0→1 edge.
        let schedule = ClockSchedule::new(offsets, 100.0);
        let status = classify_edges(&comm, &schedule, timing());
        assert_eq!(status[0], TransferStatus::HoldViolation);
        // The reverse edge (1→0) has negative skew: clean given a
        // large period.
        assert_eq!(status[1], TransferStatus::Clean);
    }

    #[test]
    fn setup_violation_cured_by_longer_period() {
        let comm = CommGraph::linear(2);
        let offsets = vec![0.1, 0.0];
        let fast = ClockSchedule::new(offsets.clone(), 1.0);
        let slow = ClockSchedule::new(offsets, 2.0);
        let status_fast = classify_edges(&comm, &fast, timing());
        let status_slow = classify_edges(&comm, &slow, timing());
        // Edge 0→1: sender clocked 0.1 late → needs T ≥ 1.4.
        assert_eq!(status_fast[0], TransferStatus::SetupViolation);
        assert_eq!(status_slow[0], TransferStatus::Clean);
    }

    #[test]
    fn skewed_run_with_clean_edges_matches_ideal() {
        let comm = CommGraph::linear(4);
        let schedule = ClockSchedule::uniform(4, 2.0);
        let mut skewed = SkewedExecutor::new(&comm, &schedule, timing());
        let mut ideal = crate::exec::IdealExecutor::new(&comm);
        skewed.edge_regs[0] = Some(42);
        ideal.inject(0, Some(42));
        let mut a1 = Relay;
        let mut a2 = Relay;
        for _ in 0..5 {
            skewed.cycle(&mut a1);
            ideal.cycle(&mut a2);
            for e in 0..comm.edge_count() {
                assert_eq!(skewed.edge_regs[e], ideal.edge_value(e));
            }
        }
    }

    #[test]
    fn hold_fault_corrupts_data() {
        let comm = CommGraph::linear(2);
        // Cell 1 clocked far too late: 0→1 races.
        let schedule = ClockSchedule::new(vec![0.0, 5.0], 100.0);
        let mut exec = SkewedExecutor::new(&comm, &schedule, timing());
        assert!(!exec.is_faithful());
        exec.edge_regs[0] = Some(7);
        let mut alg = Relay;
        exec.cycle(&mut alg);
        // Cell 1 received 7 ^ MASK and forwarded it (to cell 0; its
        // only out-edge).
        assert_eq!(exec.edge_regs[1], Some(7 ^ CORRUPTION_MASK));
    }

    #[test]
    fn setup_fault_delivers_stale_value() {
        let comm = CommGraph::linear(2);
        // Sender clocked late, period too short: stale sampling.
        let schedule = ClockSchedule::new(vec![1.0, 0.0], 1.0);
        let mut exec = SkewedExecutor::new(&comm, &schedule, timing());
        assert_eq!(exec.statuses()[0], TransferStatus::SetupViolation);
        let mut alg = Relay;
        exec.edge_regs[0] = Some(1);
        exec.cycle(&mut alg); // cell 1 sees prev (None), forwards None
        assert_eq!(exec.edge_regs[1], None);
        exec.edge_regs[0] = Some(2);
        exec.cycle(&mut alg); // now prev = Some(1): one cycle behind
        assert_eq!(exec.edge_regs[1], Some(1));
    }

    #[test]
    fn max_comm_skew_reports_largest_gap() {
        let comm = CommGraph::linear(3);
        let schedule = ClockSchedule::new(vec![0.0, 0.4, 0.1], 10.0);
        assert!((schedule.max_comm_skew(&comm) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn schedule_rejects_zero_period() {
        let _ = ClockSchedule::new(vec![0.0], 0.0);
    }
}
