//! Lock-step execution of ideally synchronized arrays (assumption A1).
//!
//! The paper's ideal model: all processors operate in lock step, and
//! every communication edge carries one data item per cycle. The
//! [`IdealExecutor`] implements exactly that semantics: each cycle,
//! every cell reads the values its in-edges delivered *last* cycle,
//! computes, and writes its out-edges for the *next* cycle — a global
//! synchronous dataflow step.
//!
//! Algorithms implement [`ArrayAlgorithm`]; host I/O (injecting
//! streams at boundary cells, collecting results) lives inside the
//! algorithm, which knows which of its cells touch the host.

use array_layout::graph::{CellId, CommGraph};

/// A value travelling on a communication edge. `None` models an idle
/// edge (no data this cycle).
pub type Item = Option<i64>;

/// The behaviour of one array algorithm: per-cell, per-cycle logic.
///
/// `inputs[k]` is the value delivered this cycle on the cell's `k`-th
/// in-edge (ordered as [`CommGraph::in_edge_ids`]); the cell fills
/// `outputs[k]` for its `k`-th out-edge ([`CommGraph::out_edge_ids`]).
/// Outputs start as `None` each cycle.
pub trait ArrayAlgorithm {
    /// One lock-step cycle of one cell.
    fn step_cell(&mut self, cell: CellId, cycle: usize, inputs: &[Item], outputs: &mut [Item]);
}

/// Lock-step executor over a communication graph.
///
/// # Examples
///
/// A two-cell ping-pong: each cell forwards what it received.
///
/// ```
/// use array_layout::graph::{CellId, CommGraph};
/// use systolic::exec::{ArrayAlgorithm, IdealExecutor, Item};
///
/// struct Forward;
/// impl ArrayAlgorithm for Forward {
///     fn step_cell(&mut self, _c: CellId, _t: usize, inp: &[Item], out: &mut [Item]) {
///         out[0] = inp.first().copied().flatten();
///     }
/// }
///
/// let comm = CommGraph::linear(2);
/// let mut exec = IdealExecutor::new(&comm);
/// exec.inject(0, Some(7)); // place a value on edge 0 (cell0 → cell1)
/// let mut alg = Forward;
/// exec.cycle(&mut alg);
/// // cell 1 received 7 and forwarded it back on its out-edge.
/// assert_eq!(exec.edge_value(1), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct IdealExecutor {
    comm: CommGraph,
    edge_regs: Vec<Item>,
    cycle: usize,
}

impl IdealExecutor {
    /// Creates an executor with all edges idle.
    #[must_use]
    pub fn new(comm: &CommGraph) -> Self {
        IdealExecutor {
            edge_regs: vec![None; comm.edge_count()],
            comm: comm.clone(),
            cycle: 0,
        }
    }

    /// The communication graph being executed.
    #[must_use]
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// Number of completed cycles.
    #[must_use]
    pub fn cycles_run(&self) -> usize {
        self.cycle
    }

    /// Value currently in flight on edge `e` (delivered next cycle).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn edge_value(&self, e: usize) -> Item {
        self.edge_regs[e]
    }

    /// Places a value on edge `e` directly (test/host use).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn inject(&mut self, e: usize, value: Item) {
        self.edge_regs[e] = value;
    }

    /// Runs one lock-step cycle of `alg` over every cell.
    pub fn cycle<A: ArrayAlgorithm>(&mut self, alg: &mut A) {
        let mut next = vec![None; self.edge_regs.len()];
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for cell in self.comm.cells() {
            inputs.clear();
            inputs.extend(
                self.comm
                    .in_edge_ids(cell)
                    .iter()
                    .map(|&e| self.edge_regs[e]),
            );
            let out_ids = self.comm.out_edge_ids(cell);
            outputs.clear();
            outputs.resize(out_ids.len(), None);
            alg.step_cell(cell, self.cycle, &inputs, &mut outputs);
            for (&e, &v) in out_ids.iter().zip(outputs.iter()) {
                next[e] = v;
            }
        }
        self.edge_regs = next;
        self.cycle += 1;
    }

    /// Runs `n` cycles.
    pub fn run<A: ArrayAlgorithm>(&mut self, alg: &mut A, n: usize) {
        for _ in 0..n {
            self.cycle(alg);
        }
    }
}

/// Index, within `cell`'s input ports (the order of
/// [`CommGraph::in_edge_ids`]), of the edge arriving from `src` —
/// or `None` if no such edge exists.
#[must_use]
pub fn in_port_from(comm: &CommGraph, cell: CellId, src: CellId) -> Option<usize> {
    comm.in_edge_ids(cell)
        .iter()
        .position(|&e| comm.edges()[e].src == src)
}

/// Index, within `cell`'s output ports (the order of
/// [`CommGraph::out_edge_ids`]), of the edge leading to `dst` —
/// or `None` if no such edge exists.
#[must_use]
pub fn out_port_to(comm: &CommGraph, cell: CellId, dst: CellId) -> Option<usize> {
    comm.out_edge_ids(cell)
        .iter()
        .position(|&e| comm.edges()[e].dst == dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each cell forwards its first input to all outputs, adding 1.
    struct Increment;

    impl ArrayAlgorithm for Increment {
        fn step_cell(&mut self, _c: CellId, _t: usize, inp: &[Item], out: &mut [Item]) {
            let v = inp.iter().copied().flatten().next();
            for slot in out {
                *slot = v.map(|x| x + 1);
            }
        }
    }

    #[test]
    fn values_advance_one_edge_per_cycle() {
        let comm = CommGraph::linear(4);
        let mut exec = IdealExecutor::new(&comm);
        // Edge 0 is cell0 → cell1 (push order of CommGraph::linear).
        exec.inject(0, Some(10));
        let mut alg = Increment;
        exec.cycle(&mut alg);
        // After one cycle cell 1 consumed 10 and put 11 on both its
        // out-edges (to cell 0 and cell 2).
        let e12 = comm.out_edge_ids(CellId::new(1))
            .iter()
            .copied()
            .find(|&e| comm.edges()[e].dst == CellId::new(2))
            .expect("edge 1→2 exists");
        assert_eq!(exec.edge_value(e12), Some(11));
        assert_eq!(exec.cycles_run(), 1);
    }

    #[test]
    fn lock_step_is_simultaneous() {
        // Two cells swap values every cycle: lock-step means both
        // reads happen before either write, so the values truly swap
        // instead of one overwriting the other.
        struct Swap;
        impl ArrayAlgorithm for Swap {
            fn step_cell(&mut self, _c: CellId, _t: usize, inp: &[Item], out: &mut [Item]) {
                out[0] = inp[0];
            }
        }
        let comm = CommGraph::linear(2);
        let mut exec = IdealExecutor::new(&comm);
        exec.inject(0, Some(1)); // 0→1
        exec.inject(1, Some(2)); // 1→0
        let mut alg = Swap;
        exec.cycle(&mut alg);
        assert_eq!(exec.edge_value(0), Some(2));
        assert_eq!(exec.edge_value(1), Some(1));
    }

    #[test]
    fn idle_edges_stay_idle() {
        let comm = CommGraph::linear(3);
        let mut exec = IdealExecutor::new(&comm);
        let mut alg = Increment;
        exec.run(&mut alg, 5);
        for e in 0..comm.edge_count() {
            assert_eq!(exec.edge_value(e), None);
        }
    }
}
