//! Running algorithms on graphs with pipeline relay registers
//! (Section VIII's concluding construction).
//!
//! The paper: for acyclic COMM graphs whose same-level edge lengths
//! are within a bounded ratio, "pipeline registers can be added on the
//! long edges, with the same number of registers on all of the edges
//! in a given level. This makes all wires have bounded length, thus
//! causing the time needed for a cell to operate and pass on its
//! results to be independent of the size of the tree."
//!
//! [`Relayed`] adapts a *latency-insensitive* [`ArrayAlgorithm`] (one
//! whose cells react to data presence, not to absolute cycle numbers —
//! the tree machine qualifies) to a
//! [`SubdividedComm`]: original
//! cells run the inner algorithm unchanged, relay cells forward their
//! single input one hop per cycle, exactly like a pipeline register.

use crate::exec::{ArrayAlgorithm, Item};
use array_layout::graph::{CellId, SubdividedComm};

/// Adapter running an algorithm on a register-subdivided graph.
///
/// # Examples
///
/// The tree machine still answers correctly — at the same one-query-
/// per-cycle throughput — when its H-tree wires carry pipeline
/// registers:
///
/// ```
/// use array_layout::prelude::*;
/// use systolic::prelude::*;
/// use systolic::relay::Relayed;
///
/// let keys = [1, 3, 5, 7];
/// let queries = [3, 4];
/// let mut machine = TreeSearchMachine::new(&keys, &queries);
/// let layout = Layout::htree_tree(machine.comm());
/// let plan = layout.pipeline_register_plan(2.0);
/// let sub = machine.comm().subdivided(&plan);
/// let mut exec = IdealExecutor::new(&sub.graph);
/// let mut relayed = Relayed::new(machine, &sub);
/// for _ in 0..64 { exec.cycle(&mut relayed); }
/// assert_eq!(relayed.inner().answers(), &[true, false]);
/// ```
#[derive(Debug, Clone)]
pub struct Relayed<A> {
    inner: A,
    original_cells: usize,
}

impl<A: ArrayAlgorithm> Relayed<A> {
    /// Wraps `inner` for execution on `sub`.
    #[must_use]
    pub fn new(inner: A, sub: &SubdividedComm) -> Self {
        Relayed {
            inner,
            original_cells: sub.original_cells,
        }
    }

    /// The wrapped algorithm (to collect its host-side outputs).
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the wrapped algorithm.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Unwraps the adapter.
    #[must_use]
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: ArrayAlgorithm> ArrayAlgorithm for Relayed<A> {
    fn step_cell(&mut self, cell: CellId, cycle: usize, inputs: &[Item], outputs: &mut [Item]) {
        if cell.index() < self.original_cells {
            self.inner.step_cell(cell, cycle, inputs, outputs);
        } else {
            // A pipeline register: forward the single input.
            outputs[0] = inputs[0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::tree_machine::TreeSearchMachine;
    use crate::exec::IdealExecutor;
    use array_layout::layout::Layout;

    fn run_relayed(keys: &[i64], queries: &[i64], spacing: f64) -> (Vec<bool>, usize) {
        let machine = TreeSearchMachine::new(keys, queries);
        let layout = Layout::htree_tree(machine.comm());
        let plan = layout.pipeline_register_plan(spacing);
        let relays: usize = plan.iter().sum();
        let sub = machine.comm().subdivided(&plan);
        let mut exec = IdealExecutor::new(&sub.graph);
        let mut relayed = Relayed::new(machine, &sub);
        // Generous cycle budget: latency grows with the relays.
        let cycles = 8 * (sub.graph.node_count() + queries.len() + 4);
        exec.run(&mut relayed, cycles);
        (relayed.into_inner().answers().to_vec(), relays)
    }

    #[test]
    fn tree_machine_correct_with_registers() {
        let keys: Vec<i64> = (0..16).map(|i| 2 * i).collect();
        let queries: Vec<i64> = (0..20).collect();
        let expected = TreeSearchMachine::search(&keys, &queries);
        let (answers, relays) = run_relayed(&keys, &queries, 2.0);
        assert!(relays > 0, "H-tree must need registers at spacing 2");
        assert_eq!(answers, expected);
    }

    #[test]
    fn tighter_spacing_means_more_registers_same_answers() {
        let keys: Vec<i64> = (0..8).map(|i| 3 * i).collect();
        let queries: Vec<i64> = (0..15).collect();
        let expected = TreeSearchMachine::search(&keys, &queries);
        let (a_coarse, r_coarse) = run_relayed(&keys, &queries, 4.0);
        let (a_fine, r_fine) = run_relayed(&keys, &queries, 1.0);
        assert_eq!(a_coarse, expected);
        assert_eq!(a_fine, expected);
        assert!(r_fine > r_coarse, "{r_fine} vs {r_coarse}");
    }

    #[test]
    fn register_plan_uniform_per_level_on_htrees() {
        // "the same number of registers on all of the edges in a
        // given level" falls out of the H-tree's symmetric lengths.
        let comm = array_layout::graph::CommGraph::complete_binary_tree(6);
        let layout = Layout::htree_tree(&comm);
        let plan = layout.pipeline_register_plan(2.0);
        // Group downward edges by the depth of their source node.
        let mut by_level: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        let depth_of = |mut i: usize| {
            let mut d = 0;
            while i > 0 {
                i = (i - 1) / 2;
                d += 1;
            }
            d
        };
        for (e, edge) in comm.edges().iter().enumerate() {
            if edge.src < edge.dst {
                by_level
                    .entry(depth_of(edge.src.index()))
                    .or_default()
                    .push(plan[e]);
            }
        }
        for (level, counts) in &by_level {
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "level {level}: register counts differ: {counts:?}"
            );
        }
        // And deeper levels need no more registers than the root.
        let firsts: Vec<usize> = by_level.values().map(|v| v[0]).collect();
        assert!(firsts.windows(2).all(|w| w[0] >= w[1]), "{firsts:?}");
    }

    #[test]
    fn zero_register_plan_reduces_to_plain_execution() {
        let keys = [1, 2, 3, 4];
        let queries = [2, 9];
        let machine = TreeSearchMachine::new(&keys, &queries);
        let comm = machine.comm().clone();
        let sub = comm.subdivided(&vec![0; comm.edge_count()]);
        let mut exec = IdealExecutor::new(&sub.graph);
        let mut relayed = Relayed::new(machine, &sub);
        let cycles = 32;
        exec.run(&mut relayed, cycles);
        assert_eq!(
            relayed.inner().answers(),
            TreeSearchMachine::search(&keys, &queries)
        );
    }
}
