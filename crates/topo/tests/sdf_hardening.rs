//! Hardening corpus for the SDF-subset parser, in the style of
//! `sim-observe`'s `json_hardening.rs`: every malformed input must be
//! rejected with a structured error (message + byte offset), never a
//! panic, hang, or stack overflow — under both the default and the
//! strict limit presets. The second half pins the round-trip contract
//! on the committed fixture corpus: parse → annotate → re-emit is
//! byte-identical for every well-formed fixture.

use array_layout::graph::CommGraph;
use array_layout::layout::Layout;
use sim_topo::prelude::*;
use sim_topo::quadrant::quadrant_spine;

fn assert_rejected(input: &str, why: &str) {
    for (preset, limits) in [("default", SdfLimits::default()), ("strict", SdfLimits::strict())] {
        let err = parse_with_limits(input, limits)
            .expect_err(&format!("{why} must be rejected under {preset} limits"));
        assert!(
            !err.message.is_empty(),
            "{why}: error must carry a message"
        );
        assert!(
            err.offset <= input.len(),
            "{why}: offset {} is past the input ({} bytes)",
            err.offset,
            input.len()
        );
        // The Display form is the structured operator-facing contract.
        let text = err.to_string();
        assert!(
            text.starts_with("SDF parse error at byte "),
            "{why}: unexpected Display form: {text}"
        );
    }
}

// ---------------------------------------------------------------------------
// Truncated documents
// ---------------------------------------------------------------------------

#[test]
fn truncated_documents_are_rejected() {
    let full = fixtures::VALID[0].1;
    // Every proper prefix of a valid fixture is invalid: cut at a few
    // byte positions spread across the file.
    for frac in [1, 10, 30, 50, 70, 90, 99] {
        let cut = full.len() * frac / 100;
        if cut == 0 || cut >= full.len() {
            continue;
        }
        if !full.is_char_boundary(cut) {
            continue;
        }
        assert_rejected(&full[..cut], &format!("prefix of {frac}%"));
    }
    assert_rejected("", "empty input");
    assert_rejected("(", "lone open paren");
    assert_rejected("(DELAYFILE", "header only");
}

// ---------------------------------------------------------------------------
// Structural damage
// ---------------------------------------------------------------------------

#[test]
fn unmatched_parens_are_rejected() {
    assert_rejected(
        "(DELAYFILE\n  (SDFVERSION \"3.0\")\n  (DESIGN \"d\")\n  (TIMESCALE 1ns)\n))\n",
        "extra closing paren",
    );
    assert_rejected(
        "(DELAYFILE\n  (SDFVERSION \"3.0\")\n  (DESIGN \"d\")\n  (TIMESCALE 1ns)\n",
        "missing closing paren",
    );
    assert_rejected("())", "empty list with trailer");
}

#[test]
fn wrong_keywords_and_orders_are_rejected() {
    assert_rejected("(DELAYFILE (DESIGN \"d\"))", "DESIGN before SDFVERSION");
    assert_rejected("(WRONGFILE)", "wrong top-level keyword");
    assert_rejected(
        "(DELAYFILE (SDFVERSION \"3.0\") (DESIGN \"d\") (TIMESCALE 1ns) (NOTACELL))",
        "unknown section",
    );
}

#[test]
fn strings_are_validated() {
    assert_rejected(
        "(DELAYFILE (SDFVERSION \"3.0) (DESIGN \"d\") (TIMESCALE 1ns))",
        "unterminated string",
    );
    assert_rejected(
        "(DELAYFILE (SDFVERSION \"3.\u{1}0\") (DESIGN \"d\") (TIMESCALE 1ns))",
        "control byte in string",
    );
}

// ---------------------------------------------------------------------------
// Numeric hardening
// ---------------------------------------------------------------------------

fn one_iopath(triple: &str) -> String {
    format!(
        "(DELAYFILE\n  (SDFVERSION \"3.0\")\n  (DESIGN \"d\")\n  (TIMESCALE 1ns)\n  \
         (CELL\n    (CELLTYPE \"B\")\n    (INSTANCE he)\n    (DELAY (ABSOLUTE\n      \
         (IOPATH I O ({triple}))\n    ))\n  )\n)\n"
    )
}

#[test]
fn non_finite_and_overflowing_delays_are_rejected() {
    for (triple, why) in [
        ("1e999:1.0:1.1", "overflow to infinity"),
        ("NaN:1.0:2.0", "NaN delay"),
        ("inf:1.0:2.0", "explicit infinity"),
        ("-1.0:0.0:1.0", "negative delay"),
        ("2.0:1.0:3.0", "non-monotone triple"),
        ("1.0:2.0", "two-field triple"),
        ("1.0:2.0:3.0:4.0", "four-field triple"),
        ("a:b:c", "non-numeric triple"),
    ] {
        assert_rejected(&one_iopath(triple), why);
    }
}

// ---------------------------------------------------------------------------
// Resource limits
// ---------------------------------------------------------------------------

#[test]
fn nesting_bomb_is_a_structured_error_not_a_stack_overflow() {
    let bomb = "(".repeat(100_000);
    assert_rejected(&bomb, "nesting bomb");
    let err = parse(&bomb).expect_err("rejected");
    assert!(err.message.contains("depth"), "got: {}", err.message);
}

#[test]
fn byte_limit_is_enforced_under_strict_limits() {
    // A syntactically valid file padded past 64 KiB with whitespace.
    let mut big = String::from("(DELAYFILE\n  (SDFVERSION \"3.0\")\n  (DESIGN \"d\")\n  (TIMESCALE 1ns)\n");
    big.push_str(&" ".repeat(70 * 1024));
    big.push_str(")\n");
    assert!(parse(&big).is_ok(), "default limits have no byte cap");
    let err = parse_with_limits(&big, SdfLimits::strict()).expect_err("strict cap");
    assert!(err.message.contains("limit"), "got: {}", err.message);
}

#[test]
fn duplicate_instances_are_rejected() {
    let err = parse(fixtures::MALFORMED.iter().find(|(n, _)| *n == "dup_instance.sdf").unwrap().1)
        .expect_err("duplicate instance fixture");
    assert!(err.message.contains("duplicate"), "got: {}", err.message);
}

// ---------------------------------------------------------------------------
// Committed corpus: every bad fixture rejected, every good fixture
// round-trips byte-identically through parse → annotate → re-emit.
// ---------------------------------------------------------------------------

#[test]
fn every_malformed_fixture_is_rejected_with_a_structured_error() {
    let comm = CommGraph::mesh(8, 8);
    let layout = Layout::grid(&comm);
    let topo = quadrant_spine(&comm, &layout, &fixtures::params());
    for (name, text) in fixtures::MALFORMED {
        let outcome = parse(text).map_err(|e| e.to_string()).and_then(|sdf| {
            annotate(&topo, &sdf, 1.0, 0.1).map_err(|e| format!("SDF import error: {e}"))
        });
        let err = outcome.expect_err(&format!("{name} must be rejected"));
        assert!(!err.is_empty(), "{name}: error must be descriptive");
    }
}

#[test]
fn every_valid_fixture_parses_annotates_and_reemits_byte_identically() {
    let comm = CommGraph::mesh(8, 8);
    let layout = Layout::grid(&comm);
    let topo = quadrant_spine(&comm, &layout, &fixtures::params());
    for (name, text) in fixtures::VALID {
        let sdf = parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let delays = annotate(&topo, &sdf, 1.0, 0.1)
            .unwrap_or_else(|e| panic!("{name} must import: {e}"));
        assert!(delays.annotated_count() > 0, "{name} annotates something");
        assert_eq!(sdf.to_text(), text, "{name}: re-emit must be byte-identical");
        // And the canonical form is a fixed point of another cycle.
        let again = parse(&sdf.to_text()).expect("canonical form parses");
        assert_eq!(again, sdf, "{name}: parse(emit(x)) == x");
    }
}
