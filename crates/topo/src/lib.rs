//! # sim-topo — realistic clock-topology corpus
//!
//! The paper's skew bounds (Fisher & Kung 1983, Sections IV–V) are
//! about *physical* clock-distribution networks, yet the idealized
//! trees the other experiments use — H-tree, spine, serpentine — are
//! all symmetric. Real silicon is not: a Spartan-3-class FPGA clocks
//! from a center tile through H/V primary spines, quadrant buffers,
//! and secondary spine tiles. This crate supplies that missing
//! realistic corpus, in two pieces plus a comparison line:
//!
//! * [`quadrant`] — the quadrant/spine topology generator, emitting
//!   ordinary `clock_tree::ClockTree`s (plus hierarchical instance
//!   paths) so the whole existing toolbox applies unchanged.
//! * [`sdf`] — an SDF-subset parser and delay-annotation importer
//!   mapping external `IOPATH`/`INTERCONNECT` `min:typ:max` triples
//!   onto generated tree edges by instance path, hardened with
//!   byte/depth limits and structured errors like `sim-observe`'s
//!   JSON parser.
//! * [`gcs_local_skew_bound`] — the analytic gradient-clock-sync
//!   local-skew bound (arXiv 2301.05073) experiments quote next to
//!   the paper-model measurements.
//!
//! Committed `.sdf` fixtures live under `fixtures/` and are exposed
//! via [`fixtures`] so experiments and smoke scripts can import the
//! exact bytes the round-trip tests pin.

pub mod quadrant;
pub mod sdf;

/// Convenient glob import.
pub mod prelude {
    pub use crate::fixtures;
    pub use crate::gcs_local_skew_bound;
    pub use crate::quadrant::{quadrant_spine, QuadrantParams, QuadrantTopology};
    pub use crate::sdf::{
        annotate, parse, parse_with_limits, Corner, EdgeDelays, Sdf, SdfError, SdfLimits,
    };
}

/// The stylized gradient-clock-synchronization local-skew bound of
/// "Clock Distribution with Gradient TRIX" (arXiv 2301.05073): with
/// relative drift/uncertainty `u` between neighbours, GCS algorithms
/// hold the skew between *adjacent* nodes to `Θ(u · log D)` on a
/// network of diameter `D` — exponentially better than the trivial
/// `u · D`. Experiments print `u · (1 + log2(D))` as the analytic
/// comparison line next to measured tree skews.
///
/// # Panics
///
/// Panics when `u` is negative or `diameter < 1`.
#[must_use]
pub fn gcs_local_skew_bound(u: f64, diameter: f64) -> f64 {
    assert!(u >= 0.0, "uncertainty must be non-negative");
    assert!(diameter >= 1.0, "diameter must be at least 1");
    u * (1.0 + diameter.log2())
}

/// The committed SDF fixture corpus, embedded so binaries and tests
/// see the exact bytes the round-trip pins cover. All fixtures target
/// the `quad8` topology ([`fixtures::params`]).
pub mod fixtures {
    use crate::quadrant::QuadrantParams;

    /// Generator parameters of the topology every fixture annotates:
    /// an 8 × 8 die, one extra buffer stage per quadrant, secondary
    /// tiles serving two rows.
    #[must_use]
    pub fn params() -> QuadrantParams {
        QuadrantParams::new(8, 1, 2)
    }

    /// Well-formed fixtures: every one must parse, annotate the
    /// `quad8` topology, and re-emit byte-identically.
    pub const VALID: [(&str, &str); 2] = [
        (
            "quad8_typical.sdf",
            include_str!("../fixtures/quad8_typical.sdf"),
        ),
        (
            "quad8_corners.sdf",
            include_str!("../fixtures/quad8_corners.sdf"),
        ),
    ];

    /// Malformed fixtures: every one must be rejected somewhere in the
    /// parse → annotate pipeline with a structured error (most at
    /// parse; `unknown_instance.sdf` parses but fails import).
    pub const MALFORMED: [(&str, &str); 9] = [
        ("truncated.sdf", include_str!("../fixtures/bad/truncated.sdf")),
        ("unbalanced.sdf", include_str!("../fixtures/bad/unbalanced.sdf")),
        ("overflow.sdf", include_str!("../fixtures/bad/overflow.sdf")),
        ("nan.sdf", include_str!("../fixtures/bad/nan.sdf")),
        (
            "nonmonotone.sdf",
            include_str!("../fixtures/bad/nonmonotone.sdf"),
        ),
        (
            "dup_instance.sdf",
            include_str!("../fixtures/bad/dup_instance.sdf"),
        ),
        ("badport.sdf", include_str!("../fixtures/bad/badport.sdf")),
        (
            "deep_nesting.sdf",
            include_str!("../fixtures/bad/deep_nesting.sdf"),
        ),
        (
            "unknown_instance.sdf",
            include_str!("../fixtures/bad/unknown_instance.sdf"),
        ),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcs_bound_grows_logarithmically() {
        let u = 0.1;
        let d16 = gcs_local_skew_bound(u, 16.0);
        let d256 = gcs_local_skew_bound(u, 256.0);
        assert!((d16 - 0.5).abs() < 1e-12);
        // Squaring the diameter adds a constant, not a factor.
        assert!((d256 - d16 - u * 4.0).abs() < 1e-12);
    }
}
