//! SDF-subset parser and delay-annotation importer.
//!
//! Standard Delay Format is how real tool flows hand timing back to a
//! netlist: per-cell `IOPATH` delays and per-net `INTERCONNECT` delays,
//! each a `min:typ:max` triple. This module parses the small subset we
//! need and maps the delays onto edges of a generated
//! [`QuadrantTopology`](crate::quadrant::QuadrantTopology) by
//! hierarchical instance path, producing per-corner edge delays that
//! feed straight into `clock_tree::skew::ArrivalTimes::from_rates`.
//!
//! The accepted grammar (order is fixed — this keeps the canonical
//! emitter [`Sdf::to_text`] an exact inverse of [`parse`], which the
//! round-trip tests pin byte-for-byte):
//!
//! ```text
//! (DELAYFILE
//!   (SDFVERSION "3.0")
//!   (DESIGN "quad8")
//!   (TIMESCALE 1ns)
//!   (CELL
//!     (CELLTYPE "HUBBUF")
//!     (INSTANCE he)
//!     (DELAY (ABSOLUTE
//!       (IOPATH I O (2.4:3.0:3.6))
//!       (INTERCONNECT he/O qse/I (0.2:0.25:0.3))
//!     ))
//!   )
//! )
//! ```
//!
//! The parser is hardened the same way `sim-observe`'s JSON parser is:
//! an optional byte cap, a nesting-depth cap, and structured
//! [`SdfError`]s carrying the byte offset of the offending token.
//! Delays must be finite, non-negative, and monotone (`min ≤ typ ≤
//! max`); duplicate `CELL` instances are rejected.

use clock_tree::tree::{ClockTree, NodeId};
use sim_observe::fmt_f64;

use crate::quadrant::QuadrantTopology;

/// Resource limits for [`parse_with_limits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdfLimits {
    /// Reject inputs longer than this many bytes (`None` = unlimited).
    pub max_bytes: Option<usize>,
    /// Reject inputs whose parenthesis nesting exceeds this depth.
    pub max_depth: usize,
}

impl Default for SdfLimits {
    fn default() -> Self {
        SdfLimits {
            max_bytes: None,
            max_depth: 64,
        }
    }
}

impl SdfLimits {
    /// Conservative limits for untrusted inputs: 64 KiB, depth 16.
    #[must_use]
    pub fn strict() -> Self {
        SdfLimits {
            max_bytes: Some(64 * 1024),
            max_depth: 16,
        }
    }
}

/// A structured parse/validation error with the byte offset where the
/// problem was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdfError {
    pub message: String,
    pub offset: usize,
}

impl std::fmt::Display for SdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SDF parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SdfError {}

/// A `min:typ:max` delay triple. Always finite, non-negative, and
/// monotone after parsing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triple {
    pub min: f64,
    pub typ: f64,
    pub max: f64,
}

impl Triple {
    /// The delay at the given corner.
    #[must_use]
    pub fn corner(&self, c: Corner) -> f64 {
        match c {
            Corner::Min => self.min,
            Corner::Typ => self.typ,
            Corner::Max => self.max,
        }
    }
}

/// A timing corner of a [`Triple`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corner {
    Min,
    Typ,
    Max,
}

/// One delay entry inside a `CELL`'s `(DELAY (ABSOLUTE ...))` block.
#[derive(Debug, Clone, PartialEq)]
pub enum SdfDelay {
    /// Cell-internal input-to-output path delay. One triple (rise) or
    /// two (rise/fall); the importer uses the first.
    IoPath {
        input: String,
        output: String,
        triples: Vec<Triple>,
    },
    /// Net delay between two ports, written `<instance>/<port>`.
    Interconnect {
        from: String,
        to: String,
        triple: Triple,
    },
}

/// One `(CELL ...)` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SdfCell {
    pub celltype: String,
    pub instance: String,
    pub delays: Vec<SdfDelay>,
}

/// A parsed delay file.
#[derive(Debug, Clone, PartialEq)]
pub struct Sdf {
    pub version: String,
    pub design: String,
    pub timescale: String,
    pub cells: Vec<SdfCell>,
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    LParen,
    RParen,
    Str(String),
    Atom(String),
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Lexer { bytes, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Next token, or `Ok(None)` at end of input. The returned offset
    /// is where the token starts.
    fn next(&mut self) -> Result<Option<(Token, usize)>, SdfError> {
        self.skip_ws();
        let start = self.pos;
        let Some(&b) = self.bytes.get(self.pos) else {
            return Ok(None);
        };
        match b {
            b'(' => {
                self.pos += 1;
                Ok(Some((Token::LParen, start)))
            }
            b')' => {
                self.pos += 1;
                Ok(Some((Token::RParen, start)))
            }
            b'"' => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.bytes.get(self.pos) {
                        None => {
                            return Err(SdfError {
                                message: "unterminated string".to_owned(),
                                offset: start,
                            })
                        }
                        Some(b'"') => {
                            self.pos += 1;
                            return Ok(Some((Token::Str(s), start)));
                        }
                        Some(&c) if c < 0x20 => {
                            return Err(SdfError {
                                message: "control byte inside string".to_owned(),
                                offset: self.pos,
                            })
                        }
                        Some(&c) => {
                            s.push(c as char);
                            self.pos += 1;
                        }
                    }
                }
            }
            _ => {
                let mut end = self.pos;
                while let Some(&c) = self.bytes.get(end) {
                    if c == b'(' || c == b')' || c == b'"' || c.is_ascii_whitespace() {
                        break;
                    }
                    end += 1;
                }
                let text = std::str::from_utf8(&self.bytes[self.pos..end])
                    .map_err(|_| SdfError {
                        message: "non-UTF-8 atom".to_owned(),
                        offset: start,
                    })?
                    .to_owned();
                self.pos = end;
                Ok(Some((Token::Atom(text), start)))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    lexer: Lexer<'a>,
    peeked: Option<Option<(Token, usize)>>,
}

impl<'a> Parser<'a> {
    fn next(&mut self) -> Result<Option<(Token, usize)>, SdfError> {
        match self.peeked.take() {
            Some(t) => Ok(t),
            None => self.lexer.next(),
        }
    }

    fn peek(&mut self) -> Result<&Option<(Token, usize)>, SdfError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next()?);
        }
        Ok(self.peeked.as_ref().expect("just filled"))
    }

    fn err<T>(&self, message: impl Into<String>, offset: usize) -> Result<T, SdfError> {
        Err(SdfError {
            message: message.into(),
            offset,
        })
    }

    fn eof_offset(&self) -> usize {
        self.lexer.bytes.len()
    }

    fn expect_lparen(&mut self, what: &str) -> Result<usize, SdfError> {
        match self.next()? {
            Some((Token::LParen, o)) => Ok(o),
            Some((t, o)) => self.err(format!("expected `(` before {what}, found {t:?}"), o),
            None => self.err(
                format!("unexpected end of input (expected `(` before {what})"),
                self.eof_offset(),
            ),
        }
    }

    fn expect_rparen(&mut self, what: &str) -> Result<(), SdfError> {
        match self.next()? {
            Some((Token::RParen, _)) => Ok(()),
            Some((t, o)) => self.err(format!("expected `)` closing {what}, found {t:?}"), o),
            None => self.err(
                format!("unexpected end of input (expected `)` closing {what})"),
                self.eof_offset(),
            ),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SdfError> {
        match self.next()? {
            Some((Token::Atom(a), o)) => {
                if a == kw {
                    Ok(())
                } else {
                    self.err(format!("expected keyword `{kw}`, found `{a}`"), o)
                }
            }
            Some((t, o)) => self.err(format!("expected keyword `{kw}`, found {t:?}"), o),
            None => self.err(
                format!("unexpected end of input (expected keyword `{kw}`)"),
                self.eof_offset(),
            ),
        }
    }

    fn expect_atom(&mut self, what: &str) -> Result<(String, usize), SdfError> {
        match self.next()? {
            Some((Token::Atom(a), o)) => Ok((a, o)),
            Some((t, o)) => self.err(format!("expected {what}, found {t:?}"), o),
            None => self.err(
                format!("unexpected end of input (expected {what})"),
                self.eof_offset(),
            ),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String, SdfError> {
        match self.next()? {
            Some((Token::Str(s), _)) => Ok(s),
            Some((t, o)) => self.err(format!("expected quoted {what}, found {t:?}"), o),
            None => self.err(
                format!("unexpected end of input (expected quoted {what})"),
                self.eof_offset(),
            ),
        }
    }

    /// `(min:typ:max)` — finite, non-negative, monotone.
    fn triple(&mut self) -> Result<Triple, SdfError> {
        self.expect_lparen("a delay triple")?;
        let (text, off) = self.expect_atom("a `min:typ:max` delay triple")?;
        let parts: Vec<&str> = text.split(':').collect();
        if parts.len() != 3 {
            return self.err(
                format!("delay triple must be `min:typ:max`, found `{text}`"),
                off,
            );
        }
        let mut vals = [0.0f64; 3];
        for (i, p) in parts.iter().enumerate() {
            let v: f64 = p.parse().map_err(|_| SdfError {
                message: format!("`{p}` is not a number"),
                offset: off,
            })?;
            if !v.is_finite() {
                return self.err(format!("delay `{p}` is not finite"), off);
            }
            if v < 0.0 {
                return self.err(format!("delay `{p}` is negative"), off);
            }
            vals[i] = v;
        }
        if !(vals[0] <= vals[1] && vals[1] <= vals[2]) {
            return self.err(
                format!("non-monotone delay triple `{text}` (need min <= typ <= max)"),
                off,
            );
        }
        self.expect_rparen("the delay triple")?;
        Ok(Triple {
            min: vals[0],
            typ: vals[1],
            max: vals[2],
        })
    }

    /// A port reference `<instance>/<port>` for INTERCONNECT entries.
    fn port_ref(&mut self, what: &str) -> Result<String, SdfError> {
        let (text, off) = self.expect_atom(what)?;
        let Some((inst, port)) = text.rsplit_once('/') else {
            return self.err(
                format!("port reference `{text}` must be `<instance>/<port>`"),
                off,
            );
        };
        if inst.is_empty() || port.is_empty() {
            return self.err(
                format!("port reference `{text}` must be `<instance>/<port>`"),
                off,
            );
        }
        Ok(text)
    }

    fn cell(&mut self) -> Result<(SdfCell, usize), SdfError> {
        self.expect_lparen("CELLTYPE")?;
        self.expect_keyword("CELLTYPE")?;
        let celltype = self.expect_string("cell type")?;
        self.expect_rparen("CELLTYPE")?;

        self.expect_lparen("INSTANCE")?;
        self.expect_keyword("INSTANCE")?;
        let (instance, inst_off) = self.expect_atom("an instance path")?;
        self.expect_rparen("INSTANCE")?;

        self.expect_lparen("DELAY")?;
        self.expect_keyword("DELAY")?;
        self.expect_lparen("ABSOLUTE")?;
        self.expect_keyword("ABSOLUTE")?;

        let mut delays = Vec::new();
        loop {
            match self.peek()? {
                Some((Token::RParen, _)) => {
                    self.next()?;
                    break;
                }
                Some((Token::LParen, _)) => {
                    self.next()?;
                    let (kw, kw_off) = self.expect_atom("IOPATH or INTERCONNECT")?;
                    match kw.as_str() {
                        "IOPATH" => {
                            let (input, _) = self.expect_atom("an input port")?;
                            let (output, _) = self.expect_atom("an output port")?;
                            let mut triples = vec![self.triple()?];
                            if matches!(self.peek()?, Some((Token::LParen, _))) {
                                triples.push(self.triple()?);
                            }
                            self.expect_rparen("IOPATH")?;
                            delays.push(SdfDelay::IoPath {
                                input,
                                output,
                                triples,
                            });
                        }
                        "INTERCONNECT" => {
                            let from = self.port_ref("a source port reference")?;
                            let to = self.port_ref("a destination port reference")?;
                            let triple = self.triple()?;
                            self.expect_rparen("INTERCONNECT")?;
                            delays.push(SdfDelay::Interconnect { from, to, triple });
                        }
                        other => {
                            return self.err(
                                format!("unsupported delay entry `{other}` (subset: IOPATH, INTERCONNECT)"),
                                kw_off,
                            )
                        }
                    }
                }
                Some((t, o)) => {
                    let (t, o) = (t.clone(), *o);
                    return self.err(format!("expected a delay entry or `)`, found {t:?}"), o);
                }
                None => {
                    return self.err(
                        "unexpected end of input inside (DELAY (ABSOLUTE ...))".to_owned(),
                        self.eof_offset(),
                    )
                }
            }
        }
        self.expect_rparen("DELAY")?;
        self.expect_rparen("CELL")?;
        Ok((
            SdfCell {
                celltype,
                instance,
                delays,
            },
            inst_off,
        ))
    }

    fn file(&mut self) -> Result<Sdf, SdfError> {
        self.expect_lparen("DELAYFILE")?;
        self.expect_keyword("DELAYFILE")?;

        self.expect_lparen("SDFVERSION")?;
        self.expect_keyword("SDFVERSION")?;
        let version = self.expect_string("SDF version")?;
        self.expect_rparen("SDFVERSION")?;

        self.expect_lparen("DESIGN")?;
        self.expect_keyword("DESIGN")?;
        let design = self.expect_string("design name")?;
        self.expect_rparen("DESIGN")?;

        self.expect_lparen("TIMESCALE")?;
        self.expect_keyword("TIMESCALE")?;
        let (timescale, _) = self.expect_atom("a timescale")?;
        self.expect_rparen("TIMESCALE")?;

        let mut cells: Vec<SdfCell> = Vec::new();
        loop {
            match self.next()? {
                Some((Token::RParen, _)) => break,
                Some((Token::LParen, _)) => {
                    self.expect_keyword("CELL")?;
                    let (cell, inst_off) = self.cell()?;
                    if cells.iter().any(|c| c.instance == cell.instance) {
                        return self.err(
                            format!("duplicate CELL instance `{}`", cell.instance),
                            inst_off,
                        );
                    }
                    cells.push(cell);
                }
                Some((t, o)) => {
                    return self.err(format!("expected `(CELL ...)` or `)`, found {t:?}"), o)
                }
                None => {
                    return self.err(
                        "unexpected end of input (DELAYFILE not closed)".to_owned(),
                        self.eof_offset(),
                    )
                }
            }
        }
        if let Some((t, o)) = self.next()? {
            return self.err(format!("trailing garbage after DELAYFILE: {t:?}"), o);
        }
        Ok(Sdf {
            version,
            design,
            timescale,
            cells,
        })
    }
}

/// Parses with [`SdfLimits::default`].
///
/// # Errors
///
/// Returns a structured [`SdfError`] on any syntax or validation
/// problem.
pub fn parse(input: &str) -> Result<Sdf, SdfError> {
    parse_with_limits(input, SdfLimits::default())
}

/// Parses with explicit resource limits.
///
/// # Errors
///
/// Returns a structured [`SdfError`] on any syntax or validation
/// problem, or when a limit is exceeded.
pub fn parse_with_limits(input: &str, limits: SdfLimits) -> Result<Sdf, SdfError> {
    if let Some(max) = limits.max_bytes {
        if input.len() > max {
            return Err(SdfError {
                message: format!("input is {} bytes, limit is {max}", input.len()),
                offset: max,
            });
        }
    }
    // Depth pre-scan: a nesting bomb must produce a structured error,
    // never deep recursion.
    let mut depth = 0usize;
    for (i, &b) in input.as_bytes().iter().enumerate() {
        if b == b'(' {
            depth += 1;
            if depth > limits.max_depth {
                return Err(SdfError {
                    message: format!("nesting depth exceeds limit {}", limits.max_depth),
                    offset: i,
                });
            }
        } else if b == b')' {
            depth = depth.saturating_sub(1);
        }
    }
    let mut p = Parser {
        lexer: Lexer::new(input.as_bytes()),
        peeked: None,
    };
    p.file()
}

// ---------------------------------------------------------------------------
// Canonical emitter
// ---------------------------------------------------------------------------

fn fmt_delay(v: f64) -> String {
    fmt_f64(v)
}

impl Sdf {
    /// Canonical text form. [`parse`] ∘ [`Sdf::to_text`] is the
    /// identity, and for files already in canonical form (all committed
    /// fixtures are) the reverse composition is byte-identical too —
    /// the round-trip tests pin both directions.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("(DELAYFILE\n");
        out.push_str(&format!("  (SDFVERSION \"{}\")\n", self.version));
        out.push_str(&format!("  (DESIGN \"{}\")\n", self.design));
        out.push_str(&format!("  (TIMESCALE {})\n", self.timescale));
        for cell in &self.cells {
            out.push_str("  (CELL\n");
            out.push_str(&format!("    (CELLTYPE \"{}\")\n", cell.celltype));
            out.push_str(&format!("    (INSTANCE {})\n", cell.instance));
            out.push_str("    (DELAY (ABSOLUTE\n");
            for d in &cell.delays {
                match d {
                    SdfDelay::IoPath {
                        input,
                        output,
                        triples,
                    } => {
                        let ts: Vec<String> = triples
                            .iter()
                            .map(|t| {
                                format!(
                                    "({}:{}:{})",
                                    fmt_delay(t.min),
                                    fmt_delay(t.typ),
                                    fmt_delay(t.max)
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "      (IOPATH {input} {output} {})\n",
                            ts.join(" ")
                        ));
                    }
                    SdfDelay::Interconnect { from, to, triple } => {
                        out.push_str(&format!(
                            "      (INTERCONNECT {from} {to} ({}:{}:{}))\n",
                            fmt_delay(triple.min),
                            fmt_delay(triple.typ),
                            fmt_delay(triple.max)
                        ));
                    }
                }
            }
            out.push_str("    ))\n");
            out.push_str("  )\n");
        }
        out.push_str(")\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Importer: delays onto tree edges
// ---------------------------------------------------------------------------

/// Per-corner delay of every tree edge (indexed by child `NodeId`),
/// produced by [`annotate`]. Unannotated edges carry the `m ± ε` wire
/// model default; annotated edges carry exactly the file's delays
/// (IOPATH cell delay + INTERCONNECT wire delay).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDelays {
    min: Vec<f64>,
    typ: Vec<f64>,
    max: Vec<f64>,
    annotated: Vec<bool>,
}

impl EdgeDelays {
    /// The delay of the edge into `node` at `corner`.
    #[must_use]
    pub fn delay(&self, node: NodeId, corner: Corner) -> f64 {
        match corner {
            Corner::Min => self.min[node.index()],
            Corner::Typ => self.typ[node.index()],
            Corner::Max => self.max[node.index()],
        }
    }

    /// Whether the edge into `node` was explicitly annotated.
    #[must_use]
    pub fn is_annotated(&self, node: NodeId) -> bool {
        self.annotated[node.index()]
    }

    /// Number of explicitly annotated edges.
    #[must_use]
    pub fn annotated_count(&self) -> usize {
        self.annotated.iter().filter(|&&a| a).count()
    }

    /// Per-node delay *rates* (delay per unit wire length) at `corner`,
    /// in the form `ArrivalTimes::from_rates` consumes. Zero-length
    /// edges (only the root has one) get rate 0.
    #[must_use]
    pub fn rates(&self, tree: &ClockTree, corner: Corner) -> Vec<f64> {
        tree.nodes()
            .map(|n| {
                let len = tree.wire_length(n);
                if len > 0.0 {
                    self.delay(n, corner) / len
                } else {
                    0.0
                }
            })
            .collect()
    }
}

fn port_instance(port: &str) -> &str {
    port.rsplit_once('/').map_or(port, |(inst, _)| inst)
}

/// Maps a parsed delay file onto the edges of a generated topology.
///
/// * `IOPATH` in cell `X` annotates the tree edge into node `X` (the
///   cell's internal delay); the first triple (rise) is used.
/// * `INTERCONNECT a/O b/I` annotates the same edge with the net delay
///   and requires `a` to be the tree parent of `b`.
/// * Edges without annotations default to the `nominal ± epsilon` wire
///   model (delay = rate × length per corner).
///
/// # Errors
///
/// Unknown instance paths, annotations on the root or on a zero-length
/// edge, interconnects that do not follow a tree edge, and duplicate
/// annotations of the same edge are all structured errors.
pub fn annotate(
    topo: &QuadrantTopology,
    sdf: &Sdf,
    nominal: f64,
    epsilon: f64,
) -> Result<EdgeDelays, String> {
    assert!(nominal > 0.0 && epsilon >= 0.0 && epsilon <= nominal);
    let tree = topo.tree();
    let n = tree.node_count();
    let (mut min, mut typ, mut max) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
    let mut annotated = vec![false; n];
    let mut seen_iopath = vec![false; n];
    let mut seen_inter = vec![false; n];

    let resolve = |inst: &str| -> Result<NodeId, String> {
        let node = topo
            .node(inst)
            .ok_or_else(|| format!("unknown instance `{inst}` (not in the generated topology)"))?;
        if tree.parent(node).is_none() {
            return Err(format!(
                "cannot annotate the root `{inst}` (it has no incoming edge)"
            ));
        }
        if tree.wire_length(node) <= 0.0 {
            return Err(format!(
                "instance `{inst}` sits on a zero-length edge; its delay is not expressible as a wire rate"
            ));
        }
        Ok(node)
    };

    for cell in &sdf.cells {
        for d in &cell.delays {
            match d {
                SdfDelay::IoPath { triples, .. } => {
                    let node = resolve(&cell.instance)?;
                    if seen_iopath[node.index()] {
                        return Err(format!(
                            "duplicate IOPATH annotation for instance `{}`",
                            cell.instance
                        ));
                    }
                    seen_iopath[node.index()] = true;
                    annotated[node.index()] = true;
                    let t = triples[0];
                    min[node.index()] += t.min;
                    typ[node.index()] += t.typ;
                    max[node.index()] += t.max;
                }
                SdfDelay::Interconnect { from, to, triple } => {
                    let to_inst = port_instance(to);
                    let from_inst = port_instance(from);
                    let node = resolve(to_inst)?;
                    let parent = tree.parent(node).expect("resolve rejects the root");
                    if topo.instance(parent) != from_inst {
                        return Err(format!(
                            "INTERCONNECT {from} -> {to} does not follow a tree edge \
                             (parent of `{to_inst}` is `{}`)",
                            topo.instance(parent)
                        ));
                    }
                    if seen_inter[node.index()] {
                        return Err(format!(
                            "duplicate INTERCONNECT annotation for instance `{to_inst}`"
                        ));
                    }
                    seen_inter[node.index()] = true;
                    annotated[node.index()] = true;
                    min[node.index()] += triple.min;
                    typ[node.index()] += triple.typ;
                    max[node.index()] += triple.max;
                }
            }
        }
    }

    // Wire-model defaults for everything the file did not touch.
    for node in tree.nodes() {
        let i = node.index();
        if !annotated[i] {
            let len = tree.wire_length(node);
            min[i] = (nominal - epsilon) * len;
            typ[i] = nominal * len;
            max[i] = (nominal + epsilon) * len;
        }
    }

    Ok(EdgeDelays {
        min,
        typ,
        max,
        annotated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrant::{quadrant_spine, QuadrantParams};
    use array_layout::graph::CommGraph;
    use array_layout::layout::Layout;

    fn topo8() -> QuadrantTopology {
        let comm = CommGraph::mesh(8, 8);
        let layout = Layout::grid(&comm);
        quadrant_spine(&comm, &layout, &QuadrantParams::new(8, 1, 2))
    }

    const MINI: &str = "(DELAYFILE\n  (SDFVERSION \"3.0\")\n  (DESIGN \"quad8\")\n  (TIMESCALE 1ns)\n  (CELL\n    (CELLTYPE \"HUBBUF\")\n    (INSTANCE he)\n    (DELAY (ABSOLUTE\n      (IOPATH I O (2.4:3.0:3.6))\n    ))\n  )\n)\n";

    #[test]
    fn parses_and_round_trips_the_minimal_file() {
        let sdf = parse(MINI).expect("parses");
        assert_eq!(sdf.design, "quad8");
        assert_eq!(sdf.cells.len(), 1);
        assert_eq!(sdf.to_text(), MINI, "canonical emit is byte-identical");
    }

    #[test]
    fn annotation_overrides_only_the_named_edges() {
        let topo = topo8();
        let sdf = parse(MINI).expect("parses");
        let ed = annotate(&topo, &sdf, 1.0, 0.1).expect("imports");
        assert_eq!(ed.annotated_count(), 1);
        let he = topo.node("he").expect("he exists");
        assert_eq!(ed.delay(he, Corner::Typ), 3.0);
        // An untouched edge keeps the m ± ε default.
        let hw = topo.node("hw").expect("hw exists");
        let len = topo.tree().wire_length(hw);
        assert!((ed.delay(hw, Corner::Typ) - len).abs() < 1e-12);
        assert!((ed.delay(hw, Corner::Max) - 1.1 * len).abs() < 1e-12);
    }

    #[test]
    fn unknown_instances_and_non_tree_interconnects_are_rejected() {
        let topo = topo8();
        let bad_inst = MINI.replace("INSTANCE he", "INSTANCE nosuch");
        let sdf = parse(&bad_inst).expect("syntactically fine");
        let err = annotate(&topo, &sdf, 1.0, 0.1).expect_err("unknown instance");
        assert!(err.contains("unknown instance"), "got: {err}");

        let inter = MINI.replace(
            "(IOPATH I O (2.4:3.0:3.6))",
            "(INTERCONNECT hw/O qse/I (0.1:0.2:0.3))",
        );
        let sdf = parse(&inter).expect("syntactically fine");
        let err = annotate(&topo, &sdf, 1.0, 0.1).expect_err("hw is not qse's parent");
        assert!(err.contains("does not follow a tree edge"), "got: {err}");
    }

    #[test]
    fn root_annotation_is_rejected() {
        let topo = topo8();
        let sdf = parse(&MINI.replace("INSTANCE he", "INSTANCE center")).expect("parses");
        let err = annotate(&topo, &sdf, 1.0, 0.1).expect_err("root has no incoming edge");
        assert!(err.contains("root"), "got: {err}");
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = parse("(DELAYFILE").expect_err("truncated");
        assert_eq!(err.offset, 10);
        assert!(err.to_string().starts_with("SDF parse error at byte 10:"));
    }
}
