//! Quadrant/spine clock topology generator.
//!
//! Real FPGA silicon (Spartan-3-class) does not distribute its clock
//! on a balanced H-tree: a center tile drives horizontal/vertical
//! primary spines, per-quadrant buffers repeat the signal, and
//! secondary spine tiles fan out to rows of leaf loads. The result is
//! *asymmetric* — leaves in different quadrants sit at very different
//! tree distances — which is exactly the regime where the paper's
//! difference model (Section IV) predicts skew growing with array
//! size while a balanced tree would predict none.
//!
//! [`quadrant_spine`] reproduces that shape over any `k × k` mesh with
//! a uniform-pitch layout, emitting an ordinary [`ClockTree`] so the
//! whole existing toolbox — `with_buffer_faults`, `attribute_skew`,
//! the `m ± ε` wire model, Monte-Carlo sampling — applies unchanged.
//! Every generated node carries a hierarchical instance path
//! (`center`, `he`, `qse`, `qse.b1`, `qse.s0`, `qse.r4`, `qse.r4.c5`,
//! …) so external delay annotations (SDF, [`crate::sdf`]) can address
//! individual edges.
//!
//! Structure, from the root outward:
//!
//! ```text
//! center ─ hw ─ qnw ─ b1 … ─ s0 ─ r3 ─ r2 ─ s1 ─ r1 ─ r0      (spine)
//!     │     └─ qsw ─ …         │    └ c2 ─ c1 ─ c0            (rows)
//!     └─ he ─ qne ─ …          └ first row tap
//!            └─ qse ─ …
//! ```
//!
//! * `center` — the root tile at the die center.
//! * `hw`/`he` — primary-spine hubs, one quarter pitch inside the
//!   west/east inner columns.
//! * `q{n,s}{w,e}` — quadrant buffers at each quadrant's row-center.
//! * `q*.b{i}` — `stages` extra buffer stages along the vertical run
//!   from the quadrant buffer to its first secondary tile.
//! * `q*.s{g}` — secondary spine tiles, one per group of `fanout`
//!   rows, half a pitch center-side of the group's first row.
//! * `q*.r{row}` — row taps on the quadrant's inner column, chained
//!   innermost-first; each tap drives its row's innermost cell.
//! * `q*.r{row}.c{col}` — the outward row chain serving the remaining
//!   cells of the row.
//!
//! Every node has at most two children (the `clock-tree` arity bound)
//! and every edge has strictly positive length, so per-edge buffer
//! fault sites and SDF rate annotations are always expressible.

use array_layout::geom::Point;
use array_layout::graph::CommGraph;
use array_layout::layout::Layout;
use clock_tree::tree::{ClockTree, ClockTreeBuilder, NodeId};

/// Parameters of the quadrant/spine generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadrantParams {
    /// Die side: the array is `k × k`. Must be even and at least 4 so
    /// each quadrant has at least two rows and columns.
    pub k: usize,
    /// Extra buffer stages on each quadrant's vertical primary run
    /// (0 = the quadrant buffer drives the first secondary tile
    /// directly).
    pub stages: usize,
    /// Rows served per secondary spine tile. Must be at least 1.
    pub fanout: usize,
}

impl QuadrantParams {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics when `k` is odd or below 4, or `fanout` is 0.
    #[must_use]
    pub fn new(k: usize, stages: usize, fanout: usize) -> Self {
        assert!(k >= 4 && k.is_multiple_of(2), "die side must be even and >= 4, got {k}");
        assert!(fanout >= 1, "secondary tile fanout must be >= 1");
        QuadrantParams { k, stages, fanout }
    }

    /// The Spartan-3-like preset used by the `bench::grid` cells: one
    /// buffer stage per quadrant run, secondary tiles serving two rows.
    #[must_use]
    pub fn spartan3_like(k: usize) -> Self {
        QuadrantParams::new(k, 1, 2)
    }
}

/// A generated quadrant/spine tree plus the hierarchical instance path
/// of every node, for addressing edges from external delay files.
#[derive(Debug, Clone)]
pub struct QuadrantTopology {
    tree: ClockTree,
    /// Instance path per node, indexed by `NodeId`.
    instances: Vec<String>,
    /// `(path, node)` sorted by path for reverse lookup.
    by_name: Vec<(String, NodeId)>,
    params: QuadrantParams,
}

impl QuadrantTopology {
    /// The generated clock tree.
    #[must_use]
    pub fn tree(&self) -> &ClockTree {
        &self.tree
    }

    /// Consumes the topology, keeping only the tree.
    #[must_use]
    pub fn into_tree(self) -> ClockTree {
        self.tree
    }

    /// The generator parameters this topology was built from.
    #[must_use]
    pub fn params(&self) -> QuadrantParams {
        self.params
    }

    /// The hierarchical instance path of `node`.
    #[must_use]
    pub fn instance(&self, node: NodeId) -> &str {
        &self.instances[node.index()]
    }

    /// Looks up a node by its hierarchical instance path.
    #[must_use]
    pub fn node(&self, instance: &str) -> Option<NodeId> {
        self.by_name
            .binary_search_by(|(name, _)| name.as_str().cmp(instance))
            .ok()
            .map(|i| self.by_name[i].1)
    }

    /// All instance paths in node order (root first).
    pub fn instances(&self) -> impl Iterator<Item = &str> {
        self.instances.iter().map(String::as_str)
    }
}

/// Builds the quadrant/spine topology over a `k × k` mesh.
///
/// `comm` must be a grid topology whose dimensions match `params.k`,
/// and `layout` must place its cells on a uniform-pitch grid with rows
/// and columns in ascending coordinate order ([`Layout::grid`] does).
///
/// # Panics
///
/// Panics when the graph is not a `k × k` grid, the layout does not
/// match the graph, or the pitch is not positive.
#[must_use]
pub fn quadrant_spine(comm: &CommGraph, layout: &Layout, params: &QuadrantParams) -> QuadrantTopology {
    let (rows, cols) = comm
        .grid_dims()
        .expect("quadrant spine requires a grid communication topology");
    assert_eq!(
        (rows, cols),
        (params.k, params.k),
        "graph dimensions must match QuadrantParams::k"
    );
    assert_eq!(
        layout.positions().len(),
        comm.node_count(),
        "layout does not match communication graph"
    );
    let k = params.k;
    let h = k / 2;
    let pos = |r: usize, c: usize| layout.position(comm.grid_id(r, c).index());
    let x_of = |c: usize| pos(0, c).x;
    let y_of = |r: usize| pos(r, 0).y;
    let px = x_of(1) - x_of(0);
    let py = y_of(1) - y_of(0);
    assert!(px > 0.0 && py > 0.0, "layout must have positive uniform pitch");

    let cx = (x_of(0) + x_of(k - 1)) / 2.0;
    let cy = (y_of(0) + y_of(k - 1)) / 2.0;

    let mut builder = ClockTreeBuilder::new(Point::new(cx, cy));
    let root = builder.root();
    let mut instances = vec!["center".to_owned()];
    let mut add = |b: &mut ClockTreeBuilder, parent: NodeId, p: Point, name: String| -> NodeId {
        let n = b.add_child(parent, p, None);
        debug_assert_eq!(n.index(), instances.len());
        instances.push(name);
        n
    };

    // West and east primary hubs, a quarter pitch inside the inner
    // columns so the horizontal spine run has positive length.
    for (side, inner_col) in [('w', h - 1), ('e', h)] {
        let xs = if side == 'w' {
            x_of(inner_col) + 0.25 * px
        } else {
            x_of(inner_col) - 0.25 * px
        };
        let hub = add(&mut builder, root, Point::new(xs, cy), format!("h{side}"));

        for (vert, row_lo) in [('n', 0usize), ('s', h)] {
            let qname = format!("q{vert}{side}");
            let row_hi = row_lo + h - 1;
            let qy = (y_of(row_lo) + y_of(row_hi)) / 2.0;
            let qroot = add(&mut builder, hub, Point::new(xs, qy), qname.clone());

            // Rows innermost-first: the spine marches outward from the
            // die center, the way real secondary spines are driven.
            let rows_order: Vec<usize> = if vert == 'n' {
                (row_lo..=row_hi).rev().collect()
            } else {
                (row_lo..=row_hi).collect()
            };
            // Secondary tiles sit half a pitch *center-side* of their
            // first row; `tilesign` points from a row toward the center.
            let tilesign = if vert == 'n' { 0.5 * py } else { -0.5 * py };
            let tile0_y = y_of(rows_order[0]) + tilesign;

            // Extra buffer stages interpolated along the vertical run
            // from the quadrant buffer to the first secondary tile.
            let mut prev = qroot;
            for i in 1..=params.stages {
                let t = i as f64 / (params.stages + 1) as f64;
                let sy = qy + t * (tile0_y - qy);
                prev = add(&mut builder, prev, Point::new(xs, sy), format!("{qname}.b{i}"));
            }

            for (g, group) in rows_order.chunks(params.fanout).enumerate() {
                let tile_y = y_of(group[0]) + tilesign;
                prev = add(&mut builder, prev, Point::new(xs, tile_y), format!("{qname}.s{g}"));
                for &r in group {
                    let tap = add(&mut builder, prev, Point::new(xs, y_of(r)), format!("{qname}.r{r}"));
                    builder.attach_cell(tap, comm.grid_id(r, inner_col));
                    // The outward row chain for the remaining columns.
                    let chain_cols: Vec<usize> = if side == 'w' {
                        (0..inner_col).rev().collect()
                    } else {
                        (inner_col + 1..k).collect()
                    };
                    let mut link = tap;
                    for c in chain_cols {
                        link = add(&mut builder, link, pos(r, c), format!("{qname}.r{r}.c{c}"));
                        builder.attach_cell(link, comm.grid_id(r, c));
                    }
                    prev = tap;
                }
            }
        }
    }

    let tree = builder.build();
    let mut by_name: Vec<(String, NodeId)> = instances
        .iter()
        .enumerate()
        .map(|(i, s)| (s.clone(), NodeId::new(i)))
        .collect();
    by_name.sort_by(|a, b| a.0.cmp(&b.0));
    QuadrantTopology {
        tree,
        instances,
        by_name,
        params: *params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(k: usize, stages: usize, fanout: usize) -> QuadrantTopology {
        let comm = CommGraph::mesh(k, k);
        let layout = Layout::grid(&comm);
        quadrant_spine(&comm, &layout, &QuadrantParams::new(k, stages, fanout))
    }

    #[test]
    fn covers_every_cell_exactly_once() {
        for (k, stages, fanout) in [(4, 0, 1), (8, 1, 2), (8, 3, 4), (16, 2, 3)] {
            let t = topo(k, stages, fanout);
            let cells = t.tree().attached_cells();
            assert_eq!(cells.len(), k * k, "k={k}");
            t.tree().validate().expect("generated tree is structurally valid");
        }
    }

    #[test]
    fn every_edge_has_positive_length() {
        for (k, stages, fanout) in [(4, 0, 1), (8, 1, 2), (8, 5, 3)] {
            let t = topo(k, stages, fanout);
            for n in t.tree().nodes().skip(1) {
                assert!(
                    t.tree().wire_length(n) > 0.0,
                    "edge into `{}` (k={k}) has zero length",
                    t.instance(n)
                );
            }
        }
    }

    #[test]
    fn instance_paths_round_trip_through_lookup() {
        let t = topo(8, 1, 2);
        for n in t.tree().nodes() {
            assert_eq!(t.node(t.instance(n)), Some(n), "path `{}`", t.instance(n));
        }
        assert_eq!(t.node("center"), Some(t.tree().root()));
        assert!(t.node("nonexistent").is_none());
    }

    #[test]
    fn the_tree_is_deliberately_asymmetric() {
        let t = topo(8, 1, 2);
        let tree = t.tree();
        // Corner cell vs center-adjacent cell: very different root
        // distances — the defining feature vs an equalized H-tree.
        let comm = CommGraph::mesh(8, 8);
        let near = tree.node_of_cell(comm.grid_id(3, 3)).unwrap();
        let far = tree.node_of_cell(comm.grid_id(0, 7)).unwrap();
        assert!(
            tree.root_distance(far) > tree.root_distance(near) + 4.0,
            "far {} vs near {}",
            tree.root_distance(far),
            tree.root_distance(near)
        );
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_die_side_is_rejected() {
        let _ = QuadrantParams::new(5, 1, 2);
    }
}
