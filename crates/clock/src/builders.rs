//! Clock-tree constructions for the layouts the paper studies.
//!
//! * [`htree`] — recursive spatial bisection over the cell positions;
//!   on a `2^k × 2^k` grid this is exactly the H-tree of Fig. 3, whose
//!   leaves are equidistant from the root (Lemma 1 / Theorem 2).
//! * [`spine`] — the Fig. 4(b) scheme: a single clock wire running
//!   along a one-dimensional array, each cell tapped in order. Under
//!   the summation model neighbouring cells are a constant tree-path
//!   apart (Theorem 3). Works for straight, folded (Fig. 5) and
//!   comb-shaped (Fig. 6) layouts by following the cell order.
//! * [`serpentine`] — a spine threaded boustrophedon through a 2-D
//!   grid: a natural but *losing* strategy under the summation model
//!   (neighbouring rows are ~2·cols apart on the tree), used as a
//!   contrast in experiment E4.
//! * [`comb_tree`] — trunk along the first row, one tooth per column:
//!   another natural 2-D strategy; communicating cells in adjacent
//!   columns are far apart along the tree.
//! * [`mirror_tree`] — a clock tree with the same shape as a binary
//!   tree COMM graph, distributing clock along the data paths
//!   (Section VIII's concluding remark).

use crate::tree::{ClockTree, ClockTreeBuilder, NodeId};
use array_layout::geom::Point;
use array_layout::graph::{CellId, CommGraph, Topology};
use array_layout::layout::Layout;

/// Builds an H-tree-style clock tree over all cells of `comm` at their
/// positions in `layout`, by recursive spatial bisection: each internal
/// node sits at the centre of its group's bounding box and splits the
/// group across its longer dimension.
///
/// On square power-of-two grids the result is the exact H-tree of
/// Fig. 3(b) with all leaves equidistant from the root. On other
/// bounded-aspect-ratio layouts leaves are *approximately* equidistant;
/// apply [`ClockTree::equalized`] to tune them exactly (Lemma 1).
///
/// # Panics
///
/// Panics if the layout and graph disagree on cell count, or the array
/// is empty.
#[must_use]
pub fn htree(comm: &CommGraph, layout: &Layout) -> ClockTree {
    assert_eq!(
        layout.positions().len(),
        comm.node_count(),
        "layout does not match communication graph"
    );
    assert!(comm.node_count() > 0, "cannot clock an empty array");
    let mut cells: Vec<(CellId, Point)> = comm
        .cells()
        .map(|c| (c, layout.position(c.index())))
        .collect();
    let bbox_center = |group: &[(CellId, Point)]| -> Point {
        let r = array_layout::geom::Rect::bounding(group.iter().map(|&(_, p)| p))
            .expect("group non-empty");
        r.min().midpoint(r.max())
    };
    let root_pos = bbox_center(&cells);
    let mut builder = ClockTreeBuilder::new(root_pos);
    // Iterative recursion to avoid call-stack depth limits on large
    // arrays: a work list of (parent node, group slice bounds).
    struct Task {
        parent: NodeId,
        lo: usize,
        hi: usize,
    }
    let mut tasks = vec![Task {
        parent: builder.root(),
        lo: 0,
        hi: cells.len(),
    }];
    // The root task is special: the root node itself serves the whole
    // group, so we split the group and hang both halves off the root
    // rather than adding a redundant child. To keep the code uniform we
    // instead treat every task as "split this group under this node".
    while let Some(Task { parent, lo, hi }) = tasks.pop() {
        let group = &mut cells[lo..hi];
        if group.len() == 1 {
            let (cell, pos) = group[0];
            // The parent node was created at this group's bbox centre,
            // which for a singleton *is* the cell position; attach
            // directly.
            let _ = pos;
            builder.attach_cell(parent, cell);
            continue;
        }
        // Split across the longer dimension of the bounding box.
        let r = array_layout::geom::Rect::bounding(group.iter().map(|&(_, p)| p))
            .expect("group non-empty");
        if r.width() >= r.height() {
            group.sort_by(|a, b| a.1.x.total_cmp(&b.1.x).then(a.1.y.total_cmp(&b.1.y)));
        } else {
            group.sort_by(|a, b| a.1.y.total_cmp(&b.1.y).then(a.1.x.total_cmp(&b.1.x)));
        }
        let mid = group.len() / 2;
        let (left, right) = (lo..lo + mid, lo + mid..hi);
        for range in [left, right] {
            let child_group = &cells[range.clone()];
            let center = bbox_center(child_group);
            let child = builder.add_child(parent, center, None);
            tasks.push(Task {
                parent: child,
                lo: range.start,
                hi: range.end,
            });
        }
    }
    builder.build()
}

/// Builds the Fig. 4(b) spine clock: a single wire running past the
/// cells of a one-dimensional array in index order, with the root at
/// cell 0 (the host end). Each spine node clocks its cell; the tree is
/// a path, so consecutive cells are exactly one cell pitch apart on
/// the tree no matter how long the array is (Theorem 3).
///
/// Works with any layout of a linear array — straight (Fig. 4), folded
/// (Fig. 5), or comb (Fig. 6) — because it follows the cells in array
/// order.
///
/// # Panics
///
/// Panics unless `comm` is a [`Topology::Linear`] array matching
/// `layout`.
#[must_use]
pub fn spine(comm: &CommGraph, layout: &Layout) -> ClockTree {
    let Topology::Linear { n } = comm.topology() else {
        panic!("spine clocking requires a linear array");
    };
    assert_eq!(layout.positions().len(), n, "layout does not match array");
    spine_through(
        (0..n).map(|i| (CellId::new(i), layout.position(i))),
    )
}

/// Builds a spine clock for a **ring** laid out folded
/// ([`Layout::folded_ring`]): the spine visits cells in the
/// interleaved order `0, n−1, 1, n−2, 2, …`, zig-zagging across the
/// fold. Every ring link — including the wrap edge — is then at most
/// two spine hops from its partner, so the summation-model skew is a
/// constant independent of `n`: Theorem 3 extended to rings.
///
/// # Panics
///
/// Panics unless `comm` is a [`Topology::Ring`] matching `layout`.
#[must_use]
pub fn spine_ring(comm: &CommGraph, layout: &Layout) -> ClockTree {
    let Topology::Ring { n } = comm.topology() else {
        panic!("spine_ring requires a ring array");
    };
    assert_eq!(layout.positions().len(), n, "layout does not match array");
    let order = (0..n).map(|pos| {
        let i = if pos % 2 == 0 { pos / 2 } else { n - 1 - pos / 2 };
        (CellId::new(i), layout.position(i))
    });
    spine_through(order)
}

/// Builds a spine clock threaded through an explicit cell order.
/// The first cell hosts the root.
///
/// # Panics
///
/// Panics if the order is empty.
#[must_use]
pub fn spine_through<I>(order: I) -> ClockTree
where
    I: IntoIterator<Item = (CellId, Point)>,
{
    let mut iter = order.into_iter();
    let (first_cell, first_pos) = iter.next().expect("spine needs at least one cell");
    let mut builder = ClockTreeBuilder::new(first_pos);
    builder.attach_cell(builder.root(), first_cell);
    let mut prev = builder.root();
    for (cell, pos) in iter {
        let node = builder.add_child(prev, pos, None);
        builder.attach_cell(node, cell);
        prev = node;
    }
    builder.build()
}

/// Builds a spine threaded boustrophedon (row by row, alternating
/// direction) through a grid array — the natural "snake" a designer
/// might route, and a strategy that the summation model punishes:
/// vertically adjacent cells are up to `2·cols − 1` apart on the tree.
///
/// # Panics
///
/// Panics unless `comm` is grid-like (mesh/torus/hex) and matches
/// `layout`.
#[must_use]
pub fn serpentine(comm: &CommGraph, layout: &Layout) -> ClockTree {
    let (rows, cols) = comm
        .grid_dims()
        .expect("serpentine requires a grid-like topology");
    assert_eq!(
        layout.positions().len(),
        comm.node_count(),
        "layout does not match communication graph"
    );
    let order = (0..rows).flat_map(|r| {
        let make = move |c: usize| (r, c);
        let cols_iter: Box<dyn Iterator<Item = (usize, usize)>> = if r % 2 == 0 {
            Box::new((0..cols).map(make))
        } else {
            Box::new((0..cols).rev().map(make))
        };
        cols_iter
    });
    spine_through(order.map(|(r, c)| {
        let cell = comm.grid_id(r, c);
        (cell, layout.position(cell.index()))
    }))
}

/// Builds a comb-shaped clock tree over a grid: a trunk along row 0
/// and one tooth (a downward path) per column. Each trunk node has two
/// children — the next trunk node and its column's tooth — so the tree
/// is binary. Cells in adjacent columns communicate but sit on
/// different teeth, up to `2·rows + 1` apart along the tree.
///
/// # Panics
///
/// Panics unless `comm` is grid-like and matches `layout`.
#[must_use]
pub fn comb_tree(comm: &CommGraph, layout: &Layout) -> ClockTree {
    let (rows, cols) = comm
        .grid_dims()
        .expect("comb tree requires a grid-like topology");
    assert_eq!(
        layout.positions().len(),
        comm.node_count(),
        "layout does not match communication graph"
    );
    let pos_of = |r: usize, c: usize| layout.position(comm.grid_id(r, c).index());
    let mut builder = ClockTreeBuilder::new(pos_of(0, 0));
    builder.attach_cell(builder.root(), comm.grid_id(0, 0));
    let mut trunk = builder.root();
    for c in 0..cols {
        if c > 0 {
            let node = builder.add_child(trunk, pos_of(0, c), None);
            builder.attach_cell(node, comm.grid_id(0, c));
            trunk = node;
        }
        // Tooth: walk down the column from row 1.
        let mut tooth = trunk;
        for r in 1..rows {
            let node = builder.add_child(tooth, pos_of(r, c), None);
            builder.attach_cell(node, comm.grid_id(r, c));
            tooth = node;
        }
    }
    builder.build()
}

/// Builds a clock tree with the same shape as a complete-binary-tree
/// COMM graph, laid out per `layout`: clock events travel along the
/// data paths (the Section VIII construction for tree machines).
///
/// # Panics
///
/// Panics unless `comm` is a [`Topology::BinaryTree`] matching
/// `layout`.
#[must_use]
pub fn mirror_tree(comm: &CommGraph, layout: &Layout) -> ClockTree {
    let Topology::BinaryTree { .. } = comm.topology() else {
        panic!("mirror_tree requires a complete binary tree graph");
    };
    assert_eq!(
        layout.positions().len(),
        comm.node_count(),
        "layout does not match communication graph"
    );
    let n = comm.node_count();
    let mut builder = ClockTreeBuilder::new(layout.position(0));
    builder.attach_cell(builder.root(), CellId::new(0));
    let mut node_of = vec![builder.root(); n];
    // COMM node i has children 2i+1, 2i+2; visit in index order so
    // parents are placed first.
    for i in 1..n {
        let parent = node_of[(i - 1) / 2];
        let node = builder.add_child(parent, layout.position(i), None);
        builder.attach_cell(node, CellId::new(i));
        node_of[i] = node;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_layout::geom::approx_eq;
    use array_layout::graph::CommGraph;
    use array_layout::layout::Layout;

    #[test]
    fn htree_on_power_of_two_grid_is_equidistant() {
        let comm = CommGraph::mesh(8, 8);
        let layout = Layout::grid(&comm);
        let tree = htree(&comm, &layout);
        assert!(tree.validate().is_ok());
        let dists: Vec<f64> = comm
            .cells()
            .map(|c| tree.root_distance(tree.node_of_cell(c).expect("attached")))
            .collect();
        let (min, max) = dists
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &d| (lo.min(d), hi.max(d)));
        assert!(
            approx_eq(min, max),
            "H-tree on 8x8 not equidistant: {min} vs {max}"
        );
    }

    #[test]
    fn htree_attaches_every_cell() {
        for (r, c) in [(1, 7), (3, 5), (4, 4), (5, 9)] {
            let comm = CommGraph::mesh(r, c);
            let layout = Layout::grid(&comm);
            let tree = htree(&comm, &layout);
            assert!(tree.validate().is_ok(), "{r}x{c}");
            assert_eq!(tree.attached_cells().len(), r * c, "{r}x{c}");
        }
    }

    #[test]
    fn htree_area_bounded_by_constant_factor() {
        // Lemma 1: the clock tree takes area no more than a constant
        // times the layout area. Total wire length is the area proxy.
        for k in [2usize, 4, 8, 16] {
            let comm = CommGraph::mesh(k, k);
            let layout = Layout::grid(&comm);
            let tree = htree(&comm, &layout);
            let ratio = tree.total_wire_length() / layout.area();
            assert!(ratio < 4.0, "k={k}: wire/area ratio {ratio}");
        }
    }

    #[test]
    fn htree_equalized_still_valid_and_equidistant() {
        let comm = CommGraph::mesh(3, 5);
        let layout = Layout::grid(&comm);
        let tree = htree(&comm, &layout).equalized();
        assert!(tree.validate().is_ok());
        let dists: Vec<f64> = comm
            .cells()
            .map(|c| tree.root_distance(tree.node_of_cell(c).expect("attached")))
            .collect();
        let (min, max) = dists
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &d| (lo.min(d), hi.max(d)));
        assert!(approx_eq(min, max), "not equidistant after tuning");
    }

    #[test]
    fn spine_neighbor_distance_constant() {
        for n in [4usize, 16, 64, 256] {
            let comm = CommGraph::linear(n);
            let layout = Layout::linear_row(&comm);
            let tree = spine(&comm, &layout);
            assert!(tree.validate().is_ok());
            for i in 0..n - 1 {
                let s = tree.summation_distance(CellId::new(i), CellId::new(i + 1));
                assert!(approx_eq(s, 1.0), "n={n}, i={i}: s={s}");
            }
        }
    }

    #[test]
    fn spine_on_folded_layout_keeps_neighbors_close() {
        let comm = CommGraph::linear(10);
        let layout = Layout::folded_linear(&comm);
        let tree = spine(&comm, &layout);
        for i in 0..9 {
            let s = tree.summation_distance(CellId::new(i), CellId::new(i + 1));
            assert!(s <= 2.0 + 1e-9, "i={i}: s={s}");
        }
    }

    #[test]
    fn spine_on_comb_layout_keeps_neighbors_close() {
        let comm = CommGraph::linear(32);
        let layout = Layout::comb(&comm, 4);
        let tree = spine(&comm, &layout);
        for i in 0..31 {
            let s = tree.summation_distance(CellId::new(i), CellId::new(i + 1));
            assert!(s <= 1.0 + 1e-9, "i={i}: s={s}");
        }
    }

    #[test]
    fn htree_on_linear_array_has_growing_summation_distance() {
        // The Fig. 3(a) H-tree fails under the summation model: the
        // middle pair's tree path grows with n (they meet at the root).
        let mut prev = 0.0;
        for n in [8usize, 32, 128] {
            let comm = CommGraph::linear(n);
            let layout = Layout::linear_row(&comm);
            let tree = htree(&comm, &layout);
            let mid = n / 2;
            let s = tree.summation_distance(CellId::new(mid - 1), CellId::new(mid));
            assert!(s > prev, "n={n}: s={s} did not grow (prev {prev})");
            prev = s;
        }
    }

    #[test]
    fn serpentine_vertical_neighbors_far_apart() {
        let comm = CommGraph::mesh(4, 8);
        let layout = Layout::grid(&comm);
        let tree = serpentine(&comm, &layout);
        assert!(tree.validate().is_ok());
        assert_eq!(tree.attached_cells().len(), 32);
        // Horizontally adjacent cells in the same row: distance 1.
        let s_row = tree.summation_distance(comm.grid_id(0, 0), comm.grid_id(0, 1));
        assert!(approx_eq(s_row, 1.0));
        // Vertical neighbours at the start of a row pay the whole
        // serpentine detour.
        let s_col = tree.summation_distance(comm.grid_id(0, 0), comm.grid_id(1, 0));
        assert!(s_col > 8.0, "s_col = {s_col}");
    }

    #[test]
    fn comb_tree_binary_and_complete() {
        let comm = CommGraph::mesh(5, 6);
        let layout = Layout::grid(&comm);
        let tree = comb_tree(&comm, &layout);
        assert!(tree.validate().is_ok());
        assert_eq!(tree.attached_cells().len(), 30);
        // Cells deep in adjacent teeth are far apart on the tree.
        let s = tree.summation_distance(comm.grid_id(4, 2), comm.grid_id(4, 3));
        assert!(s > 8.0, "s = {s}");
    }

    #[test]
    fn mirror_tree_follows_comm_structure() {
        let comm = CommGraph::complete_binary_tree(5);
        let layout = Layout::htree_tree(&comm);
        let tree = mirror_tree(&comm, &layout);
        assert!(tree.validate().is_ok());
        assert_eq!(tree.attached_cells().len(), comm.node_count());
        // Every COMM edge connects a parent/child pair, which are
        // adjacent on the clock tree: summation distance equals the
        // wire length between them, with no detour.
        for e in comm.edges() {
            let s = tree.summation_distance(e.src, e.dst);
            let direct = layout
                .position(e.src.index())
                .manhattan(layout.position(e.dst.index()));
            assert!(approx_eq(s, direct), "edge {e:?}: s={s}, direct={direct}");
        }
    }

    #[test]
    fn ring_spine_constant_skew_including_wrap() {
        for n in [4usize, 16, 64, 256] {
            let comm = CommGraph::ring(n);
            let layout = Layout::folded_ring(&comm);
            let tree = spine_ring(&comm, &layout);
            assert!(tree.validate().is_ok());
            let worst = comm
                .communicating_pairs()
                .into_iter()
                .map(|(a, b)| tree.summation_distance(a, b))
                .fold(0.0, f64::max);
            // Every ring link within two spine hops of ≤2 units each.
            assert!(worst <= 5.0 + 1e-9, "n={n}: worst tree path {worst}");
        }
    }

    #[test]
    fn spine_single_cell() {
        let comm = CommGraph::linear(1);
        let layout = Layout::linear_row(&comm);
        let tree = spine(&comm, &layout);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.attached_cells().len(), 1);
    }
}
