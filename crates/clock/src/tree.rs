//! Clock distribution trees (assumption A4).
//!
//! A clock for a clocked processor array is distributed by a rooted
//! binary tree `CLK` laid out in the plane; a cell of `COMM` can be
//! clocked iff it is also a node of `CLK`. This module provides the
//! tree structure itself: node positions, physical wire lengths, the
//! cell ↔ node attachment, and the path metrics the two skew models
//! consume — the *difference* metric `d` (A9) and the *summation*
//! metric `s` (A10/A11), both defined through the nearest common
//! ancestor.
//!
//! It also implements Lemma 5: every binary tree has an edge whose
//! removal splits any marked subset of nodes no worse than 2⁄3 : 1⁄3 —
//! the combinatorial step of the Section V-B lower bound.

use array_layout::geom::Point;
use array_layout::graph::CellId;
use sim_faults::{BufferFault, FaultPlan};
use std::fmt;

/// Identifier of one node of a [`ClockTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The raw dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A rooted binary clock-distribution tree laid out in the plane.
///
/// Wire lengths are physical lengths in cell-pitch units; by default
/// an edge is as long as the rectilinear distance between its
/// endpoints, but builders may stretch edges (modelling routing
/// detours or deliberate delay-tuning, as in Lemma 1's equalized
/// H-tree).
///
/// # Examples
///
/// ```
/// use clock_tree::tree::ClockTreeBuilder;
/// use array_layout::geom::Point;
/// use array_layout::graph::CellId;
///
/// let mut b = ClockTreeBuilder::new(Point::new(0.0, 0.0));
/// let left = b.add_child(b.root(), Point::new(-1.0, 0.0), None);
/// let right = b.add_child(b.root(), Point::new(1.0, 0.0), None);
/// b.attach_cell(left, CellId::new(0));
/// b.attach_cell(right, CellId::new(1));
/// let tree = b.build();
/// assert_eq!(tree.summation_distance(CellId::new(0), CellId::new(1)), 2.0);
/// assert_eq!(tree.difference_distance(CellId::new(0), CellId::new(1)), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ClockTree {
    positions: Vec<Point>,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    wire_len: Vec<f64>,
    cell_of: Vec<Option<CellId>>,
    node_of_cell: Vec<Option<NodeId>>,
    root_dist: Vec<f64>,
    depth: Vec<usize>,
}

impl ClockTree {
    /// The root node.
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes in the tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len()).map(NodeId)
    }

    /// Position of `node` in the plane.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// Parent of `node`, or `None` for the root.
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Children of `node` (at most two).
    #[must_use]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Physical length of the wire from `node` to its parent
    /// (0 for the root).
    #[must_use]
    pub fn wire_length(&self, node: NodeId) -> f64 {
        self.wire_len[node.index()]
    }

    /// The cell clocked at `node`, if any.
    #[must_use]
    pub fn cell(&self, node: NodeId) -> Option<CellId> {
        self.cell_of[node.index()]
    }

    /// The tree node that clocks `cell`, if the cell is attached.
    #[must_use]
    pub fn node_of_cell(&self, cell: CellId) -> Option<NodeId> {
        self.node_of_cell.get(cell.index()).copied().flatten()
    }

    /// Physical distance from the root to `node` along the tree.
    #[must_use]
    pub fn root_distance(&self, node: NodeId) -> f64 {
        self.root_dist[node.index()]
    }

    /// Number of edges from the root to `node`.
    #[must_use]
    pub fn depth(&self, node: NodeId) -> usize {
        self.depth[node.index()]
    }

    /// Length of the longest root-to-node path: the `P` of assumption
    /// A6 (equipotential distribution time is `≥ α · P`).
    #[must_use]
    pub fn max_root_distance(&self) -> f64 {
        self.root_dist.iter().copied().fold(0.0, f64::max)
    }

    /// Total wire length of the tree (layout-area proxy for Lemma 1).
    #[must_use]
    pub fn total_wire_length(&self) -> f64 {
        self.wire_len.iter().sum()
    }

    /// Longest single edge of the tree.
    #[must_use]
    pub fn max_edge_length(&self) -> f64 {
        self.wire_len.iter().copied().fold(0.0, f64::max)
    }

    /// Nearest common ancestor of two nodes.
    #[must_use]
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("deeper node has a parent");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("deeper node has a parent");
        }
        while a != b {
            a = self.parent(a).expect("non-root while walking up");
            b = self.parent(b).expect("non-root while walking up");
        }
        a
    }

    /// The *summation* metric `s` between two cells: the physical
    /// length of the tree path connecting their nodes — the sum of
    /// both cells' distances to their nearest common ancestor
    /// (assumptions A10/A11, Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics if either cell is not attached to the tree.
    #[must_use]
    pub fn summation_distance(&self, a: CellId, b: CellId) -> f64 {
        let (na, nb) = (self.require_node(a), self.require_node(b));
        let l = self.lca(na, nb);
        (self.root_distance(na) - self.root_distance(l))
            + (self.root_distance(nb) - self.root_distance(l))
    }

    /// The *difference* metric `d` between two cells: the positive
    /// difference of their root distances (assumption A9, Fig. 1).
    ///
    /// # Panics
    ///
    /// Panics if either cell is not attached to the tree.
    #[must_use]
    pub fn difference_distance(&self, a: CellId, b: CellId) -> f64 {
        let (na, nb) = (self.require_node(a), self.require_node(b));
        (self.root_distance(na) - self.root_distance(nb)).abs()
    }

    fn require_node(&self, cell: CellId) -> NodeId {
        self.node_of_cell(cell)
            .unwrap_or_else(|| panic!("cell {cell} is not attached to the clock tree"))
    }

    /// Ids of all attached cells.
    #[must_use]
    pub fn attached_cells(&self) -> Vec<CellId> {
        let mut cells: Vec<CellId> = self.cell_of.iter().copied().flatten().collect();
        cells.sort_unstable();
        cells
    }

    /// Number of buffers needed on the tree when buffers are inserted
    /// every `spacing` length units along every edge (assumption A7).
    ///
    /// # Panics
    ///
    /// Panics if `spacing` is not positive.
    #[must_use]
    pub fn buffer_count(&self, spacing: f64) -> usize {
        assert!(spacing > 0.0, "buffer spacing must be positive");
        self.wire_len
            .iter()
            .map(|&len| (len / spacing).floor() as usize)
            .sum()
    }

    /// Longest wire run without a buffer when buffers are inserted
    /// every `spacing` units; this bounds the per-event distribution
    /// step of a pipelined clock (assumption A7's constant τ).
    ///
    /// # Panics
    ///
    /// Panics if `spacing` is not positive.
    #[must_use]
    pub fn max_unbuffered_run(&self, spacing: f64) -> f64 {
        assert!(spacing > 0.0, "buffer spacing must be positive");
        self.wire_len
            .iter()
            .map(|&len| {
                let segments = (len / spacing).ceil().max(1.0);
                len / segments
            })
            .fold(0.0, f64::max)
    }

    /// Returns a copy of the tree with every *cell-bearing* node's
    /// parent wire stretched so that all attached cells lie at the
    /// same distance from the root (Lemma 1's delay tuning).
    ///
    /// The stretch models a routing wiggle; positions are unchanged.
    /// The result makes the difference metric `d` zero for every pair
    /// of cells.
    #[must_use]
    pub fn equalized(&self) -> ClockTree {
        let target = self
            .cell_of
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| self.root_dist[i])
            .fold(0.0, f64::max);
        let mut out = self.clone();
        for i in 0..out.positions.len() {
            if out.cell_of[i].is_some() {
                let slack = target - self.root_dist[i];
                if slack > 0.0 {
                    out.wire_len[i] += slack;
                }
            }
        }
        out.recompute_caches();
        out
    }

    /// Lemma 5: finds an edge (identified by its child node) whose
    /// removal splits the tree into two parts, each containing at most
    /// ⌈2·|M|/3⌉ of the marked nodes `M`.
    ///
    /// Returns the child endpoint of the separator edge, together with
    /// the number of marked nodes inside that child's subtree.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two nodes are marked.
    #[must_use]
    pub fn separator_edge(&self, marked: &[NodeId]) -> (NodeId, usize) {
        assert!(marked.len() >= 2, "Lemma 5 requires at least two marked nodes");
        let total = marked.len();
        let mut in_subtree = vec![0usize; self.node_count()];
        for &m in marked {
            in_subtree[m.index()] += 1;
        }
        // Children come after parents in builder order, so a reverse
        // scan accumulates subtree counts bottom-up.
        for i in (1..self.node_count()).rev() {
            let p = self.parent[i].expect("non-root has parent");
            in_subtree[p.index()] += in_subtree[i];
        }
        // Walk down from the root, always descending into the child
        // whose subtree holds the most marked nodes, until the current
        // subtree holds ≤ 2/3 of them. The classic argument guarantees
        // this stops at a valid separator.
        let limit = (2 * total).div_ceil(3);
        let mut node = self.root();
        loop {
            if self.children(node).is_empty() {
                break;
            }
            // Always step off the root (the root has no parent edge);
            // afterwards stop as soon as the subtree is small enough.
            if node != self.root() && in_subtree[node.index()] <= limit {
                break;
            }
            node = self
                .children(node)
                .iter()
                .copied()
                .max_by(|a, b| in_subtree[a.index()].cmp(&in_subtree[b.index()]))
                .expect("children non-empty");
        }
        // `node` is the first node on the heavy path whose subtree
        // already satisfies the bound; its parent edge is a separator
        // (the complement holds total - in_subtree ≤ 2/3·total because
        // the parent's subtree exceeded the limit and `node` is its
        // heaviest child, so `node` holds ≥ (limit)/2 ≥ total/3).
        let count = in_subtree[node.index()];
        (node, count)
    }

    /// All cells attached at `node` or anywhere below it, sorted.
    #[must_use]
    pub fn subtree_cells(&self, node: NodeId) -> Vec<CellId> {
        let mut cells = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if let Some(c) = self.cell(n) {
                cells.push(c);
            }
            stack.extend_from_slice(self.children(n));
        }
        cells.sort_unstable();
        cells
    }

    /// Applies a fault plan's buffer faults to the tree's repeaters
    /// (assumption A7: a buffer every `spacing` length units along
    /// every edge, the same convention as [`ClockTree::buffer_count`]).
    ///
    /// A **dead** buffer stops the clock cold: every cell attached in
    /// the subtree hanging off that buffer's edge loses its clock and
    /// is reported in [`BufferFaultReport::dead_cells`]. A **degraded**
    /// buffer still propagates but drives its wire run `extra_frac`
    /// slower, modelled as a stretch of that run (`extra_frac ·
    /// spacing` added to the edge); the returned tree carries the
    /// stretches so the existing skew machinery ([`crate::skew`])
    /// re-attributes the damage with no special cases.
    ///
    /// Buffer sites are identified by `(edge child node, slot index)`,
    /// so the same plan always fails the same buffers regardless of
    /// query order or thread count.
    ///
    /// # Panics
    ///
    /// Panics if `spacing` is not positive.
    #[must_use]
    pub fn with_buffer_faults(&self, plan: &FaultPlan, spacing: f64) -> BufferFaultReport {
        assert!(spacing > 0.0, "buffer spacing must be positive");
        let mut out = self.clone();
        let mut dead_cells = Vec::new();
        let (mut dead_buffers, mut degraded_buffers) = (0u64, 0u64);
        if plan.is_enabled() {
            let mut clock_dead = vec![false; self.node_count()];
            for n in self.nodes() {
                let buffers = (self.wire_length(n) / spacing).floor() as u64;
                let mut edge_dead = false;
                let mut stretch = 0.0;
                for k in 0..buffers {
                    let site = ((n.index() as u64) << 20) ^ k;
                    match plan.buffer_fault(site) {
                        Some(BufferFault::Dead) => {
                            dead_buffers += 1;
                            edge_dead = true;
                        }
                        Some(BufferFault::Degraded { extra_frac }) => {
                            degraded_buffers += 1;
                            stretch += extra_frac * spacing;
                        }
                        None => {}
                    }
                }
                if edge_dead {
                    clock_dead[n.index()] = true;
                } else if stretch > 0.0 {
                    out.wire_len[n.index()] += stretch;
                }
            }
            // A node loses its clock iff its own edge died or any
            // ancestor edge did. The builder guarantees parents precede
            // children in node order, so one forward pass propagates
            // death through the *actual* subtree structure — correct on
            // any shape (caterpillar rows, lopsided quadrants), and
            // linear even when dead regions nest or chains are deep.
            for i in 1..self.node_count() {
                let p = self.parent[i].expect("non-root nodes have parents");
                if clock_dead[p.index()] {
                    clock_dead[i] = true;
                }
            }
            for n in self.nodes() {
                if clock_dead[n.index()] {
                    if let Some(c) = self.cell(n) {
                        dead_cells.push(c);
                    }
                }
            }
            dead_cells.sort_unstable();
            out.recompute_caches();
        }
        BufferFaultReport {
            tree: out,
            dead_cells,
            dead_buffers,
            degraded_buffers,
        }
    }

    fn recompute_caches(&mut self) {
        for i in 0..self.positions.len() {
            match self.parent[i] {
                None => {
                    self.root_dist[i] = 0.0;
                    self.depth[i] = 0;
                }
                Some(p) => {
                    self.root_dist[i] = self.root_dist[p.index()] + self.wire_len[i];
                    self.depth[i] = self.depth[p.index()] + 1;
                }
            }
        }
    }

    /// Structural validation: binary arity, non-negative wire lengths,
    /// consistent cell attachment.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for n in self.nodes() {
            if self.children(n).len() > 2 {
                return Err(format!("node {n} has {} children (> 2)", self.children(n).len()));
            }
            if self.wire_length(n) < 0.0 {
                return Err(format!("node {n} has negative wire length"));
            }
        }
        for (cell_idx, node) in self.node_of_cell.iter().enumerate() {
            if let Some(n) = node {
                if self.cell_of[n.index()] != Some(CellId::new(cell_idx)) {
                    return Err(format!(
                        "cell {cell_idx} maps to node {n} which does not map back"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// What a fault plan did to a tree's clock buffers
/// ([`ClockTree::with_buffer_faults`]).
#[derive(Debug, Clone)]
pub struct BufferFaultReport {
    /// The tree with degraded buffers' wire stretches applied. Dead
    /// edges are left structurally intact — consult
    /// [`BufferFaultReport::dead_cells`] for who lost the clock.
    pub tree: ClockTree,
    /// Cells below a dead buffer, sorted and deduplicated: they never
    /// see a clock edge at all.
    pub dead_cells: Vec<CellId>,
    /// Number of buffers that failed dead.
    pub dead_buffers: u64,
    /// Number of buffers that still work but drive slowly.
    pub degraded_buffers: u64,
}

impl BufferFaultReport {
    /// Whether `cell` lost its clock to a dead buffer.
    #[must_use]
    pub fn is_dead(&self, cell: CellId) -> bool {
        self.dead_cells.binary_search(&cell).is_ok()
    }

    /// Whether any attached cell lost its clock.
    #[must_use]
    pub fn any_dead(&self) -> bool {
        !self.dead_cells.is_empty()
    }
}

/// Incremental builder for [`ClockTree`].
///
/// Nodes must be added parent-before-child (the builder hands out ids
/// in construction order), which every natural tree construction
/// satisfies.
#[derive(Debug, Clone)]
pub struct ClockTreeBuilder {
    positions: Vec<Point>,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    wire_len: Vec<f64>,
    cell_of: Vec<Option<CellId>>,
}

impl ClockTreeBuilder {
    /// Starts a tree whose root sits at `root_pos`.
    #[must_use]
    pub fn new(root_pos: Point) -> Self {
        ClockTreeBuilder {
            positions: vec![root_pos],
            parent: vec![None],
            children: vec![Vec::new()],
            wire_len: vec![0.0],
            cell_of: vec![None],
        }
    }

    /// The root node id.
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Adds a child of `parent` at `pos`. The wire length defaults to
    /// the rectilinear (Manhattan) distance between the endpoints;
    /// pass `Some(len)` to model a routed detour or tuned delay line
    /// (must be at least the rectilinear distance).
    ///
    /// # Panics
    ///
    /// Panics if `parent` already has two children, if `parent` is out
    /// of range, or if an explicit length is shorter than the
    /// rectilinear distance.
    pub fn add_child(&mut self, parent: NodeId, pos: Point, length: Option<f64>) -> NodeId {
        assert!(parent.index() < self.positions.len(), "parent out of range");
        assert!(
            self.children[parent.index()].len() < 2,
            "node {parent} already has two children (CLK is binary)"
        );
        let direct = self.positions[parent.index()].manhattan(pos);
        let len = match length {
            Some(l) => {
                assert!(
                    l + 1e-9 >= direct,
                    "explicit wire length {l} shorter than rectilinear distance {direct}"
                );
                l
            }
            None => direct,
        };
        let id = NodeId(self.positions.len());
        self.positions.push(pos);
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.wire_len.push(len);
        self.cell_of.push(None);
        self.children[parent.index()].push(id);
        id
    }

    /// Declares that `node` clocks `cell` (the cell is a node of CLK,
    /// assumption A4).
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range or already clocks a cell.
    pub fn attach_cell(&mut self, node: NodeId, cell: CellId) -> &mut Self {
        assert!(node.index() < self.positions.len(), "node out of range");
        assert!(
            self.cell_of[node.index()].is_none(),
            "node {node} already clocks a cell"
        );
        self.cell_of[node.index()] = Some(cell);
        self
    }

    /// Finishes the tree, computing distance caches.
    ///
    /// # Panics
    ///
    /// Panics if two nodes claim the same cell.
    #[must_use]
    pub fn build(self) -> ClockTree {
        let max_cell = self
            .cell_of
            .iter()
            .flatten()
            .map(|c| c.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut node_of_cell = vec![None; max_cell];
        for (i, c) in self.cell_of.iter().enumerate() {
            if let Some(cell) = c {
                assert!(
                    node_of_cell[cell.index()].is_none(),
                    "cell {cell} attached to two clock nodes"
                );
                node_of_cell[cell.index()] = Some(NodeId(i));
            }
        }
        let n = self.positions.len();
        let mut tree = ClockTree {
            positions: self.positions,
            parent: self.parent,
            children: self.children,
            wire_len: self.wire_len,
            cell_of: self.cell_of,
            node_of_cell,
            root_dist: vec![0.0; n],
            depth: vec![0; n],
        };
        tree.recompute_caches();
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array_layout::geom::approx_eq;

    /// A small fixture: root with two subtrees of different depths.
    ///
    /// ```text
    ///        root(0,0)
    ///        /        \
    ///   a(-2,0)      b(2,0)
    ///    /               \
    /// a1(-2,-2)        b1(4,0)
    /// ```
    fn fixture() -> ClockTree {
        let mut b = ClockTreeBuilder::new(Point::new(0.0, 0.0));
        let a = b.add_child(b.root(), Point::new(-2.0, 0.0), None);
        let bb = b.add_child(b.root(), Point::new(2.0, 0.0), None);
        let a1 = b.add_child(a, Point::new(-2.0, -2.0), None);
        let b1 = b.add_child(bb, Point::new(4.0, 0.0), None);
        b.attach_cell(a1, CellId::new(0));
        b.attach_cell(b1, CellId::new(1));
        b.attach_cell(a, CellId::new(2));
        b.build()
    }

    #[test]
    fn root_distances_accumulate() {
        let t = fixture();
        let n0 = t.node_of_cell(CellId::new(0)).unwrap();
        let n1 = t.node_of_cell(CellId::new(1)).unwrap();
        assert!(approx_eq(t.root_distance(n0), 4.0));
        assert!(approx_eq(t.root_distance(n1), 4.0));
        assert!(approx_eq(t.max_root_distance(), 4.0));
        assert_eq!(t.depth(n0), 2);
    }

    #[test]
    fn metrics_via_lca() {
        let t = fixture();
        let (c0, c1, c2) = (CellId::new(0), CellId::new(1), CellId::new(2));
        // c0 and c1 meet at the root: s = 4 + 4, d = 0.
        assert!(approx_eq(t.summation_distance(c0, c1), 8.0));
        assert!(approx_eq(t.difference_distance(c0, c1), 0.0));
        // c0 and c2: c2 is c0's ancestor's node: s = 2, d = 2.
        assert!(approx_eq(t.summation_distance(c0, c2), 2.0));
        assert!(approx_eq(t.difference_distance(c0, c2), 2.0));
    }

    #[test]
    fn lca_of_node_with_itself() {
        let t = fixture();
        let n = t.node_of_cell(CellId::new(0)).unwrap();
        assert_eq!(t.lca(n, n), n);
        assert!(approx_eq(t.summation_distance(CellId::new(0), CellId::new(0)), 0.0));
    }

    #[test]
    fn builder_rejects_third_child() {
        let mut b = ClockTreeBuilder::new(Point::origin());
        b.add_child(b.root(), Point::new(1.0, 0.0), None);
        b.add_child(b.root(), Point::new(0.0, 1.0), None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut b2 = b.clone();
            b2.add_child(b2.root(), Point::new(-1.0, 0.0), None);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn builder_rejects_short_explicit_length() {
        let mut b = ClockTreeBuilder::new(Point::origin());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut b2 = b.clone();
            b2.add_child(b2.root(), Point::new(3.0, 0.0), Some(1.0));
        }));
        assert!(result.is_err());
        // A stretched length is fine.
        let c = b.add_child(b.root(), Point::new(3.0, 0.0), Some(5.0));
        let t = b.build();
        assert!(approx_eq(t.wire_length(c), 5.0));
    }

    #[test]
    fn equalized_zeroes_difference_metric() {
        let mut b = ClockTreeBuilder::new(Point::origin());
        let near = b.add_child(b.root(), Point::new(1.0, 0.0), None);
        let far_mid = b.add_child(b.root(), Point::new(5.0, 0.0), None);
        let far = b.add_child(far_mid, Point::new(9.0, 0.0), None);
        b.attach_cell(near, CellId::new(0));
        b.attach_cell(far, CellId::new(1));
        let t = b.build();
        assert!(t.difference_distance(CellId::new(0), CellId::new(1)) > 0.0);
        let eq = t.equalized();
        assert!(approx_eq(
            eq.difference_distance(CellId::new(0), CellId::new(1)),
            0.0
        ));
        // Summation distance can only grow under equalization.
        assert!(
            eq.summation_distance(CellId::new(0), CellId::new(1))
                >= t.summation_distance(CellId::new(0), CellId::new(1))
        );
        assert!(eq.validate().is_ok());
    }

    #[test]
    fn buffer_counts_scale_with_spacing() {
        let t = fixture();
        // Total wire = 2 + 2 + 2 + 2 = 8.
        assert!(approx_eq(t.total_wire_length(), 8.0));
        assert_eq!(t.buffer_count(1.0), 8);
        assert_eq!(t.buffer_count(3.0), 0);
        assert!(t.max_unbuffered_run(1.0) <= 1.0 + 1e-9);
        assert!(approx_eq(t.max_unbuffered_run(10.0), 2.0));
    }

    #[test]
    fn separator_respects_two_thirds_bound() {
        // A path of 9 nodes, all marked: Lemma 5 must find an edge
        // splitting them no worse than 6 : 3.
        let mut b = ClockTreeBuilder::new(Point::origin());
        let mut prev = b.root();
        for i in 1..9 {
            prev = b.add_child(prev, Point::new(i as f64, 0.0), None);
        }
        let t = b.build();
        let marked: Vec<NodeId> = t.nodes().collect();
        let (child, inside) = t.separator_edge(&marked);
        assert!(child != t.root());
        let outside = marked.len() - inside;
        let limit = (2 * marked.len()).div_ceil(3);
        assert!(inside <= limit, "inside {inside} > limit {limit}");
        assert!(outside <= limit, "outside {outside} > limit {limit}");
    }

    #[test]
    fn separator_on_balanced_tree() {
        // Complete binary tree of depth 4 (31 nodes); mark the leaves.
        let mut b = ClockTreeBuilder::new(Point::origin());
        let mut frontier = vec![b.root()];
        for level in 1..5 {
            let mut next = Vec::new();
            for (i, &p) in frontier.iter().enumerate() {
                let x = (i * 2) as f64;
                next.push(b.add_child(p, Point::new(x, level as f64), None));
                next.push(b.add_child(p, Point::new(x + 1.0, level as f64), None));
            }
            frontier = next;
        }
        let t = b.build();
        let (child, inside) = t.separator_edge(&frontier);
        let total = frontier.len();
        let limit = (2 * total).div_ceil(3);
        assert!(inside <= limit);
        assert!(total - inside <= limit);
        assert!(t.depth(child) >= 1);
    }

    #[test]
    fn validate_passes_on_fixture() {
        assert!(fixture().validate().is_ok());
    }

    #[test]
    fn attached_cells_sorted() {
        let t = fixture();
        assert_eq!(
            t.attached_cells(),
            vec![CellId::new(0), CellId::new(1), CellId::new(2)]
        );
    }

    #[test]
    fn subtree_cells_collects_the_hanging_cells() {
        let t = fixture();
        // Node `a` clocks cell 2 and its child `a1` clocks cell 0.
        let a = t.node_of_cell(CellId::new(2)).unwrap();
        assert_eq!(t.subtree_cells(a), vec![CellId::new(0), CellId::new(2)]);
        assert_eq!(t.subtree_cells(t.root()), t.attached_cells());
    }

    #[test]
    fn disabled_plan_leaves_buffers_untouched() {
        use sim_faults::FaultPlan;
        let t = fixture();
        let r = t.with_buffer_faults(&FaultPlan::disabled(), 1.0);
        assert!(!r.any_dead());
        assert_eq!((r.dead_buffers, r.degraded_buffers), (0, 0));
        for n in t.nodes() {
            assert!(approx_eq(r.tree.wire_length(n), t.wire_length(n)));
        }
    }

    #[test]
    fn buffer_faults_are_deterministic() {
        use sim_faults::{FaultPlan, FaultRates};
        let t = fixture();
        let plan = FaultPlan::new(11, 3, FaultRates::uniform(0.3));
        let (a, b) = (t.with_buffer_faults(&plan, 0.5), t.with_buffer_faults(&plan, 0.5));
        assert_eq!(a.dead_cells, b.dead_cells);
        assert_eq!(a.dead_buffers, b.dead_buffers);
        assert_eq!(a.degraded_buffers, b.degraded_buffers);
        for n in t.nodes() {
            assert!(approx_eq(a.tree.wire_length(n), b.tree.wire_length(n)));
        }
    }

    #[test]
    fn dead_buffers_kill_their_subtrees() {
        use sim_faults::{FaultPlan, FaultRates};
        let t = fixture();
        let rates = FaultRates {
            buffer_dead: 1.0,
            ..FaultRates::none()
        };
        let r = t.with_buffer_faults(&FaultPlan::new(5, 0, rates), 1.0);
        // Every edge carries buffers (all lengths are 2, spacing 1),
        // so every attached cell sits below a dead buffer.
        assert_eq!(r.dead_cells, t.attached_cells());
        assert!(r.is_dead(CellId::new(1)));
        assert_eq!(r.dead_buffers, t.buffer_count(1.0) as u64);
    }

    #[test]
    fn dead_subtree_accounting_follows_structure_on_non_uniform_fanout() {
        use sim_faults::{FaultPlan, FaultRates};
        // A quadrant-shaped caterpillar: a long spine whose taps hang
        // row chains of very different lengths, plus a shallow sibling
        // branch. Depth is useless as a leaf-count proxy here — the
        // accounting must walk the actual subtree.
        let mut b = ClockTreeBuilder::new(Point::origin());
        let shallow = b.add_child(b.root(), Point::new(0.0, 4.0), None);
        b.attach_cell(shallow, CellId::new(0));
        let mut spine = b.add_child(b.root(), Point::new(4.0, 0.0), None);
        let mut next_cell = 1usize;
        for tap in 0..3 {
            let tap_node = b.add_child(spine, Point::new(4.0 + 3.0 * (tap + 1) as f64, 0.0), None);
            b.attach_cell(tap_node, CellId::new(next_cell));
            next_cell += 1;
            // Row chains of length 1, 3, 5 hanging off successive taps.
            let mut link = tap_node;
            for i in 0..(2 * tap + 1) {
                link = b.add_child(
                    link,
                    Point::new(4.0 + 3.0 * (tap + 1) as f64, 2.0 * (i + 1) as f64),
                    None,
                );
                b.attach_cell(link, CellId::new(next_cell));
                next_cell += 1;
            }
            spine = tap_node;
        }
        let t = b.build();

        for seed in [3u64, 5, 11, 17] {
            let rates = FaultRates {
                buffer_dead: 0.2,
                ..FaultRates::none()
            };
            let r = t.with_buffer_faults(&FaultPlan::new(seed, 0, rates), 1.0);
            // Brute-force ground truth: a cell is dead iff some edge on
            // its root path lost a buffer — recompute via subtree_cells
            // from every edge whose own buffers died.
            let mut expect = Vec::new();
            for n in t.nodes() {
                let buffers = (t.wire_length(n) / 1.0).floor() as u64;
                let own_dead = (0..buffers).any(|k| {
                    matches!(
                        FaultPlan::new(seed, 0, rates).buffer_fault(((n.index() as u64) << 20) ^ k),
                        Some(sim_faults::BufferFault::Dead)
                    )
                });
                if own_dead {
                    expect.extend(t.subtree_cells(n));
                }
            }
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(
                r.dead_cells, expect,
                "seed {seed}: dead set must equal subtree reachability"
            );
        }
    }

    #[test]
    fn degraded_buffers_stretch_edges_and_reattribute_skew() {
        use crate::skew::{attribute_skew, ArrivalTimes};
        use sim_faults::{FaultPlan, FaultRates};
        let t = fixture();
        let rates = FaultRates {
            buffer_degraded: 1.0,
            degrade_spread: 0.5,
            ..FaultRates::none()
        };
        let r = t.with_buffer_faults(&FaultPlan::new(5, 0, rates), 1.0);
        assert!(!r.any_dead());
        assert_eq!(r.degraded_buffers, t.buffer_count(1.0) as u64);
        assert!(r.tree.max_root_distance() > t.max_root_distance());
        // The stock skew machinery re-attributes the damage: under
        // uniform unit rates the pair skew equals the (now nonzero)
        // difference metric of the faulted tree.
        let unit = vec![1.0; r.tree.node_count()];
        let arrivals = ArrivalTimes::from_rates(&r.tree, &unit);
        let (c0, c1) = (CellId::new(0), CellId::new(1));
        let skew = arrivals.skew(&r.tree, c0, c1);
        assert!(approx_eq(skew, r.tree.difference_distance(c0, c1)));
        let breakdown = attribute_skew(&r.tree, &unit, c0, c1);
        assert!(approx_eq(breakdown.magnitude(), skew));
    }
}
