//! Clock distribution for VLSI processor arrays: trees, skew models,
//! and clock-period analysis.
//!
//! This crate implements assumptions A4–A11 of Fisher & Kung,
//! *Synchronizing Large VLSI Processor Arrays* (1983):
//!
//! * [`tree`] — rooted binary clock trees laid out in the plane, with
//!   the difference (`d`) and summation (`s`) path metrics, buffer
//!   accounting, Lemma 1's delay equalization, and Lemma 5's
//!   separator edge;
//! * [`builders`] — the clock-tree constructions the paper draws:
//!   H-trees (Fig. 3), the one-dimensional spine (Fig. 4), serpentine
//!   and comb contrast strategies, and clock-along-data-paths for tree
//!   machines (Section VIII);
//! * [`delay`] — the `m ± ε` per-unit wire-delay model of
//!   Section III;
//! * [`skew`] — the difference model (A9) and summation model
//!   (A10/A11), analytic worst-case skew `m·d + ε·s`, and Monte-Carlo
//!   measurement;
//! * [`period`] — the clock period `σ + δ + τ` (A5) under
//!   equipotential (A6) and pipelined (A7) distribution;
//! * [`trix`] — the modern escape hatch: TRIX-style self-stabilizing
//!   pulse propagation through a redundant grid (median voting over
//!   width-3 predecessor links), plus the rigid no-adaptation contrast
//!   model the recovery harness compares it against.
//!
//! # Quick start: Theorem 3 in five lines
//!
//! ```
//! use array_layout::prelude::*;
//! use clock_tree::prelude::*;
//!
//! let comm = CommGraph::linear(100);
//! let layout = Layout::linear_row(&comm);
//! let clk = spine(&comm, &layout);
//! let model = SummationModel::from_delay_model(WireDelayModel::new(1.0, 0.1));
//! // Max skew between communicating cells is a constant (1.1 · 1),
//! // independent of the array's 100-cell length.
//! assert!(model.max_skew(&clk, &comm) <= 1.1 + 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builders;
pub mod delay;
pub mod elmore;
pub mod jitter;
pub mod period;
pub mod skew;
pub mod tree;
pub mod trix;

/// Convenient re-exports of the crate's primary items.
pub mod prelude {
    pub use crate::builders::{
        comb_tree, htree, mirror_tree, serpentine, spine, spine_ring, spine_through,
    };
    pub use crate::delay::WireDelayModel;
    pub use crate::elmore::{buffered_line_delay, unbuffered_line_delay, ElmoreDelays, RcParams};
    pub use crate::jitter::{max_reliable_depth, propagate_event_train, SpacingStats};
    pub use crate::period::{clock_period, clock_period_exact_form, Distribution};
    pub use crate::skew::{
        achievable_skew_lower_bound, attribute_skew, max_worst_case_skew, monte_carlo_skew,
        monte_carlo_skew_par, worst_case_skew,
        ArrivalTimes, DifferenceModel, EdgeContribution, SkewBreakdown, SkewSample,
        SummationModel,
    };
    pub use crate::tree::{BufferFaultReport, ClockTree, ClockTreeBuilder, NodeId};
    pub use crate::trix::{RigidGrid, TrixGrid, TrixParams};
}
