//! Clock period and distribution time (assumptions A5–A7).
//!
//! A clocked system may be driven with period `σ + δ + τ` (A5), where
//! `σ` is the maximum skew between communicating cells, `δ` the
//! compute-plus-propagate time of a cell, and `τ` the time to
//! distribute one clocking event on CLK. Two distribution regimes:
//!
//! * **Equipotential** (A6): the whole tree settles before the next
//!   event, so `τ ≥ α · P` with `P` the longest root-to-leaf path —
//!   the period grows with the layout diameter.
//! * **Pipelined** (A7): the tree is buffered every constant distance
//!   and several events travel simultaneously; `τ` is the constant
//!   delay of one buffer stage plus its output wire — independent of
//!   array size (given invariance A8).

use crate::tree::ClockTree;

/// How clock events are distributed down the tree.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Distribution {
    /// Equipotential clocking (A6): the tree is brought to an
    /// equipotential state between events.
    Equipotential {
        /// Proportionality constant relating path length to settle
        /// time (`τ = α · P`).
        alpha: f64,
    },
    /// Pipelined clocking (A7): buffers every `spacing` length units;
    /// each stage costs `buffer_delay` plus the wire transit of one
    /// segment.
    Pipelined {
        /// Propagation delay of one buffer.
        buffer_delay: f64,
        /// Distance between buffers along the tree wires.
        spacing: f64,
        /// Per-unit-length wire delay between buffers.
        unit_wire_delay: f64,
    },
}

impl Distribution {
    /// The event-distribution time `τ` on `tree` under this regime.
    ///
    /// For the equipotential regime this is `α · P` (A6); for the
    /// pipelined regime it is the delay through one buffer and its
    /// longest unbuffered wire run (A7) — a constant once the tree's
    /// edge lengths are bounded by the buffer spacing.
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-positive.
    #[must_use]
    pub fn tau(&self, tree: &ClockTree) -> f64 {
        match *self {
            Distribution::Equipotential { alpha } => {
                assert!(alpha > 0.0, "alpha must be positive");
                alpha * tree.max_root_distance()
            }
            Distribution::Pipelined {
                buffer_delay,
                spacing,
                unit_wire_delay,
            } => {
                assert!(buffer_delay > 0.0, "buffer delay must be positive");
                assert!(spacing > 0.0, "buffer spacing must be positive");
                assert!(unit_wire_delay > 0.0, "wire delay must be positive");
                buffer_delay + tree.max_unbuffered_run(spacing) * unit_wire_delay
            }
        }
    }
}

/// The clock period of assumption A5: `σ + δ + τ`.
///
/// The paper notes an exact formula for a given scheme might look like
/// `max(τ, 2σ + δ)`, but exhibits the same asymptotic growth; we use
/// the simple sum as the paper does.
///
/// # Panics
///
/// Panics if any component is negative.
#[must_use]
pub fn clock_period(sigma: f64, delta: f64, tau: f64) -> f64 {
    assert!(
        sigma >= 0.0 && delta >= 0.0 && tau >= 0.0,
        "period components must be non-negative (got σ={sigma}, δ={delta}, τ={tau})"
    );
    sigma + delta + tau
}

/// The paper's example of an *exact* period formula for a particular
/// clocking method: `max(τ, 2σ + δ)`. A5 deliberately uses the simple
/// sum instead because both "exhibit the same type of growth with
/// respect to system size"; this function exists so experiments can
/// verify that equivalence.
///
/// # Panics
///
/// Panics if any component is negative.
#[must_use]
pub fn clock_period_exact_form(sigma: f64, delta: f64, tau: f64) -> f64 {
    assert!(
        sigma >= 0.0 && delta >= 0.0 && tau >= 0.0,
        "period components must be non-negative (got σ={sigma}, δ={delta}, τ={tau})"
    );
    tau.max(2.0 * sigma + delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{htree, spine};
    use array_layout::geom::approx_eq;
    use array_layout::graph::CommGraph;
    use array_layout::layout::Layout;

    #[test]
    fn equipotential_tau_grows_with_array() {
        let alpha = 0.5;
        let mut prev = 0.0;
        for n in [4usize, 16, 64] {
            let comm = CommGraph::mesh(n, n);
            let layout = Layout::grid(&comm);
            let tree = htree(&comm, &layout);
            let tau = Distribution::Equipotential { alpha }.tau(&tree);
            assert!(tau > prev, "n={n}: tau={tau}");
            prev = tau;
        }
    }

    #[test]
    fn pipelined_tau_constant_in_array_size() {
        let dist = Distribution::Pipelined {
            buffer_delay: 1.0,
            spacing: 2.0,
            unit_wire_delay: 1.0,
        };
        let mut taus = Vec::new();
        for n in [8usize, 64, 512] {
            let comm = CommGraph::linear(n);
            let layout = Layout::linear_row(&comm);
            let tree = spine(&comm, &layout);
            taus.push(dist.tau(&tree));
        }
        assert!(approx_eq(taus[0], taus[1]));
        assert!(approx_eq(taus[1], taus[2]));
        // One buffer (1.0) plus a ≤2-unit segment at unit wire delay.
        assert!(taus[0] <= 3.0 + 1e-9);
    }

    #[test]
    fn pipelined_tau_bounded_by_spacing() {
        let comm = CommGraph::mesh(16, 16);
        let layout = Layout::grid(&comm);
        let tree = htree(&comm, &layout);
        let tau = Distribution::Pipelined {
            buffer_delay: 0.5,
            spacing: 1.0,
            unit_wire_delay: 1.0,
        }
        .tau(&tree);
        assert!(tau <= 0.5 + 1.0 + 1e-9, "tau = {tau}");
    }

    #[test]
    fn period_is_simple_sum() {
        assert!(approx_eq(clock_period(1.0, 2.0, 3.0), 6.0));
        assert!(approx_eq(clock_period(0.0, 0.0, 0.0), 0.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn period_rejects_negative() {
        let _ = clock_period(-1.0, 0.0, 0.0);
    }

    #[test]
    fn exact_form_same_growth_as_simple_sum() {
        // The paper's justification for using σ + δ + τ: both
        // formulas grow the same way. Check on growing meshes where σ
        // grows (summation H-tree) and τ is constant (pipelined).
        use crate::skew::SummationModel;
        let model = SummationModel::from_delay_model(
            crate::delay::WireDelayModel::new(1.0, 0.1),
        );
        let dist = Distribution::Pipelined {
            buffer_delay: 1.0,
            spacing: 2.0,
            unit_wire_delay: 1.0,
        };
        let mut simple = Vec::new();
        let mut exact = Vec::new();
        for n in [8usize, 16, 32] {
            let comm = CommGraph::mesh(n, n);
            let layout = Layout::grid(&comm);
            let tree = htree(&comm, &layout);
            let sigma = model.max_skew(&tree, &comm);
            let tau = dist.tau(&tree);
            simple.push(clock_period(sigma, 2.0, tau));
            exact.push(clock_period_exact_form(sigma, 2.0, tau));
        }
        // Both roughly double when n doubles.
        for series in [&simple, &exact] {
            let r = series[2] / series[1];
            assert!((1.6..2.4).contains(&r), "growth ratio {r}");
        }
    }

    #[test]
    fn exact_form_picks_max() {
        assert!(approx_eq(clock_period_exact_form(1.0, 2.0, 10.0), 10.0));
        assert!(approx_eq(clock_period_exact_form(4.0, 2.0, 3.0), 10.0));
    }
}
