//! Elmore (RC) delay of clock trees: the physics behind A6.
//!
//! The paper's introduction notes that "the usual clocking schemes are
//! also limited in performance by the time needed to drive clock
//! lines, which will grow as circuit feature size shrinks relative to
//! total circuit size", and Section I's practical aside mentions "the
//! tricks that a circuit designer can use to reduce the RC constant of
//! his clock tree". This module supplies the standard first-order
//! model: **Elmore delay** on a distributed RC tree —
//!
//! ```text
//! t(leaf) = Σ (over wire segments s on the root→leaf path)
//!              R(s) · C_downstream(s)
//! ```
//!
//! For an *unbuffered* line of length `L`, Elmore delay grows like
//! `L²/2` (both R and C grow with length) — strictly worse than A6's
//! linear speed-of-light bound, which is why long equipotential lines
//! die first by RC. Inserting buffers every constant distance
//! restores linear growth in `L` (each segment a constant RC), which
//! is exactly the repeater trick the paper's buffered trees (A7)
//! build on — there used to *pipeline*, here merely to drive.

use crate::tree::{ClockTree, NodeId};

/// Per-unit-length electrical parameters of the clock wiring, plus
/// the load presented by each tree node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcParams {
    /// Wire resistance per unit length.
    pub r_per_unit: f64,
    /// Wire capacitance per unit length.
    pub c_per_unit: f64,
    /// Lumped load capacitance at every tree node (gate input or
    /// buffer).
    pub node_load: f64,
}

impl RcParams {
    /// Creates RC parameters.
    ///
    /// # Panics
    ///
    /// Panics unless all values are positive.
    #[must_use]
    pub fn new(r_per_unit: f64, c_per_unit: f64, node_load: f64) -> Self {
        assert!(
            r_per_unit > 0.0 && c_per_unit > 0.0 && node_load > 0.0,
            "RC parameters must be positive"
        );
        RcParams {
            r_per_unit,
            c_per_unit,
            node_load,
        }
    }
}

/// Elmore delays from the root to every node of an unbuffered RC
/// tree.
///
/// Each edge is treated as a distributed RC line (its own capacitance
/// counts at half resistance, per the standard Π-model), and every
/// node adds `node_load` of lumped capacitance.
#[derive(Debug, Clone)]
pub struct ElmoreDelays {
    delay: Vec<f64>,
}

impl ElmoreDelays {
    /// Computes Elmore delays for `tree` under `params`.
    #[must_use]
    pub fn compute(tree: &ClockTree, params: RcParams) -> Self {
        let n = tree.node_count();
        // Downstream capacitance per node: subtree wire capacitance
        // plus subtree node loads. Children have larger ids than
        // parents (builder order), so a reverse scan accumulates.
        let mut downstream = vec![params.node_load; n];
        for i in (1..n).rev() {
            let wire_c = tree.wire_length(NodeId::new(i)) * params.c_per_unit;
            let parent = tree
                .parent(NodeId::new(i))
                .expect("non-root has a parent")
                .index();
            downstream[parent] += downstream[i] + wire_c;
        }
        // Elmore: walking down, each edge contributes
        // R_edge · (C_subtree(child) + C_edge/2).
        let mut delay = vec![0.0f64; n];
        for i in 1..n {
            let node = NodeId::new(i);
            let parent = tree.parent(node).expect("non-root").index();
            let len = tree.wire_length(node);
            let r = len * params.r_per_unit;
            let c_edge = len * params.c_per_unit;
            delay[i] = delay[parent] + r * (downstream[i] + c_edge / 2.0);
        }
        ElmoreDelays { delay }
    }

    /// Elmore delay from the root to `node`.
    #[must_use]
    pub fn at(&self, node: NodeId) -> f64 {
        self.delay[node.index()]
    }

    /// The slowest node: the tree's settle time — the τ that an
    /// equipotential scheme must wait out (A6's physical origin).
    #[must_use]
    pub fn max_delay(&self) -> f64 {
        self.delay.iter().copied().fold(0.0, f64::max)
    }
}

/// Elmore settle time of a *buffered* line of length `len` with ideal
/// buffers (each restoring the signal) every `spacing` units and a
/// fixed `buffer_delay` each: the repeater trick that converts the
/// quadratic unbuffered growth back to linear.
///
/// # Panics
///
/// Panics unless lengths and delays are positive.
#[must_use]
pub fn buffered_line_delay(
    len: f64,
    spacing: f64,
    buffer_delay: f64,
    params: RcParams,
) -> f64 {
    assert!(len > 0.0 && spacing > 0.0, "lengths must be positive");
    assert!(buffer_delay > 0.0, "buffer delay must be positive");
    let segments = (len / spacing).ceil().max(1.0);
    let seg_len = len / segments;
    let seg_rc = (seg_len * params.r_per_unit)
        * (seg_len * params.c_per_unit / 2.0 + params.node_load);
    segments * (seg_rc + buffer_delay)
}

/// Elmore settle time of the same line with no buffers: quadratic in
/// length.
///
/// # Panics
///
/// Panics unless `len > 0`.
#[must_use]
pub fn unbuffered_line_delay(len: f64, params: RcParams) -> f64 {
    assert!(len > 0.0, "length must be positive");
    (len * params.r_per_unit) * (len * params.c_per_unit / 2.0 + params.node_load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{htree, spine};
    use array_layout::graph::CommGraph;
    use array_layout::layout::Layout;

    fn params() -> RcParams {
        RcParams::new(1.0, 1.0, 0.5)
    }

    #[test]
    fn unbuffered_line_grows_quadratically() {
        let d10 = unbuffered_line_delay(10.0, params());
        let d100 = unbuffered_line_delay(100.0, params());
        let ratio = d100 / d10;
        assert!(
            (80.0..120.0).contains(&ratio),
            "expected ~100x for 10x length, got {ratio}"
        );
    }

    #[test]
    fn buffered_line_grows_linearly() {
        let d10 = buffered_line_delay(10.0, 2.0, 1.0, params());
        let d100 = buffered_line_delay(100.0, 2.0, 1.0, params());
        let ratio = d100 / d10;
        assert!((8.0..12.0).contains(&ratio), "expected ~10x, got {ratio}");
        // And buffering beats the bare wire for long lines.
        assert!(d100 < unbuffered_line_delay(100.0, params()));
    }

    #[test]
    fn elmore_monotone_down_the_tree() {
        let comm = CommGraph::mesh(8, 8);
        let layout = Layout::grid(&comm);
        let tree = htree(&comm, &layout);
        let delays = ElmoreDelays::compute(&tree, params());
        for node in tree.nodes() {
            if let Some(p) = tree.parent(node) {
                assert!(
                    delays.at(node) >= delays.at(p),
                    "Elmore delay must not decrease toward the leaves"
                );
            }
        }
        assert!(delays.max_delay() > 0.0);
    }

    #[test]
    fn elmore_settle_grows_superlinearly_with_array() {
        // The equipotential pain: the H-tree's RC settle time grows
        // faster than its physical depth.
        let settle = |n: usize| {
            let comm = CommGraph::mesh(n, n);
            let layout = Layout::grid(&comm);
            let tree = htree(&comm, &layout);
            ElmoreDelays::compute(&tree, params()).max_delay()
        };
        let (s8, s16, s32) = (settle(8), settle(16), settle(32));
        // Physical depth only doubles per step; RC settle must grow
        // faster than 2x per doubling.
        assert!(s16 / s8 > 2.5, "{}", s16 / s8);
        assert!(s32 / s16 > 2.5, "{}", s32 / s16);
    }

    #[test]
    fn spine_elmore_matches_line_formula() {
        // A spine with negligible node loads approximates the bare
        // line: delay to the far end ~ R·C·L²/2.
        let comm = CommGraph::linear(64);
        let layout = Layout::linear_row(&comm);
        let tree = spine(&comm, &layout);
        let p = RcParams::new(1.0, 1.0, 1e-9);
        let delays = ElmoreDelays::compute(&tree, p);
        let far = tree
            .node_of_cell(array_layout::graph::CellId::new(63))
            .expect("attached");
        let analytic = 63.0f64 * 63.0 / 2.0;
        let measured = delays.at(far);
        assert!(
            (measured / analytic - 1.0).abs() < 0.05,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_params() {
        let _ = RcParams::new(0.0, 1.0, 1.0);
    }
}
