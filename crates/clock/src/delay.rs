//! Wire delay models (Section III's derivation).
//!
//! The paper derives both skew models from one physical picture: a
//! clock edge crosses a unit length of wire in time between `m − ε`
//! and `m + ε`, where `ε` captures variations in electrical
//! characteristics along clock lines. Two cells at distances `h₁ ≥ h₂`
//! from their nearest common ancestor can then see skew up to
//!
//! ```text
//! σ = h₁(m + ε) − h₂(m − ε) = m·d + ε·s
//! ```
//!
//! with `d = h₁ − h₂` (difference metric) and `s = h₁ + h₂`
//! (summation metric), giving `ε·s ≤ σ ≤ (m + ε)·s`.
//!
//! [`WireDelayModel`] holds `(m, ε)` and can either produce the
//! analytic worst case or sample concrete per-edge delay rates for
//! Monte-Carlo experiments (E1).

use crate::tree::ClockTree;
use sim_runtime::Rng;

/// Per-unit-length wire delay with bounded variation.
///
/// # Examples
///
/// ```
/// use clock_tree::delay::WireDelayModel;
///
/// let model = WireDelayModel::new(1.0, 0.1);
/// assert_eq!(model.min_rate(), 0.9);
/// assert_eq!(model.max_rate(), 1.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireDelayModel {
    m: f64,
    epsilon: f64,
}

impl WireDelayModel {
    /// Creates a delay model with nominal per-unit delay `m` and
    /// variation `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics unless `m > 0` and `0 ≤ epsilon < m` (a wire cannot have
    /// zero or negative transit time).
    #[must_use]
    pub fn new(m: f64, epsilon: f64) -> Self {
        assert!(m > 0.0, "nominal unit delay must be positive");
        assert!(
            (0.0..m).contains(&epsilon),
            "variation must satisfy 0 <= epsilon < m (got {epsilon} vs m = {m})"
        );
        WireDelayModel { m, epsilon }
    }

    /// A variation-free model (`ε = 0`): the idealised tuned system of
    /// the difference model.
    #[must_use]
    pub fn exact(m: f64) -> Self {
        WireDelayModel::new(m, 0.0)
    }

    /// Nominal per-unit-length delay `m`.
    #[must_use]
    pub fn nominal(&self) -> f64 {
        self.m
    }

    /// Variation amplitude `ε`.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Fastest possible per-unit delay, `m − ε`.
    #[must_use]
    pub fn min_rate(&self) -> f64 {
        self.m - self.epsilon
    }

    /// Slowest possible per-unit delay, `m + ε`.
    #[must_use]
    pub fn max_rate(&self) -> f64 {
        self.m + self.epsilon
    }

    /// Samples one concrete "fabrication": a per-edge delay rate drawn
    /// uniformly from `[m − ε, m + ε]`, independently for every tree
    /// edge. Returns one rate per tree node (the rate of the wire to
    /// its parent; the root's entry is unused and set to `m`).
    #[must_use]
    pub fn sample_rates<R: Rng>(&self, tree: &ClockTree, rng: &mut R) -> Vec<f64> {
        tree.nodes()
            .map(|n| {
                if tree.parent(n).is_none() || self.epsilon == 0.0 {
                    self.m
                } else {
                    rng.gen_range(self.min_rate()..=self.max_rate())
                }
            })
            .collect()
    }
}

impl Default for WireDelayModel {
    /// Unit nominal delay with 10 % variation — the default used by
    /// the experiments.
    fn default() -> Self {
        WireDelayModel::new(1.0, 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ClockTreeBuilder;
    use array_layout::geom::Point;
    use sim_runtime::SimRng;

    fn small_tree() -> ClockTree {
        let mut b = ClockTreeBuilder::new(Point::origin());
        let c1 = b.add_child(b.root(), Point::new(3.0, 0.0), None);
        b.add_child(c1, Point::new(3.0, 4.0), None);
        b.build()
    }

    #[test]
    fn rates_within_band() {
        let tree = small_tree();
        let model = WireDelayModel::new(2.0, 0.5);
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            let rates = model.sample_rates(&tree, &mut rng);
            assert_eq!(rates.len(), tree.node_count());
            for &r in &rates[1..] {
                assert!((1.5..=2.5).contains(&r), "rate {r} out of band");
            }
        }
    }

    #[test]
    fn exact_model_has_no_spread() {
        let tree = small_tree();
        let model = WireDelayModel::exact(1.0);
        let mut rng = SimRng::seed_from_u64(1);
        let rates = model.sample_rates(&tree, &mut rng);
        assert!(rates.iter().all(|&r| r == 1.0));
    }

    #[test]
    fn accessors() {
        let m = WireDelayModel::new(1.0, 0.25);
        assert_eq!(m.nominal(), 1.0);
        assert_eq!(m.epsilon(), 0.25);
        assert_eq!(m.min_rate(), 0.75);
        assert_eq!(m.max_rate(), 1.25);
    }

    #[test]
    #[should_panic(expected = "epsilon < m")]
    fn rejects_variation_as_large_as_nominal() {
        let _ = WireDelayModel::new(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_nominal() {
        let _ = WireDelayModel::new(0.0, 0.0);
    }
}
