//! TRIX-style self-stabilizing pulse propagation, plus the rigid
//! contrast model.
//!
//! The paper's Ω(n) lower bound (Theorem 6) applies to *static* clock
//! distribution: once the tree is laid out, a subtree that loses
//! pulses has no way to get them back. TRIX (PAPERS.md, arXiv
//! 2010.01415) attacks exactly that: pulses propagate through a
//! redundant layered grid, each node firing on the **median** of its
//! (width-3) predecessors' pulse times, so up to one faulty
//! in-neighbor per node is voted out and the grid re-synchronizes
//! itself after transient faults.
//!
//! [`TrixGrid`] is a tick-stepped phase-domain model of that scheme.
//! Node state is a clock *offset* (phase error against the reference,
//! in delay units); layer 0 is slaved to the reference, every later
//! node slews toward the median of its alive predecessors under a
//! per-tick slew limit (PLL-style re-lock). Faulty nodes are
//! **fail-silent**: they free-run (offset drifts) and their outputs
//! are excluded from successors' medians and from the skew
//! measurement — the containment a redundant grid buys. On repair a
//! node rejoins with whatever phase it drifted to and slews back,
//! which is where recovery latency comes from.
//!
//! [`RigidGrid`] models the no-adaptation alternative (an H-tree or
//! any passive distribution network): a faulty node's phase drifts
//! while its clock is gone and **stays displaced after repair** —
//! missed pulses are never made up, there is no mechanism to re-slew —
//! and nothing is contained, so the displaced node keeps counting
//! against the array's skew. Under the recovery harness this is the
//! scheme whose skew invariant never re-establishes.
//!
//! Determinism: all jitter and drift derive from `hash(seed, site)`
//! or `hash(seed, site, tick)` via SplitMix64, so a run is a pure
//! function of `(seed, fault schedule)` — byte-identical across
//! threads and query orders.

use sim_runtime::SplitMix64;

/// Shape and physics of a [`TrixGrid`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrixParams {
    /// Grid rows (nodes per layer).
    pub rows: usize,
    /// Grid columns (layers); column 0 is slaved to the reference.
    pub cols: usize,
    /// Per-link, per-tick jitter half-amplitude on observed offsets.
    pub jitter: f64,
    /// Per-tick phase drift magnitude of a free-running (faulty) node.
    pub drift: f64,
    /// Largest per-tick offset correction (slew limit).
    pub max_step: f64,
}

impl TrixParams {
    /// The default physics for a `rows × cols` grid: jitter 0.02,
    /// free-run drift 0.05, slew limit 0.2 (all in delay units per
    /// tick).
    ///
    /// # Panics
    ///
    /// Panics on an empty grid.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "trix grid must be non-empty");
        TrixParams {
            rows,
            cols,
            jitter: 0.02,
            drift: 0.05,
            max_step: 0.2,
        }
    }
}

/// Uniform value in `[-1, 1]` from a hash of the given words.
fn signed_unit(words: [u64; 3]) -> f64 {
    let mut h = 0u64;
    for w in words {
        h = SplitMix64::new(h ^ w).next_u64();
    }
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Median of a small non-empty slice (sorts in place).
fn median(vals: &mut [f64]) -> f64 {
    vals.sort_by(f64::total_cmp);
    vals[vals.len() / 2]
}

/// The self-stabilizing pulse-propagation grid. See the module docs.
#[derive(Debug, Clone)]
pub struct TrixGrid {
    params: TrixParams,
    stream: u64,
    offsets: Vec<f64>,
    tick: u64,
}

impl TrixGrid {
    /// A grid in the synchronized state (all offsets 0), with jitter
    /// and drift streams derived from `seed`.
    #[must_use]
    pub fn new(seed: u64, params: TrixParams) -> Self {
        TrixGrid {
            params,
            stream: SplitMix64::new(seed).next_u64(),
            offsets: vec![0.0; params.rows * params.cols],
            tick: 0,
        }
    }

    /// Node site id (the fault-plan site address) of `(row, col)`.
    #[must_use]
    pub fn site(&self, row: usize, col: usize) -> u64 {
        (row * self.params.cols + col) as u64
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the grid has no nodes (never true — the constructor
    /// rejects empty grids).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Current offset of node `site`.
    #[must_use]
    pub fn offset(&self, site: u64) -> f64 {
        self.offsets[site as usize]
    }

    /// Free-run drift of a faulty node: deterministic per site, with
    /// magnitude in `[drift/2, drift]` and a site-dependent sign, so
    /// concurrent outages spread the grid apart rather than marching
    /// it in lockstep.
    fn free_run_drift(&self, site: u64) -> f64 {
        let u = signed_unit([self.stream, 0x64726966, site]);
        let mag = self.params.drift * (0.75 + 0.25 * u.abs());
        if u >= 0.0 {
            mag
        } else {
            -mag
        }
    }

    /// Observation jitter on the link into `site` at the current tick.
    fn link_jitter(&self, site: u64, tick: u64) -> f64 {
        self.params.jitter * signed_unit([self.stream, site.wrapping_add(1), tick])
    }

    /// Advances one tick. `faulty(site)` answers the *current* fault
    /// state (e.g. [`EpisodePlan::faulty_at`] partially applied at
    /// this tick). Returns the post-step [`max_skew`](Self::max_skew).
    ///
    /// [`EpisodePlan::faulty_at`]: sim_faults::EpisodePlan::faulty_at
    pub fn step(&mut self, faulty: impl Fn(u64) -> bool) -> f64 {
        let (rows, cols) = (self.params.rows, self.params.cols);
        let prev = self.offsets.clone();
        let tick = self.tick;
        for r in 0..rows {
            for c in 0..cols {
                let site = self.site(r, c);
                let i = site as usize;
                if faulty(site) {
                    // Fail-silent: free-run; successors vote us out.
                    self.offsets[i] = prev[i] + self.free_run_drift(site);
                    continue;
                }
                let target = if c == 0 {
                    // Layer 0 hears the reference directly.
                    self.link_jitter(site, tick)
                } else {
                    // Median over the alive width-3 predecessor window
                    // in the previous layer (clamped at the grid edge).
                    let mut preds = [0.0f64; 3];
                    let mut alive = 0;
                    for dr in -1i64..=1 {
                        let pr = (r as i64 + dr).clamp(0, rows as i64 - 1) as usize;
                        let psite = self.site(pr, c - 1);
                        if !faulty(psite) {
                            preds[alive] = prev[psite as usize]
                                + self.link_jitter(site ^ (psite << 32), tick);
                            alive += 1;
                        }
                    }
                    if alive == 0 {
                        // Every predecessor is down: hold phase.
                        prev[i]
                    } else {
                        median(&mut preds[..alive])
                    }
                };
                let step = (target - prev[i]).clamp(-self.params.max_step, self.params.max_step);
                self.offsets[i] = prev[i] + step;
            }
        }
        self.tick += 1;
        self.max_skew(faulty)
    }

    /// Largest offset spread over the reference (phase 0) and every
    /// *alive* node — faulty nodes are contained and do not count
    /// until they rejoin.
    #[must_use]
    pub fn max_skew(&self, faulty: impl Fn(u64) -> bool) -> f64 {
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for site in 0..self.offsets.len() as u64 {
            if !faulty(site) {
                let v = self.offsets[site as usize];
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        hi - lo
    }
}

/// The no-adaptation contrast: a rigid distribution network (H-tree
/// style) in the same phase-domain model. See the module docs.
#[derive(Debug, Clone)]
pub struct RigidGrid {
    stream: u64,
    drift: f64,
    offsets: Vec<f64>,
}

impl RigidGrid {
    /// A rigid network over `nodes` sinks whose faulty sinks drift at
    /// per-tick magnitude `drift` (same free-run physics as
    /// [`TrixGrid`]).
    ///
    /// # Panics
    ///
    /// Panics on an empty network.
    #[must_use]
    pub fn new(seed: u64, nodes: usize, drift: f64) -> Self {
        assert!(nodes > 0, "rigid grid must be non-empty");
        RigidGrid {
            stream: SplitMix64::new(seed).next_u64(),
            drift,
            offsets: vec![0.0; nodes],
        }
    }

    /// Number of clock sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the network has no sinks (never true — the constructor
    /// rejects empty networks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Advances one tick: faulty sinks lose pulses (phase drifts),
    /// repaired sinks keep their displacement forever — a passive
    /// network has no re-slew path. Returns the post-step skew over
    /// **all** sinks (no containment either).
    pub fn step(&mut self, faulty: impl Fn(u64) -> bool) -> f64 {
        for site in 0..self.offsets.len() as u64 {
            if faulty(site) {
                let u = signed_unit([self.stream, 0x64726966, site]);
                let mag = self.drift * (0.75 + 0.25 * u.abs());
                self.offsets[site as usize] += if u >= 0.0 { mag } else { -mag };
            }
        }
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for &v in &self.offsets {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_faults::{EpisodeConfig, EpisodePlan};

    const NONE: fn(u64) -> bool = |_| false;

    #[test]
    fn fault_free_grid_stays_locked() {
        let mut g = TrixGrid::new(3, TrixParams::new(4, 4));
        for _ in 0..200 {
            let skew = g.step(NONE);
            assert!(skew < 0.2, "nominal skew stays at jitter scale, got {skew}");
        }
    }

    #[test]
    fn steps_are_deterministic() {
        let run = || {
            let mut g = TrixGrid::new(11, TrixParams::new(4, 4));
            (0..100).map(|_| g.step(|s| s == 5)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn faulty_node_is_contained_then_recovers() {
        let params = TrixParams::new(4, 4);
        let mut g = TrixGrid::new(7, params);
        for _ in 0..50 {
            g.step(NONE);
        }
        // A 60-tick outage on an interior node: skew stays bounded
        // while the node is voted out...
        let victim = g.site(1, 2);
        for _ in 0..60 {
            let skew = g.step(|s| s == victim);
            assert!(skew < 0.2, "fail-silent containment, got {skew}");
        }
        let displaced = g.offset(victim).abs();
        assert!(displaced > 1.0, "free-run drifted the victim, got {displaced}");
        // ...the rejoin blows the invariant once...
        let skew = g.step(NONE);
        assert!(skew > 0.5, "rejoin exposes the displacement, got {skew}");
        // ...and the slew heals it in O(displacement / max_step).
        let budget = (displaced / params.max_step) as usize + 30;
        let mut healed = false;
        for _ in 0..budget {
            if g.step(NONE) < 0.2 {
                healed = true;
                break;
            }
        }
        assert!(healed, "victim must re-lock within {budget} ticks");
    }

    #[test]
    fn rigid_grid_never_heals() {
        let mut r = RigidGrid::new(7, 16, 0.05);
        for _ in 0..40 {
            r.step(|s| s == 3);
        }
        let after_outage = r.step(NONE);
        assert!(after_outage > 1.0, "outage displaced the sink");
        for _ in 0..500 {
            let skew = r.step(NONE);
            assert!(
                (skew - after_outage).abs() < 1e-12,
                "a rigid network never makes up missed pulses"
            );
        }
    }

    #[test]
    fn episode_plan_drives_the_step_closure() {
        let cfg = EpisodeConfig {
            rate: 0.4,
            min_duration: 20,
            max_duration: 40,
            horizon: 100,
        };
        let plan = EpisodePlan::new(5, 0, cfg);
        let mut g = TrixGrid::new(5, TrixParams::new(4, 4));
        for t in 0..160 {
            let skew = g.step(|s| plan.faulty_at(s, t));
            assert!(skew.is_finite());
        }
    }
}
