//! Clock-skew analysis: the difference model (A9), the summation
//! model (A10/A11), Monte-Carlo measurement, and worst-case bounds.
//!
//! Given a clock tree and a wire-delay model, three views of skew are
//! available for each pair of communicating cells:
//!
//! 1. **Analytic worst case** — `σ_max = m·d + ε·s` over all
//!    fabrications within the delay band (Section III's derivation);
//! 2. **Monte-Carlo** — the skew realised by sampled per-edge delay
//!    rates ([`ArrivalTimes`]);
//! 3. **Model bounds** — the abstract `f(d)` / `g(s)` bounds that the
//!    paper's two skew models postulate ([`DifferenceModel`],
//!    [`SummationModel`]).
//!
//! Experiment E1 checks that (2) stays within (1) and that (1) matches
//! the formula; E2–E4 use (1) and (3) to reproduce Theorems 2, 3
//! and 6.

use crate::delay::WireDelayModel;
use crate::tree::{ClockTree, NodeId};
use array_layout::graph::{CellId, CommGraph};
use sim_runtime::{ParallelSweep, Rng};

/// Clock arrival time at every tree node for one concrete assignment
/// of per-edge delays.
#[derive(Debug, Clone)]
pub struct ArrivalTimes {
    arrival: Vec<f64>,
}

impl ArrivalTimes {
    /// Computes arrival times from per-node edge delay *rates* (one
    /// per node, interpreted as delay per unit length of the wire to
    /// its parent).
    ///
    /// # Panics
    ///
    /// Panics if `rates.len() != tree.node_count()`.
    #[must_use]
    pub fn from_rates(tree: &ClockTree, rates: &[f64]) -> Self {
        assert_eq!(
            rates.len(),
            tree.node_count(),
            "one rate per tree node required"
        );
        let mut arrival = vec![0.0; tree.node_count()];
        for n in tree.nodes() {
            if let Some(p) = tree.parent(n) {
                arrival[n.index()] =
                    arrival[p.index()] + tree.wire_length(n) * rates[n.index()];
            }
        }
        ArrivalTimes { arrival }
    }

    /// Arrival time at a tree node.
    #[must_use]
    pub fn at_node(&self, node: NodeId) -> f64 {
        self.arrival[node.index()]
    }

    /// Arrival time at the node clocking `cell`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not attached to the tree.
    #[must_use]
    pub fn at_cell(&self, tree: &ClockTree, cell: CellId) -> f64 {
        let node = tree
            .node_of_cell(cell)
            .unwrap_or_else(|| panic!("cell {cell} not attached to the clock tree"));
        self.arrival[node.index()]
    }

    /// Skew between two cells under this delay assignment.
    ///
    /// # Panics
    ///
    /// Panics if either cell is not attached to the tree.
    #[must_use]
    pub fn skew(&self, tree: &ClockTree, a: CellId, b: CellId) -> f64 {
        (self.at_cell(tree, a) - self.at_cell(tree, b)).abs()
    }
}

/// One tree edge's signed contribution to a pair's skew — the unit of
/// causal attribution ([`attribute_skew`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeContribution {
    /// The node the edge leads into (the edge is `parent(node) → node`).
    pub node: NodeId,
    /// Edge label `n<parent>>n<node>`, stable for reports and traces.
    pub edge: String,
    /// Signed delay contribution: positive along `a`'s root-to-leaf
    /// path, negative along `b`'s (the common prefix cancels and is
    /// omitted).
    pub delta: f64,
}

/// The causal decomposition of one skew observation: which edges of
/// the two root-to-leaf paths produced it, and by how much.
///
/// Skew between `a` and `b` is the difference of their arrival times,
/// and arrival time is the sum of per-edge delays down the tree — so
/// the skew decomposes exactly over the *symmetric difference* of the
/// two paths (everything above the LCA cancels). `signed_skew` is
/// `arrival(a) − arrival(b)`; the magnitude is what
/// [`ArrivalTimes::skew`] reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewBreakdown {
    /// First cell of the pair.
    pub a: CellId,
    /// Second cell of the pair.
    pub b: CellId,
    /// `arrival(a) − arrival(b)` (sum of all edge contributions).
    pub signed_skew: f64,
    /// The fork point: deepest common ancestor of the two leaves.
    /// Everything above it cancels out of the skew.
    pub lca: NodeId,
    /// Wire length of `a`'s path below the LCA.
    pub path_len_a: f64,
    /// Wire length of `b`'s path below the LCA.
    pub path_len_b: f64,
    /// Per-edge contributions: `a`'s path below the LCA in
    /// root-to-leaf order, then `b`'s.
    pub edges: Vec<EdgeContribution>,
}

impl SkewBreakdown {
    /// The skew magnitude, `|signed_skew|`.
    #[must_use]
    pub fn magnitude(&self) -> f64 {
        self.signed_skew.abs()
    }

    /// Structural wire-length imbalance below the fork point,
    /// `|path_len_a − path_len_b|` — the difference-model distance `d`
    /// restricted to this pair. Zero on an equalized symmetric tree;
    /// on asymmetric trees (quadrant/spine) this is the part of the
    /// skew that is *guaranteed* by geometry rather than sampled from
    /// the delay band, so a large value tells the reader the topology,
    /// not the fabrication, produced the skew.
    #[must_use]
    pub fn path_imbalance(&self) -> f64 {
        (self.path_len_a - self.path_len_b).abs()
    }

    /// The single edge contributing the largest absolute delay — where
    /// to look first when chasing a worst-case sample.
    #[must_use]
    pub fn dominant_edge(&self) -> Option<&EdgeContribution> {
        self.edges.iter().max_by(|x, y| {
            x.delta
                .abs()
                .partial_cmp(&y.delta.abs())
                .expect("finite contributions")
        })
    }
}

/// Attributes the skew between `a` and `b` under the per-edge delay
/// `rates` to individual tree edges (see [`SkewBreakdown`]).
///
/// # Panics
///
/// Panics if either cell is not attached to the tree or
/// `rates.len() != tree.node_count()`.
#[must_use]
pub fn attribute_skew(tree: &ClockTree, rates: &[f64], a: CellId, b: CellId) -> SkewBreakdown {
    assert_eq!(
        rates.len(),
        tree.node_count(),
        "one rate per tree node required"
    );
    let node_of = |cell: CellId| {
        tree.node_of_cell(cell)
            .unwrap_or_else(|| panic!("cell {cell} not attached to the clock tree"))
    };
    let (na, nb) = (node_of(a), node_of(b));
    let lca = tree.lca(na, nb);
    let side = |leaf: NodeId, sign: f64| -> Vec<EdgeContribution> {
        let mut path = Vec::new();
        let mut n = leaf;
        while n != lca {
            let p = tree.parent(n).expect("lca is an ancestor");
            path.push(EdgeContribution {
                node: n,
                edge: format!("n{}>n{}", p.index(), n.index()),
                delta: sign * tree.wire_length(n) * rates[n.index()],
            });
            n = p;
        }
        path.reverse(); // root-to-leaf order reads like the tree
        path
    };
    let mut edges = side(na, 1.0);
    let below_a = edges.len();
    edges.extend(side(nb, -1.0));
    let signed_skew = edges.iter().map(|e| e.delta).sum();
    // Path lengths below the fork, from the cached root distances: the
    // two sides may have very different depths *and* lengths on
    // asymmetric trees, and the attribution must say so explicitly
    // rather than assume sibling subtrees mirror each other.
    let path_len = |leaf: NodeId| tree.root_distance(leaf) - tree.root_distance(lca);
    debug_assert_eq!(below_a, tree.depth(na) - tree.depth(lca));
    SkewBreakdown {
        a,
        b,
        signed_skew,
        lca,
        path_len_a: path_len(na),
        path_len_b: path_len(nb),
        edges,
    }
}

/// Analytic worst-case skew between two cells over all fabrications in
/// the delay band: `m·d + ε·s` (Section III).
///
/// # Panics
///
/// Panics if either cell is not attached to the tree.
#[must_use]
pub fn worst_case_skew(
    tree: &ClockTree,
    model: WireDelayModel,
    a: CellId,
    b: CellId,
) -> f64 {
    let d = tree.difference_distance(a, b);
    let s = tree.summation_distance(a, b);
    model.nominal() * d + model.epsilon() * s
}

/// The guaranteed-achievable skew between two cells: some fabrication
/// in the band realises at least `ε·s` (assumption A11 with `β = ε`).
///
/// # Panics
///
/// Panics if either cell is not attached to the tree.
#[must_use]
pub fn achievable_skew_lower_bound(
    tree: &ClockTree,
    model: WireDelayModel,
    a: CellId,
    b: CellId,
) -> f64 {
    model.epsilon() * tree.summation_distance(a, b)
}

/// The paper's **difference model** (assumption A9): skew between two
/// cells is bounded above by `f(d)`, `f` monotonically increasing,
/// `d` the positive difference of their root distances. Appropriate
/// for systems whose clock-line delays can be tuned (discrete
/// components).
pub struct DifferenceModel {
    f: Box<dyn Fn(f64) -> f64 + Send + Sync>,
}

impl std::fmt::Debug for DifferenceModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DifferenceModel").finish_non_exhaustive()
    }
}

impl DifferenceModel {
    /// A linear bound `f(d) = slope · d`; the Section III derivation
    /// with the `ε` terms ignored uses `slope = m`.
    #[must_use]
    pub fn linear(slope: f64) -> Self {
        DifferenceModel {
            f: Box::new(move |d| slope * d),
        }
    }

    /// An arbitrary monotone bound function.
    #[must_use]
    pub fn with_fn(f: impl Fn(f64) -> f64 + Send + Sync + 'static) -> Self {
        DifferenceModel { f: Box::new(f) }
    }

    /// Skew bound `f(d)` for one pair of cells.
    ///
    /// # Panics
    ///
    /// Panics if either cell is not attached to the tree.
    #[must_use]
    pub fn pair_bound(&self, tree: &ClockTree, a: CellId, b: CellId) -> f64 {
        (self.f)(tree.difference_distance(a, b))
    }

    /// Maximum skew bound over all communicating pairs of `comm` —
    /// the `σ` entering the clock period of assumption A5.
    ///
    /// # Panics
    ///
    /// Panics if some cell of `comm` is not attached to the tree.
    #[must_use]
    pub fn max_skew(&self, tree: &ClockTree, comm: &CommGraph) -> f64 {
        comm.communicating_pairs()
            .into_iter()
            .map(|(a, b)| self.pair_bound(tree, a, b))
            .fold(0.0, f64::max)
    }
}

/// The paper's **summation model** (assumptions A10/A11): skew between
/// two cells is bounded above by `g(s)` and below by `β·s`, where `s`
/// is the length of the tree path connecting them. This is the robust
/// model — it holds for "almost any imaginable means of transmitting
/// clock events" (Section VII).
pub struct SummationModel {
    g: Box<dyn Fn(f64) -> f64 + Send + Sync>,
    beta: f64,
}

impl std::fmt::Debug for SummationModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SummationModel")
            .field("beta", &self.beta)
            .finish_non_exhaustive()
    }
}

impl SummationModel {
    /// The linear instance from the Section III derivation:
    /// `g(s) = (m + ε)·s` and `β = ε`.
    ///
    /// # Panics
    ///
    /// Panics if the model has zero variation (the summation model is
    /// vacuous when `ε = 0`).
    #[must_use]
    pub fn from_delay_model(model: WireDelayModel) -> Self {
        assert!(
            model.epsilon() > 0.0,
            "summation model needs positive variation"
        );
        let upper = model.max_rate();
        SummationModel {
            g: Box::new(move |s| upper * s),
            beta: model.epsilon(),
        }
    }

    /// An arbitrary monotone upper bound `g` with lower-bound constant
    /// `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta > 0`.
    #[must_use]
    pub fn with_fn(g: impl Fn(f64) -> f64 + Send + Sync + 'static, beta: f64) -> Self {
        assert!(beta > 0.0, "beta must be positive (assumption A11)");
        SummationModel {
            g: Box::new(g),
            beta,
        }
    }

    /// The lower-bound constant `β` of assumption A11.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Upper skew bound `g(s)` for one pair of cells.
    ///
    /// # Panics
    ///
    /// Panics if either cell is not attached to the tree.
    #[must_use]
    pub fn pair_upper(&self, tree: &ClockTree, a: CellId, b: CellId) -> f64 {
        (self.g)(tree.summation_distance(a, b))
    }

    /// Lower skew bound `β·s` for one pair of cells.
    ///
    /// # Panics
    ///
    /// Panics if either cell is not attached to the tree.
    #[must_use]
    pub fn pair_lower(&self, tree: &ClockTree, a: CellId, b: CellId) -> f64 {
        self.beta * tree.summation_distance(a, b)
    }

    /// Maximum of the upper bound over all communicating pairs — the
    /// `σ` entering the clock period of assumption A5.
    ///
    /// # Panics
    ///
    /// Panics if some cell of `comm` is not attached to the tree.
    #[must_use]
    pub fn max_skew(&self, tree: &ClockTree, comm: &CommGraph) -> f64 {
        comm.communicating_pairs()
            .into_iter()
            .map(|(a, b)| self.pair_upper(tree, a, b))
            .fold(0.0, f64::max)
    }

    /// Maximum of the *lower* bound `β·s` over all communicating
    /// pairs: no fabrication guarantee can beat this, which is the
    /// quantity the Section V-B lower bound constrains.
    ///
    /// # Panics
    ///
    /// Panics if some cell of `comm` is not attached to the tree.
    #[must_use]
    pub fn max_guaranteed_skew(&self, tree: &ClockTree, comm: &CommGraph) -> f64 {
        comm.communicating_pairs()
            .into_iter()
            .map(|(a, b)| self.pair_lower(tree, a, b))
            .fold(0.0, f64::max)
    }
}

/// Result of a Monte-Carlo skew measurement over a whole array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewSample {
    /// Largest skew observed between any communicating pair.
    pub max_skew: f64,
    /// Mean over pairs of the per-pair maximum skew across samples.
    pub mean_pair_skew: f64,
}

/// Samples `samples` fabrications of the tree's wire delays and
/// reports the largest skew seen between communicating cells of
/// `comm`, plus the mean over pairs of each pair's own maximum.
///
/// # Panics
///
/// Panics if `samples == 0` or some cell of `comm` is not attached.
#[must_use]
pub fn monte_carlo_skew<R: Rng>(
    tree: &ClockTree,
    comm: &CommGraph,
    model: WireDelayModel,
    samples: usize,
    rng: &mut R,
) -> SkewSample {
    assert!(samples > 0, "at least one sample required");
    let pairs = comm.communicating_pairs();
    let mut per_pair_max = vec![0.0f64; pairs.len()];
    for _ in 0..samples {
        let rates = model.sample_rates(tree, rng);
        let arrivals = ArrivalTimes::from_rates(tree, &rates);
        for (slot, &(a, b)) in per_pair_max.iter_mut().zip(&pairs) {
            let s = arrivals.skew(tree, a, b);
            if s > *slot {
                *slot = s;
            }
        }
    }
    let max_skew = per_pair_max.iter().copied().fold(0.0, f64::max);
    let mean_pair_skew = if pairs.is_empty() {
        0.0
    } else {
        per_pair_max.iter().sum::<f64>() / pairs.len() as f64
    };
    SkewSample {
        max_skew,
        mean_pair_skew,
    }
}

/// Parallel variant of [`monte_carlo_skew`] for the E1 fabrication
/// sweep: samples fan out across a [`ParallelSweep`], each fabrication
/// drawing from its own per-trial stream, so the result depends only
/// on `seed` — never on the worker count.
///
/// # Panics
///
/// Panics if `samples == 0` or some cell of `comm` is not attached.
#[must_use]
pub fn monte_carlo_skew_par(
    tree: &ClockTree,
    comm: &CommGraph,
    model: WireDelayModel,
    samples: usize,
    seed: u64,
    sweep: &ParallelSweep,
) -> SkewSample {
    assert!(samples > 0, "at least one sample required");
    let pairs = comm.communicating_pairs();
    let per_sample: Vec<Vec<f64>> = sweep.run(samples, seed, |_i, rng| {
        let rates = model.sample_rates(tree, rng);
        let arrivals = ArrivalTimes::from_rates(tree, &rates);
        pairs
            .iter()
            .map(|&(a, b)| arrivals.skew(tree, a, b))
            .collect()
    });
    let mut per_pair_max = vec![0.0f64; pairs.len()];
    for skews in &per_sample {
        for (slot, &s) in per_pair_max.iter_mut().zip(skews) {
            if s > *slot {
                *slot = s;
            }
        }
    }
    let max_skew = per_pair_max.iter().copied().fold(0.0, f64::max);
    let mean_pair_skew = if pairs.is_empty() {
        0.0
    } else {
        per_pair_max.iter().sum::<f64>() / pairs.len() as f64
    };
    SkewSample {
        max_skew,
        mean_pair_skew,
    }
}

/// Analytic worst-case skew over all communicating pairs: the maximum
/// of `m·d + ε·s`.
///
/// # Panics
///
/// Panics if some cell of `comm` is not attached to the tree.
#[must_use]
pub fn max_worst_case_skew(
    tree: &ClockTree,
    comm: &CommGraph,
    model: WireDelayModel,
) -> f64 {
    comm.communicating_pairs()
        .into_iter()
        .map(|(a, b)| worst_case_skew(tree, model, a, b))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ClockTreeBuilder;
    use array_layout::geom::{approx_eq, Point};
    use sim_runtime::SimRng;

    /// Root with two leaves at distances 3 and 5.
    fn two_leaf_tree() -> ClockTree {
        let mut b = ClockTreeBuilder::new(Point::origin());
        let l = b.add_child(b.root(), Point::new(3.0, 0.0), None);
        let r = b.add_child(b.root(), Point::new(0.0, 5.0), None);
        b.attach_cell(l, CellId::new(0));
        b.attach_cell(r, CellId::new(1));
        b.build()
    }

    fn pair_comm() -> CommGraph {
        CommGraph::linear(2)
    }

    #[test]
    fn worst_case_matches_formula() {
        let t = two_leaf_tree();
        let m = WireDelayModel::new(1.0, 0.1);
        // d = 2, s = 8 → σ_max = 1·2 + 0.1·8 = 2.8.
        let wc = worst_case_skew(&t, m, CellId::new(0), CellId::new(1));
        assert!(approx_eq(wc, 2.8));
        assert!(approx_eq(
            achievable_skew_lower_bound(&t, m, CellId::new(0), CellId::new(1)),
            0.8
        ));
    }

    #[test]
    fn attribution_decomposes_the_skew_exactly() {
        let t = two_leaf_tree();
        // Distinct rates per node so the sides differ: node order is
        // root(0), left leaf(1), right leaf(2).
        let rates = vec![0.0, 1.5, 0.5];
        let (a, b) = (CellId::new(0), CellId::new(1));
        let bd = attribute_skew(&t, &rates, a, b);
        let arrivals = ArrivalTimes::from_rates(&t, &rates);
        // arrival(a) = 3·1.5 = 4.5, arrival(b) = 5·0.5 = 2.5.
        assert!(approx_eq(bd.signed_skew, 2.0));
        assert!(approx_eq(bd.magnitude(), arrivals.skew(&t, a, b)));
        assert_eq!(bd.edges.len(), 2, "one edge per side below the LCA");
        assert!(approx_eq(bd.edges[0].delta, 4.5));
        assert!(approx_eq(bd.edges[1].delta, -2.5));
        assert_eq!(bd.edges[0].edge, "n0>n1");
        assert_eq!(bd.edges[1].edge, "n0>n2");
        let dom = bd.dominant_edge().expect("non-empty path");
        assert_eq!(dom.edge, "n0>n1", "the long-pole edge is named");
        // Swapping the pair negates the signed skew.
        let swapped = attribute_skew(&t, &rates, b, a);
        assert!(approx_eq(swapped.signed_skew, -2.0));
    }

    #[test]
    fn attribution_is_path_length_aware_on_a_lopsided_tree() {
        // Deliberately asymmetric: one leaf hangs a single 2-unit edge
        // off the root, the other sits three edges (total length 7)
        // deep — the quadrant/secondary-spine shape in miniature.
        // Nothing about the attribution may assume sibling subtrees of
        // equal depth or length.
        let mut b = ClockTreeBuilder::new(Point::origin());
        let shallow = b.add_child(b.root(), Point::new(2.0, 0.0), None);
        let x = b.add_child(b.root(), Point::new(0.0, 3.0), None);
        let y = b.add_child(x, Point::new(0.0, 6.0), None);
        let deep = b.add_child(y, Point::new(1.0, 6.0), None);
        b.attach_cell(shallow, CellId::new(0));
        b.attach_cell(deep, CellId::new(1));
        let t = b.build();

        let rates = vec![0.0, 1.0, 0.5, 2.0, 1.0]; // root, shallow, x, y, deep
        let (a, c) = (CellId::new(0), CellId::new(1));
        let bd = attribute_skew(&t, &rates, a, c);

        // The decomposition stays exact across unequal depths...
        let arrivals = ArrivalTimes::from_rates(&t, &rates);
        // arrival(a) = 2·1 = 2; arrival(b) = 3·0.5 + 3·2 + 1·1 = 8.5.
        assert!(approx_eq(bd.signed_skew, -6.5));
        assert!(approx_eq(bd.magnitude(), arrivals.skew(&t, a, c)));
        assert_eq!(bd.edges.len(), 1 + 3, "one edge vs three below the fork");
        assert!(approx_eq(bd.edges.iter().map(|e| e.delta).sum::<f64>(), bd.signed_skew));

        // ...and the breakdown reports the structural imbalance rather
        // than pretending the sides mirror each other.
        assert_eq!(bd.lca, t.root());
        assert!(approx_eq(bd.path_len_a, 2.0));
        assert!(approx_eq(bd.path_len_b, 7.0));
        assert!(approx_eq(bd.path_imbalance(), 5.0));
        let dom = bd.dominant_edge().expect("non-empty path");
        assert_eq!(dom.edge, "n2>n3", "the 3-unit edge at rate 2 dominates");

        // A pair forking below the root attributes from the true LCA,
        // not the root: compare deep vs a sibling hanging off `y`.
        // (Single-pair sanity on the same lopsided shape.)
        let swapped = attribute_skew(&t, &rates, c, a);
        assert!(approx_eq(swapped.path_len_a, 7.0));
        assert!(approx_eq(swapped.path_len_b, 2.0));
        assert!(approx_eq(swapped.path_imbalance(), 5.0));
    }

    #[test]
    fn monte_carlo_within_analytic_bounds() {
        let t = two_leaf_tree();
        let comm = pair_comm();
        let m = WireDelayModel::new(1.0, 0.2);
        let mut rng = SimRng::seed_from_u64(11);
        let sample = monte_carlo_skew(&t, &comm, m, 500, &mut rng);
        let wc = max_worst_case_skew(&t, &comm, m);
        assert!(sample.max_skew <= wc + 1e-9, "{} > {}", sample.max_skew, wc);
        // With 500 samples the observed max should come close to the
        // analytic worst case (within 40 %): d·m dominates here.
        assert!(sample.max_skew >= 0.6 * wc, "{} « {}", sample.max_skew, wc);
        assert!(sample.mean_pair_skew <= sample.max_skew);
    }

    #[test]
    fn parallel_monte_carlo_is_thread_count_invariant() {
        let t = two_leaf_tree();
        let comm = pair_comm();
        let m = WireDelayModel::new(1.0, 0.2);
        let base = monte_carlo_skew_par(&t, &comm, m, 300, 11, &ParallelSweep::new(1));
        for threads in [2, 4] {
            let par =
                monte_carlo_skew_par(&t, &comm, m, 300, 11, &ParallelSweep::new(threads));
            assert_eq!(base.max_skew.to_bits(), par.max_skew.to_bits());
            assert_eq!(base.mean_pair_skew.to_bits(), par.mean_pair_skew.to_bits());
        }
        // And it still respects the analytic envelope.
        let wc = max_worst_case_skew(&t, &comm, m);
        assert!(base.max_skew <= wc + 1e-9);
        assert!(base.max_skew >= 0.6 * wc);
    }

    #[test]
    fn exact_model_skew_is_pure_difference() {
        let t = two_leaf_tree();
        let m = WireDelayModel::exact(2.0);
        let rates = m.sample_rates(&t, &mut SimRng::seed_from_u64(0));
        let arr = ArrivalTimes::from_rates(&t, &rates);
        // Arrival difference = m · (5 − 3) = 4 exactly.
        assert!(approx_eq(arr.skew(&t, CellId::new(0), CellId::new(1)), 4.0));
    }

    #[test]
    fn difference_model_bounds() {
        let t = two_leaf_tree();
        let comm = pair_comm();
        let dm = DifferenceModel::linear(1.5);
        assert!(approx_eq(dm.pair_bound(&t, CellId::new(0), CellId::new(1)), 3.0));
        assert!(approx_eq(dm.max_skew(&t, &comm), 3.0));
        let custom = DifferenceModel::with_fn(|d| d * d);
        assert!(approx_eq(custom.pair_bound(&t, CellId::new(0), CellId::new(1)), 4.0));
    }

    #[test]
    fn summation_model_bounds() {
        let t = two_leaf_tree();
        let comm = pair_comm();
        let sm = SummationModel::from_delay_model(WireDelayModel::new(1.0, 0.25));
        // s = 8: upper (1.25)·8 = 10, lower 0.25·8 = 2.
        assert!(approx_eq(sm.pair_upper(&t, CellId::new(0), CellId::new(1)), 10.0));
        assert!(approx_eq(sm.pair_lower(&t, CellId::new(0), CellId::new(1)), 2.0));
        assert!(approx_eq(sm.max_skew(&t, &comm), 10.0));
        assert!(approx_eq(sm.max_guaranteed_skew(&t, &comm), 2.0));
        assert!(approx_eq(sm.beta(), 0.25));
    }

    #[test]
    fn summation_lower_never_exceeds_upper() {
        let t = two_leaf_tree();
        let sm = SummationModel::from_delay_model(WireDelayModel::new(1.0, 0.1));
        let (a, b) = (CellId::new(0), CellId::new(1));
        assert!(sm.pair_lower(&t, a, b) <= sm.pair_upper(&t, a, b));
    }

    #[test]
    fn equalized_tree_has_zero_difference_skew() {
        let t = two_leaf_tree().equalized();
        let m = WireDelayModel::exact(1.0);
        let rates = m.sample_rates(&t, &mut SimRng::seed_from_u64(0));
        let arr = ArrivalTimes::from_rates(&t, &rates);
        assert!(approx_eq(arr.skew(&t, CellId::new(0), CellId::new(1)), 0.0));
    }

    #[test]
    #[should_panic(expected = "not attached")]
    fn arrival_times_reject_unknown_cell() {
        let t = two_leaf_tree();
        let rates = vec![1.0; t.node_count()];
        let arr = ArrivalTimes::from_rates(&t, &rates);
        let _ = arr.at_cell(&t, CellId::new(99));
    }

    #[test]
    #[should_panic(expected = "positive variation")]
    fn summation_model_rejects_zero_epsilon() {
        let _ = SummationModel::from_delay_model(WireDelayModel::exact(1.0));
    }
}
