//! Assumption A8 and what happens without it.
//!
//! Pipelined clocking (A7) keeps several clock events in flight along
//! a buffered path. For the events to stay *correctly spaced*, the
//! paper assumes A8: "the time for a signal to travel on a particular
//! path through a buffered clock tree is invariant over time". This
//! module simulates an event train travelling down a buffered path
//! with (optionally) time-varying per-stage delay jitter:
//!
//! * with A8 (zero jitter) the inter-event spacing is preserved
//!   exactly, at any depth — pipelined clocking works arbitrarily far;
//! * without A8, spacing error accumulates like a random walk
//!   (~`√depth · σ`), and beyond some depth the clock train violates
//!   any fixed timing margin — the failure that motivates Section VI's
//!   hybrid scheme.

use sim_runtime::{Rng, SimRng};

/// Spacing statistics of a pipelined clock event train at the end of a
/// buffered path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpacingStats {
    /// Smallest spacing between consecutive events at the output.
    pub min_spacing: f64,
    /// Largest spacing between consecutive events at the output.
    pub max_spacing: f64,
    /// Largest absolute deviation of any output spacing from the
    /// nominal period.
    pub max_deviation: f64,
}

/// Simulates `events` clock events launched with period `period` down
/// a path of `stages` buffers. Each buffer nominally delays an event
/// by `stage_delay`; when `jitter_std > 0` every (event, stage) pair
/// gets an independent Gaussian perturbation — the violation of A8.
/// Buffers cannot reorder events or pass them closer than
/// `min_separation` (inertia).
///
/// # Panics
///
/// Panics unless `stages ≥ 1`, `events ≥ 2`, `period > 0`,
/// `stage_delay > 0`, `jitter_std ≥ 0`, and
/// `0 ≤ min_separation < period`.
#[must_use]
pub fn propagate_event_train(
    stages: usize,
    events: usize,
    period: f64,
    stage_delay: f64,
    jitter_std: f64,
    min_separation: f64,
    seed: u64,
) -> SpacingStats {
    assert!(stages >= 1, "need at least one stage");
    assert!(events >= 2, "need at least two events to have a spacing");
    assert!(period > 0.0 && stage_delay > 0.0, "times must be positive");
    assert!(jitter_std >= 0.0, "jitter must be non-negative");
    assert!(
        (0.0..period).contains(&min_separation),
        "need 0 <= min_separation < period"
    );
    let mut rng = SimRng::seed_from_u64(seed);
    // arrival[j] = time of event j at the current depth.
    let mut arrival: Vec<f64> = (0..events).map(|j| j as f64 * period).collect();
    for _ in 0..stages {
        let mut prev_out = f64::NEG_INFINITY;
        for t in arrival.iter_mut() {
            let jitter = if jitter_std > 0.0 {
                crate::jitter::gaussian(&mut rng, jitter_std)
            } else {
                0.0
            };
            let mut out = *t + stage_delay + jitter;
            // Inertia: an event cannot follow its predecessor closer
            // than the buffer can regenerate.
            if out < prev_out + min_separation {
                out = prev_out + min_separation;
            }
            prev_out = out;
            *t = out;
        }
    }
    let mut min_spacing = f64::INFINITY;
    let mut max_spacing: f64 = 0.0;
    for w in arrival.windows(2) {
        let s = w[1] - w[0];
        min_spacing = min_spacing.min(s);
        max_spacing = max_spacing.max(s);
    }
    let max_deviation = (period - min_spacing).abs().max((max_spacing - period).abs());
    SpacingStats {
        min_spacing,
        max_spacing,
        max_deviation,
    }
}

/// The deepest buffered path (in stages) at which every output spacing
/// of a `events`-event train stays within `margin` of the period, for
/// the given jitter. Returns `max_stages` if even the deepest tried
/// path is fine (the A8 case).
///
/// # Panics
///
/// As for [`propagate_event_train`], plus `margin > 0`.
#[must_use]
pub fn max_reliable_depth(
    max_stages: usize,
    events: usize,
    period: f64,
    stage_delay: f64,
    jitter_std: f64,
    margin: f64,
    seed: u64,
) -> usize {
    assert!(margin > 0.0, "margin must be positive");
    let mut deepest = 0;
    for stages in 1..=max_stages {
        let stats = propagate_event_train(
            stages,
            events,
            period,
            stage_delay,
            jitter_std,
            period * 0.25,
            seed,
        );
        if stats.max_deviation <= margin {
            deepest = stages;
        } else {
            break;
        }
    }
    deepest
}

/// One zero-mean Gaussian sample (Box–Muller); kept local so the
/// clock crate does not depend on the simulator crate.
fn gaussian<R: Rng>(rng: &mut R, std: f64) -> f64 {
    let u1: f64 = 1.0 - rng.gen_f64();
    let u2: f64 = rng.gen_f64();
    std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a8_preserves_spacing_exactly_at_any_depth() {
        for stages in [1usize, 64, 4096] {
            let stats = propagate_event_train(stages, 16, 10.0, 1.0, 0.0, 2.0, 1);
            assert!(stats.max_deviation < 1e-9, "stages={stages}: {stats:?}");
        }
    }

    #[test]
    fn jitter_accumulates_with_depth() {
        let shallow = propagate_event_train(16, 64, 10.0, 1.0, 0.2, 2.0, 3);
        let deep = propagate_event_train(1024, 64, 10.0, 1.0, 0.2, 2.0, 3);
        assert!(
            deep.max_deviation > shallow.max_deviation,
            "{deep:?} vs {shallow:?}"
        );
    }

    #[test]
    fn deviation_grows_like_sqrt_depth() {
        // Average over seeds to smooth the estimate.
        let avg_dev = |stages: usize| -> f64 {
            (0..24)
                .map(|seed| {
                    propagate_event_train(stages, 32, 10.0, 1.0, 0.1, 2.0, seed)
                        .max_deviation
                })
                .sum::<f64>()
                / 24.0
        };
        let (d64, d1024) = (avg_dev(64), avg_dev(1024));
        let ratio = d1024 / d64;
        // sqrt(1024/64) = 4; rule out both constant (1) and linear (16).
        assert!((2.0..8.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn reliable_depth_shrinks_with_jitter() {
        let clean = max_reliable_depth(256, 32, 10.0, 1.0, 0.0, 1.0, 7);
        let noisy = max_reliable_depth(256, 32, 10.0, 1.0, 0.1, 1.0, 7);
        assert_eq!(clean, 256, "A8 case should pass every depth");
        assert!(noisy < 256, "jitter must cap the usable depth");
        assert!(noisy >= 1);
    }

    #[test]
    fn events_never_reorder() {
        let stats = propagate_event_train(512, 32, 4.0, 1.0, 0.5, 1.0, 11);
        assert!(stats.min_spacing >= 1.0 - 1e-9, "{stats:?}");
    }
}
