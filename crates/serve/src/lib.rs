//! `sim-serve` — the experiment-serving subsystem.
//!
//! Everything the rest of the workspace computes is deterministic: a
//! `(experiment, seed, trials, params)` tuple names exactly one report
//! byte string. This crate exploits that by putting a server in front
//! of the experiment registry, so repeated and concurrent consumers —
//! dashboards, sweeps, CI — pay for each distinct configuration once:
//!
//! * [`request`] — the canonical request form and its content address.
//!   Normalization (default-fill + fixed field order) lives here and
//!   nowhere else; every other layer keys on its output.
//! * [`cache`] — content-addressed LRU result cache with a byte-size
//!   bound and hit/miss/eviction counters.
//! * [`pool`] — bounded worker pool; a full queue is a structured
//!   `busy` rejection, not a hidden backlog.
//! * [`engine`] — the serving policy: cache → single-flight
//!   coalescing → pool, with waiter-side timeouts.
//! * [`proto`] — line-delimited JSON protocol with length-prefixed
//!   bodies, parsed under hardened network limits.
//! * [`server`] — TCP accept loop, per-connection driver, graceful
//!   drain that finishes in-flight work.
//! * [`client`] — blocking protocol client.
//! * [`loadgen`] — seeded request-mix generator and the
//!   `BENCH_serve.json` snapshot for the regression gate.
//!
//! The binaries `sim_serve` (server) and `sim_loadgen` (load
//! generator) are thin argument-parsing shells over these modules.
//!
//! Served bodies are the *deterministic core* of the CLI's `--json`
//! output (`sim_runtime::json_core`), byte-identical across thread
//! counts — the property that makes caching sound and lets the
//! serve-determinism tests compare wire bytes against direct
//! library-call bytes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod loadgen;
pub mod pool;
pub mod proto;
pub mod request;
pub mod server;
pub mod telemetry;

pub use cache::{Cache, CacheStats};
pub use client::{Backoff, Client};
pub use engine::{Engine, EngineConfig, Outcome, ServeError};
pub use loadgen::{LoadgenConfig, LoadResult, MixSummary};
pub use pool::{Pool, PoolStats, SubmitError};
pub use proto::{Header, Op};
pub use request::{FrontierRequest, Request};
pub use server::Server;
pub use telemetry::{EngineTelemetry, GaugeSnapshot, METRICS_SCHEMA, METRICS_SCHEMA_VERSION};
