//! The TCP front end: accept loop, per-connection protocol driver,
//! and graceful drain.
//!
//! The listener runs non-blocking and is polled every 10 ms against a
//! shared stop flag, so a drain request never races a blocking
//! `accept`. Each connection gets its own thread (connections are
//! few and long-lived — the worker pool, not the connection count, is
//! the concurrency bound) with a short read timeout, which is what
//! lets an idle connection notice the drain within ~200 ms.
//!
//! Drain semantics, triggered by the `shutdown` op or by the binary's
//! stdin watcher flipping the stop flag:
//!
//! 1. the accept loop closes the listener — new connections are
//!    refused;
//! 2. connection handlers finish the request they are serving, then
//!    answer any *further* request with `shutting_down` and close;
//! 3. the engine's pool is shut down, which drains already-queued
//!    jobs before joining the workers.
//!
//! Nothing in-flight is abandoned: a job that was accepted is
//! computed, cached, and its waiter answered before the process
//! exits.

use crate::engine::{Engine, ServeError};
use crate::proto::{self, Op};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Longest request line the server will buffer before answering
/// `malformed` and hanging up — matches the parser's network bound.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// How long a connection read blocks before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// How long the accept loop sleeps between polls of a quiet listener.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A bound, not-yet-serving server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port, then read
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared stop flag; setting it from any thread (e.g. a
    /// stdin-close watcher) begins the graceful drain.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The engine this server fronts.
    #[must_use]
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// Runs the accept loop until the stop flag is set, then drains:
    /// joins every connection thread and shuts the engine down.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures; per-connection I/O
    /// errors only end that connection.
    pub fn serve(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let engine = Arc::clone(&self.engine);
                    let stop = Arc::clone(&self.stop);
                    handlers.push(
                        std::thread::Builder::new()
                            .name("serve-conn".to_owned())
                            .spawn(move || handle_connection(stream, &engine, &stop))
                            .expect("spawning a connection thread"),
                    );
                    // Reap finished handlers so the vec stays small on
                    // long-running servers.
                    handlers.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: stop accepting (listener drops at end of scope, but
        // handlers must finish first), finish in-flight connections,
        // then drain the pool.
        for h in handlers {
            let _ = h.join();
        }
        self.engine.shutdown();
        Ok(())
    }
}

/// Drives one connection: read a line, dispatch, write the reply,
/// repeat until EOF, error, or drain.
pub fn handle_connection(stream: TcpStream, engine: &Arc<Engine>, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = stream;
    let mut writer = match reader.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Extract complete lines already buffered.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if !serve_line(line, engine, stop, &mut writer) {
                return;
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            let _ = writer.write_all(
                proto::error_header("malformed", "request line exceeds 64 KiB")
                    .as_bytes(),
            );
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => return, // EOF: client hung up
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut =>
            {
                // Idle poll tick: if a drain began and nothing is
                // half-received, hang up so the drain can finish.
                if stop.load(Ordering::SeqCst) && buf.is_empty() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line. Returns `false` when the connection
/// should close.
fn serve_line(
    line: &str,
    engine: &Arc<Engine>,
    stop: &AtomicBool,
    writer: &mut TcpStream,
) -> bool {
    if stop.load(Ordering::SeqCst) {
        let _ = writer.write_all(
            proto::error_header("shutting_down", "server is draining").as_bytes(),
        );
        return false;
    }
    let op = match proto::parse_line(line) {
        Ok(op) => op,
        Err(msg) => {
            // A malformed line is answered but the connection stays
            // up: framing is intact (we found the newline), so the
            // peer can correct itself.
            return writer
                .write_all(proto::error_header("malformed", &msg).as_bytes())
                .is_ok();
        }
    };
    match op {
        Op::Ping => writer.write_all(proto::ok_header("ping").as_bytes()).is_ok(),
        Op::Stats => {
            // Introspection bodies are compact: one machine-readable
            // line, uniform with every other auxiliary op. (Report
            // bodies from `run`/`frontier` stay pretty — their exact
            // bytes are the cache/determinism contract.)
            let body = engine.stats_json().to_compact();
            writer
                .write_all(proto::payload_header("stats", body.len()).as_bytes())
                .and_then(|()| writer.write_all(body.as_bytes()))
                .is_ok()
        }
        Op::Metrics { prom } => {
            let body = if prom {
                engine.metrics_prometheus()
            } else {
                engine.metrics_json().map(|doc| doc.to_compact())
            };
            match body {
                Some(body) => writer
                    .write_all(proto::payload_header("metrics", body.len()).as_bytes())
                    .and_then(|()| writer.write_all(body.as_bytes()))
                    .is_ok(),
                None => writer
                    .write_all(
                        proto::error_header(
                            "bad_request",
                            "telemetry is disabled on this server",
                        )
                        .as_bytes(),
                    )
                    .is_ok(),
            }
        }
        Op::Shutdown => {
            let _ = writer.write_all(proto::ok_header("shutdown").as_bytes());
            stop.store(true, Ordering::SeqCst);
            false
        }
        Op::Run(req) => write_outcome(engine.run(&req), writer),
        Op::Frontier(req) => write_outcome(engine.frontier(&req), writer),
    }
}

/// Writes a body-carrying outcome (or its error header). Returns
/// `false` when the connection should close.
fn write_outcome(
    result: Result<crate::engine::Outcome, ServeError>,
    writer: &mut TcpStream,
) -> bool {
    match result {
        Ok(outcome) => writer
            .write_all(proto::run_header(&outcome).as_bytes())
            .and_then(|()| writer.write_all(outcome.body.as_bytes()))
            .is_ok(),
        Err(err) => {
            // Load-shedding refusals tell the client when to come
            // back; other failures are plain status + reason.
            let header = if err == ServeError::Busy {
                proto::busy_header(&err.to_string(), proto::BUSY_RETRY_AFTER_MS)
            } else {
                proto::error_header(err.status(), &err.to_string())
            };
            let ok = writer.write_all(header.as_bytes()).is_ok();
            // Drain refusals also close the connection.
            ok && err != ServeError::ShuttingDown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::engine::EngineConfig;
    use crate::request::Request;

    fn start_server(cfg: &EngineConfig) -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let engine = Arc::new(Engine::new(Arc::new(bench::registry()), cfg));
        let server = Server::bind("127.0.0.1:0", engine).expect("bind ephemeral");
        let addr = server.local_addr().expect("addr");
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.serve().expect("serve"));
        (addr, stop, handle)
    }

    fn fast_line(name: &str, seed: u64) -> String {
        format!(
            r#"{{"experiment":"{name}","seed":{seed},"trials":2,"params":{{"fast":true}}}}"#
        )
    }

    #[test]
    fn ping_run_hit_stats_shutdown_over_one_connection() {
        let (addr, _stop, handle) = start_server(&EngineConfig::default());
        let mut client = Client::connect(addr).expect("connect");

        let (h, _) = client.roundtrip(r#"{"op":"ping"}"#).expect("ping");
        assert!(h.is_ok());

        let (h1, body1) = client.roundtrip(&fast_line("e2", 42)).expect("run");
        assert!(h1.is_ok());
        assert!(!h1.cached);
        assert_eq!(body1.len(), h1.bytes);

        let (h2, body2) = client.roundtrip(&fast_line("e2", 42)).expect("rerun");
        assert!(h2.cached, "identical request must hit the cache");
        assert_eq!(body1, body2, "hit must be byte-identical");
        assert_eq!(h1.key, h2.key);

        let (hs, stats) = client.roundtrip(r#"{"op":"stats"}"#).expect("stats");
        assert!(hs.is_ok());
        let doc = sim_observe::parse(&stats).expect("stats body is JSON");
        let hits = doc.get("cache").and_then(|c| c.get("hits"));
        assert_eq!(hits, Some(&sim_observe::Json::UInt(1)));
        // Auxiliary bodies are compact — uniform across ops.
        assert_eq!(
            stats,
            doc.to_compact(),
            "stats body must be the compact encoding"
        );
        assert!(!stats.contains('\n'));
        assert!(
            doc.get("slo").and_then(|s| s.get("overall")).is_some(),
            "stats carries the SLO section"
        );

        let (hd, _) = client.roundtrip(r#"{"op":"shutdown"}"#).expect("shutdown");
        assert!(hd.is_ok());
        handle.join().expect("serve loop exits after shutdown op");
        assert!(
            TcpStream::connect(addr).is_err(),
            "listener must be closed after drain"
        );
    }

    #[test]
    fn frontier_op_round_trips_with_cached_second_hit() {
        let (addr, stop, handle) = start_server(&EngineConfig::default());
        let mut client = Client::connect(addr).expect("connect");
        let line = r#"{"op":"frontier","seed":3,"trials":2,"fast":true}"#;
        let (h1, body1) = client.roundtrip(line).expect("frontier");
        assert!(h1.is_ok());
        assert!(!h1.cached);
        assert_eq!(body1.len(), h1.bytes);
        let doc = sim_observe::parse(&body1).expect("frontier body is JSON");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("vlsi-sync/frontier-report")
        );
        let (h2, body2) = client.roundtrip(line).expect("frontier again");
        assert!(h2.cached, "identical frontier request must hit the cache");
        assert_eq!(body1, body2);
        assert_eq!(h1.key, h2.key);
        let (hb, _) = client
            .roundtrip(r#"{"op":"frontier","trials":0}"#)
            .expect("bad frontier answered");
        assert_eq!(hb.status, "malformed");
        stop.store(true, Ordering::SeqCst);
        drop(client);
        handle.join().expect("drain");
    }

    #[test]
    fn served_body_matches_engine_core_bytes() {
        let (addr, stop, handle) = start_server(&EngineConfig::default());
        let mut client = Client::connect(addr).expect("connect");
        let (_, body) = client.roundtrip(&fast_line("e3", 9)).expect("run");

        let req = {
            let mut r = Request::new("e3");
            r.seed = 9;
            r.trials = Some(2);
            r.fast = true;
            r
        };
        let registry = bench::registry();
        let exp = registry.get("e3").expect("e3 registered");
        let cfg = req.exp_config(1);
        let report = sim_runtime::run_experiment(exp, &cfg);
        let expected = sim_runtime::json_core(exp, &cfg, &report).to_pretty();
        assert_eq!(body, expected, "wire body == json_core bytes");

        stop.store(true, Ordering::SeqCst);
        drop(client);
        handle.join().expect("drain");
    }

    #[test]
    fn metrics_op_serves_json_and_prometheus_bodies() {
        let (addr, stop, handle) = start_server(&EngineConfig::default());
        let mut client = Client::connect(addr).expect("connect");
        client.roundtrip(&fast_line("e2", 21)).expect("traffic first");

        let (h, body) = client.roundtrip(r#"{"op":"metrics"}"#).expect("metrics");
        assert!(h.is_ok());
        assert_eq!(body.len(), h.bytes);
        let doc = sim_observe::parse(&body).expect("metrics body is JSON");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some(crate::telemetry::METRICS_SCHEMA)
        );
        assert_eq!(body, doc.to_compact(), "metrics JSON body is compact");
        let run_op = doc
            .get("run")
            .and_then(|r| r.get("ops"))
            .and_then(|o| o.get("run"))
            .expect("per-op section");
        assert_eq!(run_op.get("requests"), Some(&sim_observe::Json::UInt(1)));

        let (hp, text) = client
            .roundtrip(r#"{"op":"metrics","format":"prom"}"#)
            .expect("prometheus scrape");
        assert!(hp.is_ok());
        assert!(text.contains("# TYPE serve_requests_total counter"), "{text}");
        assert!(text.contains("serve_slo_attainment{op=\"run\"}"), "{text}");

        // A telemetry-free server answers with a protocol error, not
        // a hangup.
        stop.store(true, Ordering::SeqCst);
        drop(client);
        handle.join().expect("drain");
        let (addr, stop, handle) = start_server(&EngineConfig {
            telemetry: false,
            ..EngineConfig::default()
        });
        let mut client = Client::connect(addr).expect("connect");
        let (h, _) = client.roundtrip(r#"{"op":"metrics"}"#).expect("answered");
        assert_eq!(h.status, "bad_request");
        let (h, _) = client.roundtrip(r#"{"op":"ping"}"#).expect("ping");
        assert!(h.is_ok(), "connection survives the refusal");
        stop.store(true, Ordering::SeqCst);
        drop(client);
        handle.join().expect("drain");
    }

    #[test]
    fn malformed_lines_answer_without_closing() {
        let (addr, stop, handle) = start_server(&EngineConfig::default());
        let mut client = Client::connect(addr).expect("connect");
        let (h, _) = client.roundtrip("this is not json").expect("answered");
        assert_eq!(h.status, "malformed");
        let (h, _) = client
            .roundtrip(r#"{"experiment":"nope"}"#)
            .expect("still answered on the same connection");
        assert_eq!(h.status, "bad_request");
        let (h, _) = client.roundtrip(r#"{"op":"ping"}"#).expect("ping");
        assert!(h.is_ok(), "connection survives malformed traffic");

        stop.store(true, Ordering::SeqCst);
        drop(client);
        handle.join().expect("drain");
    }

    #[test]
    fn stop_flag_drains_idle_connections() {
        let (addr, stop, handle) = start_server(&EngineConfig::default());
        let mut client = Client::connect(addr).expect("connect");
        let (h, _) = client.roundtrip(r#"{"op":"ping"}"#).expect("ping");
        assert!(h.is_ok());
        stop.store(true, Ordering::SeqCst);
        handle.join().expect("idle connections must not block the drain");
    }
}
