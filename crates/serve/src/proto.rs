//! Wire protocol: line-delimited JSON with length-prefixed bodies.
//!
//! Every client message is one JSON object on one line, parsed under
//! [`sim_observe::ParseLimits::network`] so a hostile or corrupted
//! peer can neither balloon memory nor blow the stack. The `op` field
//! routes it:
//!
//! | op         | request payload                         | response |
//! |------------|-----------------------------------------|----------|
//! | `run`      | the [`Request`] fields (`op` optional — the default) | header + report body |
//! | `frontier` | the [`FrontierRequest`] fields          | header + frontier body |
//! | `ping`     | —                                       | header only |
//! | `stats`    | —                                       | header + stats body |
//! | `metrics`  | optional `format`: `json` (default) or `prom` | header + metrics body |
//! | `shutdown` | —                                       | header only, then drain |
//!
//! Every server reply starts with one compact JSON **header line**.
//! If and only if the header carries a `bytes` field, exactly that
//! many raw body bytes follow it — the body is *not* line-framed
//! (pretty-printed reports contain newlines), the byte count is the
//! frame. Success headers say `"status":"ok"`; failures carry a
//! stable machine token (`busy`, `timeout`, `bad_request`, `failed`,
//! `shutting_down`, `malformed`) plus a human `error` string. `busy`
//! refusals additionally carry a structured `retry_after_ms` hint so
//! well-behaved clients back off for a server-chosen interval instead
//! of guessing:
//!
//! ```text
//! {"status":"ok","key":"91b0c2…","cached":true,"coalesced":false,"bytes":1742}
//! {"status":"busy","error":"server busy: worker pool and queue are full","retry_after_ms":25}
//! ```

use crate::engine::Outcome;
use crate::request::{FrontierRequest, Request};
use sim_observe::{parse_with_limits, Json, ParseLimits};

/// A parsed client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Execute (or serve from cache) an experiment request.
    Run(Request),
    /// Serve the design-space Pareto frontier (sweep + prune).
    Frontier(FrontierRequest),
    /// Liveness probe.
    Ping,
    /// Cache/pool/coalescing counter snapshot.
    Stats,
    /// Live telemetry document: windowed latency quantiles, SLO
    /// state, gauge series. `prom` selects Prometheus text exposition
    /// over the default JSON body.
    Metrics {
        /// Serve Prometheus text instead of JSON.
        prom: bool,
    },
    /// Begin a graceful drain; the server stops accepting connections.
    Shutdown,
}

/// Parses one request line under the network limits.
///
/// # Errors
///
/// A human-readable message on JSON errors, unknown ops, or invalid
/// `run` payloads; the server maps it to a `malformed`/`bad_request`
/// header.
pub fn parse_line(line: &str) -> Result<Op, String> {
    let doc = parse_with_limits(line, ParseLimits::network())
        .map_err(|e| format!("invalid request JSON: {e}"))?;
    let op = match doc.get("op") {
        None => "run",
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => return Err("`op` must be a string".to_owned()),
    };
    match op {
        "run" => Ok(Op::Run(Request::from_json(&doc)?)),
        "frontier" => Ok(Op::Frontier(FrontierRequest::from_json(&doc)?)),
        "ping" => Ok(Op::Ping),
        "stats" => Ok(Op::Stats),
        "metrics" => {
            let prom = match doc.get("format") {
                None => false,
                Some(Json::Str(s)) => match s.as_str() {
                    "json" => false,
                    "prom" | "prometheus" => true,
                    other => {
                        return Err(format!(
                            "unknown metrics format `{other}` (known: json, prom)"
                        ))
                    }
                },
                Some(_) => return Err("`format` must be a string".to_owned()),
            };
            Ok(Op::Metrics { prom })
        }
        "shutdown" => Ok(Op::Shutdown),
        other => Err(format!(
            "unknown op `{other}` (known: run, frontier, ping, stats, metrics, shutdown)"
        )),
    }
}

/// Header line for a successful `run`: status, content key, how the
/// body was obtained, and the exact body byte count that follows.
#[must_use]
pub fn run_header(outcome: &Outcome) -> String {
    let mut line = Json::obj(vec![
        ("status", Json::from("ok")),
        ("key", Json::from(outcome.key.as_str())),
        ("cached", Json::Bool(outcome.cached)),
        ("coalesced", Json::Bool(outcome.coalesced)),
        ("bytes", Json::from(outcome.body.len())),
    ])
    .to_compact();
    line.push('\n');
    line
}

/// Header line for a bodyless success (`ping`, `shutdown`).
#[must_use]
pub fn ok_header(op: &str) -> String {
    let mut line = Json::obj(vec![
        ("status", Json::from("ok")),
        ("op", Json::from(op)),
    ])
    .to_compact();
    line.push('\n');
    line
}

/// Header line for a success that carries a payload body (`stats`).
#[must_use]
pub fn payload_header(op: &str, bytes: usize) -> String {
    let mut line = Json::obj(vec![
        ("status", Json::from("ok")),
        ("op", Json::from(op)),
        ("bytes", Json::from(bytes)),
    ])
    .to_compact();
    line.push('\n');
    line
}

/// Header line for any failure: a stable status token plus the
/// human-readable reason.
#[must_use]
pub fn error_header(status: &str, error: &str) -> String {
    let mut line = Json::obj(vec![
        ("status", Json::from(status)),
        ("error", Json::from(error)),
    ])
    .to_compact();
    line.push('\n');
    line
}

/// The retry-after hint a load-shedding refusal carries, in
/// milliseconds. One constant keeps the wire bytes deterministic; it
/// approximates the time a queue slot takes to free under the default
/// pool sizing.
pub const BUSY_RETRY_AFTER_MS: u64 = 25;

/// Header line for a `busy` load-shedding refusal: the stable status
/// token, the human reason, and the structured retry-after hint.
#[must_use]
pub fn busy_header(error: &str, retry_after_ms: u64) -> String {
    let mut line = Json::obj(vec![
        ("status", Json::from("busy")),
        ("error", Json::from(error)),
        ("retry_after_ms", Json::UInt(retry_after_ms)),
    ])
    .to_compact();
    line.push('\n');
    line
}

/// A client-side view of a response header line.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// `"ok"` or a failure token.
    pub status: String,
    /// Content key (successful `run` only).
    pub key: Option<String>,
    /// Cache hit flag (successful `run` only).
    pub cached: bool,
    /// Single-flight flag (successful `run` only).
    pub coalesced: bool,
    /// Body byte count; 0 means no body follows.
    pub bytes: usize,
    /// Failure reason, when `status != "ok"`.
    pub error: Option<String>,
    /// Server-chosen backoff hint on `busy` refusals, in milliseconds.
    pub retry_after_ms: Option<u64>,
}

impl Header {
    /// Whether the request succeeded.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }
}

/// Parses a response header line (client side), under the same
/// network limits as the server applies to requests.
///
/// # Errors
///
/// A message when the line is not a JSON object with a string
/// `status`, or a `bytes` field is not an integer.
pub fn parse_header(line: &str) -> Result<Header, String> {
    let doc = parse_with_limits(line, ParseLimits::network())
        .map_err(|e| format!("invalid response header: {e}"))?;
    let status = doc
        .get("status")
        .and_then(|s| s.as_str())
        .ok_or_else(|| "response header has no string `status`".to_owned())?
        .to_owned();
    let bytes = match doc.get("bytes") {
        None => 0,
        Some(Json::UInt(v)) => usize::try_from(*v)
            .map_err(|_| "`bytes` exceeds the platform limit".to_owned())?,
        Some(_) => return Err("`bytes` must be a non-negative integer".to_owned()),
    };
    let flag = |name: &str| matches!(doc.get(name), Some(Json::Bool(true)));
    let retry_after_ms = match doc.get("retry_after_ms") {
        Some(Json::UInt(v)) => Some(*v),
        _ => None,
    };
    Ok(Header {
        status,
        key: doc.get("key").and_then(|k| k.as_str()).map(str::to_owned),
        cached: flag("cached"),
        coalesced: flag("coalesced"),
        bytes,
        error: doc.get("error").and_then(|e| e.as_str()).map(str::to_owned),
        retry_after_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ops_route_and_default_to_run() {
        assert_eq!(parse_line(r#"{"op":"ping"}"#).unwrap(), Op::Ping);
        assert_eq!(parse_line(r#"{"op":"stats"}"#).unwrap(), Op::Stats);
        assert_eq!(parse_line(r#"{"op":"shutdown"}"#).unwrap(), Op::Shutdown);
        assert_eq!(
            parse_line(r#"{"op":"metrics"}"#).unwrap(),
            Op::Metrics { prom: false },
            "metrics defaults to the JSON body"
        );
        assert_eq!(
            parse_line(r#"{"op":"metrics","format":"json"}"#).unwrap(),
            Op::Metrics { prom: false }
        );
        for prom in [r#"{"op":"metrics","format":"prom"}"#, r#"{"op":"metrics","format":"prometheus"}"#] {
            assert_eq!(parse_line(prom).unwrap(), Op::Metrics { prom: true });
        }
        for bad in [r#"{"op":"metrics","format":"xml"}"#, r#"{"op":"metrics","format":7}"#] {
            assert!(parse_line(bad).is_err(), "{bad}");
        }
        let Op::Run(req) = parse_line(r#"{"experiment":"e2","seed":3}"#).unwrap()
        else {
            panic!("bare object defaults to run");
        };
        assert_eq!(req.experiment, "e2");
        assert_eq!(req.seed, 3);
        let Op::Run(_) = parse_line(r#"{"op":"run","experiment":"e1"}"#).unwrap()
        else {
            panic!("explicit run");
        };
        let Op::Frontier(freq) =
            parse_line(r#"{"op":"frontier","seed":5,"fast":true}"#).unwrap()
        else {
            panic!("frontier op");
        };
        assert_eq!(freq.seed, 5);
        assert!(freq.fast);
        assert!(
            parse_line(r#"{"op":"frontier","experiment":"e2"}"#).is_err(),
            "frontier rejects run-shaped payloads"
        );
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        for line in [
            "",
            "not json",
            "[]",
            r#"{"op":7}"#,
            r#"{"op":"fly"}"#,
            r#"{"op":"run"}"#,
            &format!("{{\"experiment\":\"{}\"}}", "x".repeat(100_000)),
            &format!("{}1{}", "[".repeat(64), "]".repeat(64)),
        ] {
            assert!(parse_line(line).is_err(), "{:.60}", line);
        }
    }

    #[test]
    fn run_header_round_trips_through_parse_header() {
        let outcome = Outcome {
            body: Arc::from("{\n  \"x\": 1\n}"),
            key: "00ff00ff00ff00ff".to_owned(),
            cached: true,
            coalesced: false,
        };
        let line = run_header(&outcome);
        assert!(line.ends_with('\n'));
        let h = parse_header(line.trim_end()).unwrap();
        assert!(h.is_ok());
        assert_eq!(h.key.as_deref(), Some("00ff00ff00ff00ff"));
        assert!(h.cached);
        assert!(!h.coalesced);
        assert_eq!(h.bytes, outcome.body.len());
        assert_eq!(h.error, None);
    }

    #[test]
    fn busy_header_carries_the_retry_hint() {
        let h = parse_header(busy_header("full up", 40).trim_end()).unwrap();
        assert!(!h.is_ok());
        assert_eq!(h.status, "busy");
        assert_eq!(h.error.as_deref(), Some("full up"));
        assert_eq!(h.retry_after_ms, Some(40));
        assert_eq!(h.bytes, 0);
    }

    #[test]
    fn error_and_bodyless_headers_round_trip() {
        let h = parse_header(error_header("busy", "full up").trim_end()).unwrap();
        assert!(!h.is_ok());
        assert_eq!(h.status, "busy");
        assert_eq!(h.error.as_deref(), Some("full up"));
        assert_eq!(h.bytes, 0);
        assert_eq!(h.retry_after_ms, None, "plain error headers carry no hint");

        let h = parse_header(ok_header("ping").trim_end()).unwrap();
        assert!(h.is_ok());
        assert_eq!(h.bytes, 0);

        let h = parse_header(payload_header("stats", 42).trim_end()).unwrap();
        assert!(h.is_ok());
        assert_eq!(h.bytes, 42);
    }

    #[test]
    fn header_lines_are_single_line_compact_json() {
        let outcome = Outcome {
            body: Arc::from("x"),
            key: "k".to_owned(),
            cached: false,
            coalesced: true,
        };
        for line in [
            run_header(&outcome),
            ok_header("ping"),
            payload_header("stats", 9),
            error_header("timeout", "too slow"),
        ] {
            assert_eq!(line.matches('\n').count(), 1);
            assert!(line.ends_with('\n'));
        }
    }
}
