//! Load generator: seeded request mixes, concurrent connections, and
//! the `BENCH_serve.json` snapshot.
//!
//! The request *plan* is a pure function of the configuration: request
//! `i` draws from `SimRng::for_trial(seed, i)`, choosing a hot request
//! (seed drawn from a small pool, so repeats hit the cache) with
//! probability `hot_ratio` and a unique cold request otherwise, plus
//! an experiment from the configured set. Same config → same plan,
//! byte for byte — which is why the snapshot's `mix` section (hot and
//! cold counts, distinct canonical keys) is *exact-compared* by the
//! regression gate while the measured `run` section (latency, hit
//! counts, throughput) is only structurally compared: scheduling
//! decides who hits and who coalesces, the seed decides what is asked.
//!
//! Execution fans the plan out round-robin over `conns` concurrent
//! connections, one thread per connection, each recording latencies in
//! a local [`LogHistogram`] that is merged at the end. `busy`
//! responses are counted, not retried — the point of the bench is to
//! observe the server shedding load, not to hide it.

use crate::client::{Backoff, Client};
use crate::request::Request;
use sim_observe::timeseries::{SloPolicy, SloTracker};
use sim_observe::{Json, LogHistogram};
use sim_runtime::{Rng, SimRng};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::Instant;

/// Schema marker for `BENCH_serve.json`.
pub const BENCH_SCHEMA: &str = "vlsi-sync/serve-bench";
/// Schema version for `BENCH_serve.json`. v2 added the SLO section
/// (`config.slo` policy, `run.slo` attainment/p999/per-op breakdown).
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Cold requests use seeds starting here so they can never collide
/// with the hot pool (`1..=hot_keys`).
const COLD_SEED_BASE: u64 = 1_000_000;

/// Load-generation parameters; everything here is part of the
/// deterministic plan and lands in the snapshot's `config` section.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent connections (threads).
    pub conns: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Probability a request is drawn from the hot pool.
    pub hot_ratio: f64,
    /// Size of the hot seed pool.
    pub hot_keys: u64,
    /// Experiments to mix over (registry names).
    pub experiments: Vec<String>,
    /// Root seed of the plan.
    pub seed: u64,
    /// `trials` override sent with every request.
    pub trials: Option<usize>,
    /// `params.fast` sent with every request.
    pub fast: bool,
    /// SLO budgets the run is scored against (part of the
    /// deterministic config; the scores themselves are measured).
    pub slo: SloPolicy,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            conns: 8,
            requests: 64,
            hot_ratio: 0.75,
            hot_keys: 4,
            experiments: vec!["e2".to_owned(), "e3".to_owned()],
            seed: 1,
            trials: Some(2),
            fast: true,
            slo: SloPolicy::default(),
        }
    }
}

/// Deterministic summary of a plan: how many hot/cold requests and
/// how many distinct canonical keys they address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixSummary {
    /// Requests drawn from the hot pool.
    pub hot: u64,
    /// Unique cold requests.
    pub cold: u64,
    /// Distinct canonical request keys in the plan.
    pub distinct_keys: u64,
}

/// Builds the deterministic request plan for `cfg`.
///
/// # Panics
///
/// Panics if `cfg.experiments` is empty or `cfg.hot_keys` is zero.
#[must_use]
pub fn plan(cfg: &LoadgenConfig) -> Vec<Request> {
    assert!(!cfg.experiments.is_empty(), "loadgen needs at least one experiment");
    assert!(cfg.hot_keys > 0, "loadgen needs a non-empty hot pool");
    (0..cfg.requests)
        .map(|i| {
            let mut rng = SimRng::for_trial(cfg.seed, i as u64);
            let hot = rng.gen_bool(cfg.hot_ratio);
            let seed = if hot {
                1 + rng.gen_u64_below(cfg.hot_keys)
            } else {
                COLD_SEED_BASE + i as u64
            };
            let name =
                &cfg.experiments[rng.gen_u64_below(cfg.experiments.len() as u64) as usize];
            let mut req = Request::new(name);
            req.seed = seed;
            req.trials = cfg.trials;
            req.fast = cfg.fast;
            req
        })
        .collect()
}

/// Summarizes a plan (pure; exact-compared by the regression gate).
#[must_use]
pub fn summarize(plan: &[Request]) -> MixSummary {
    let mut hot = 0;
    let mut distinct: HashSet<String> = HashSet::new();
    for req in plan {
        if req.seed < COLD_SEED_BASE {
            hot += 1;
        }
        distinct.insert(req.canonical());
    }
    MixSummary {
        hot,
        cold: plan.len() as u64 - hot,
        distinct_keys: distinct.len() as u64,
    }
}

/// One experiment's slice of the measured results (the `run.slo.per_op`
/// breakdown).
#[derive(Debug, Clone)]
pub struct PerOpResult {
    /// Experiment name (from [`LoadgenConfig::experiments`]).
    pub name: String,
    /// Latency of this experiment's requests, nanoseconds.
    pub latency: LogHistogram,
    /// SLO accounting over this experiment's requests.
    pub slo: SloTracker,
}

/// Everything measured while executing a plan (volatile).
#[derive(Debug)]
pub struct LoadResult {
    /// Wall-clock of the whole run in milliseconds.
    pub wall_ms: f64,
    /// Successful responses.
    pub ok: u64,
    /// Successful responses served from the cache.
    pub cache_hits: u64,
    /// Successful responses that coalesced onto another run.
    pub coalesced: u64,
    /// Structured `busy` rejections.
    pub busy: u64,
    /// Anything else (I/O failures, non-ok statuses).
    pub errors: u64,
    /// Per-request latency in nanoseconds.
    pub latency: LogHistogram,
    /// SLO accounting over every request.
    pub slo: SloTracker,
    /// Per-experiment breakdown, in [`LoadgenConfig::experiments`]
    /// order (deterministic keys; measured values).
    pub per_op: Vec<PerOpResult>,
}

impl LoadResult {
    /// An empty result shell accounting against `cfg`'s SLO policy.
    #[must_use]
    pub fn new(cfg: &LoadgenConfig) -> Self {
        LoadResult {
            wall_ms: 0.0,
            ok: 0,
            cache_hits: 0,
            coalesced: 0,
            busy: 0,
            errors: 0,
            latency: LogHistogram::new(),
            slo: SloTracker::new(cfg.slo),
            per_op: cfg
                .experiments
                .iter()
                .map(|name| PerOpResult {
                    name: name.clone(),
                    latency: LogHistogram::new(),
                    slo: SloTracker::new(cfg.slo),
                })
                .collect(),
        }
    }
}

/// Executes `plan` against `addr` over `cfg.conns` connections.
///
/// # Errors
///
/// Fails only when a connection cannot be *established*; per-request
/// failures are tallied in [`LoadResult::errors`].
pub fn run(addr: SocketAddr, cfg: &LoadgenConfig, plan: &[Request]) -> Result<LoadResult, String> {
    let conns = cfg.conns.max(1);
    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..conns {
        // Each request carries its experiment's index into
        // `cfg.experiments` so the per-op breakdown can attribute it.
        let mine: Vec<(usize, String)> = plan
            .iter()
            .enumerate()
            .filter(|(i, _)| i % conns == c)
            .map(|(_, req)| {
                let op = cfg
                    .experiments
                    .iter()
                    .position(|e| *e == req.experiment)
                    .expect("plan only draws from the configured experiments");
                (op, request_line(req))
            })
            .collect();
        let cfg = cfg.clone();
        workers.push(std::thread::spawn(move || drive_connection(addr, &cfg, &mine)));
    }
    let mut total = LoadResult::new(cfg);
    let mut connect_failures = Vec::new();
    for w in workers {
        match w.join().expect("loadgen connection thread must not panic") {
            Ok(part) => {
                total.ok += part.ok;
                total.cache_hits += part.cache_hits;
                total.coalesced += part.coalesced;
                total.busy += part.busy;
                total.errors += part.errors;
                total.latency.merge(&part.latency);
                total.slo.merge(&part.slo);
                for (mine, theirs) in total.per_op.iter_mut().zip(&part.per_op) {
                    mine.latency.merge(&theirs.latency);
                    mine.slo.merge(&theirs.slo);
                }
            }
            Err(e) => connect_failures.push(e),
        }
    }
    if !connect_failures.is_empty() {
        return Err(format!(
            "{} connection(s) failed: {}",
            connect_failures.len(),
            connect_failures.join("; ")
        ));
    }
    total.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok(total)
}

/// The wire line for one planned request (compact, no `op`: `run` is
/// the default).
#[must_use]
pub fn request_line(req: &Request) -> String {
    Json::obj(vec![
        ("experiment", Json::from(req.experiment.as_str())),
        ("seed", Json::UInt(req.seed)),
        (
            "trials",
            req.trials.map_or(Json::Null, |t| Json::UInt(t as u64)),
        ),
        ("params", Json::obj(vec![("fast", Json::Bool(req.fast))])),
    ])
    .to_compact()
}

fn drive_connection(
    addr: SocketAddr,
    cfg: &LoadgenConfig,
    lines: &[(usize, String)],
) -> Result<LoadResult, String> {
    // Retry startup races (the server may not be listening yet) on
    // the deterministic default schedule; once connected, requests
    // run without retry so busy/error counts reflect the server's
    // actual responses.
    let mut client = Client::connect_with_retry(addr, &Backoff::default())
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let mut out = LoadResult::new(cfg);
    for (op, line) in lines {
        let t0 = Instant::now();
        let ok = match client.roundtrip(line) {
            Ok((header, _body)) if header.is_ok() => {
                out.ok += 1;
                out.cache_hits += u64::from(header.cached);
                out.coalesced += u64::from(header.coalesced);
                true
            }
            Ok((header, _)) if header.status == "busy" => {
                out.busy += 1;
                false
            }
            Ok(_) | Err(_) => {
                out.errors += 1;
                false
            }
        };
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        out.latency.record(ns);
        out.slo.record(ns, ok);
        out.per_op[*op].latency.record(ns);
        out.per_op[*op].slo.record(ns, ok);
    }
    Ok(out)
}

/// Renders the `BENCH_serve.json` snapshot: a deterministic `config` +
/// `mix` prefix (exact-compared) and a volatile top-level `run`
/// section (structurally compared), the same split every experiment
/// snapshot uses.
#[must_use]
pub fn bench_json(cfg: &LoadgenConfig, mix: &MixSummary, result: &LoadResult) -> Json {
    let secs = (result.wall_ms / 1e3).max(1e-9);
    Json::obj(vec![
        ("schema", Json::from(BENCH_SCHEMA)),
        ("schema_version", Json::UInt(BENCH_SCHEMA_VERSION)),
        ("bench", Json::from("serve")),
        (
            "config",
            Json::obj(vec![
                ("conns", Json::from(cfg.conns)),
                ("requests", Json::from(cfg.requests)),
                ("hot_ratio", Json::Float(cfg.hot_ratio)),
                ("hot_keys", Json::UInt(cfg.hot_keys)),
                (
                    "experiments",
                    Json::Array(
                        cfg.experiments
                            .iter()
                            .map(|e| Json::from(e.as_str()))
                            .collect(),
                    ),
                ),
                ("seed", Json::UInt(cfg.seed)),
                (
                    "trials",
                    cfg.trials.map_or(Json::Null, |t| Json::UInt(t as u64)),
                ),
                ("fast", Json::Bool(cfg.fast)),
                ("slo", cfg.slo.to_json()),
            ]),
        ),
        (
            "mix",
            Json::obj(vec![
                ("hot", Json::UInt(mix.hot)),
                ("cold", Json::UInt(mix.cold)),
                ("distinct_keys", Json::UInt(mix.distinct_keys)),
            ]),
        ),
        (
            "run",
            Json::obj(vec![
                ("wall_ms", Json::Float(result.wall_ms)),
                ("requests_per_sec", Json::Float(result.ok as f64 / secs)),
                ("ok", Json::UInt(result.ok)),
                ("cache_hits", Json::UInt(result.cache_hits)),
                ("coalesced", Json::UInt(result.coalesced)),
                ("busy", Json::UInt(result.busy)),
                ("errors", Json::UInt(result.errors)),
                ("latency_ns", result.latency.to_json()),
                ("slo", slo_section(result)),
            ]),
        ),
    ])
}

/// The `run.slo` section: overall attainment/burn state, the tail
/// latency SLOs are written against, and a per-experiment breakdown.
/// Keys are deterministic (the experiment set is configuration); every
/// value is measured.
fn slo_section(result: &LoadResult) -> Json {
    let per_op = result
        .per_op
        .iter()
        .map(|op| {
            (
                op.name.clone(),
                Json::obj(vec![
                    ("latency_ns", op.latency.to_json()),
                    ("slo", op.slo.to_json()),
                ]),
            )
        })
        .collect();
    Json::obj(vec![
        ("overall", result.slo.to_json()),
        (
            "p999_ns",
            result.latency.p999().map_or(Json::Null, Json::UInt),
        ),
        ("per_op", Json::Object(per_op)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let cfg = LoadgenConfig::default();
        let a = plan(&cfg);
        let b = plan(&cfg);
        assert_eq!(a, b, "same config must give the same plan");
        let shifted = LoadgenConfig { seed: 2, ..cfg };
        let c = plan(&shifted);
        assert_ne!(
            a.iter().map(Request::canonical).collect::<Vec<_>>(),
            c.iter().map(Request::canonical).collect::<Vec<_>>(),
            "a different seed must reshuffle the mix"
        );
    }

    #[test]
    fn mix_summary_matches_the_plan_structure() {
        let cfg = LoadgenConfig {
            requests: 200,
            hot_ratio: 0.8,
            hot_keys: 3,
            ..LoadgenConfig::default()
        };
        let p = plan(&cfg);
        let mix = summarize(&p);
        assert_eq!(mix.hot + mix.cold, 200);
        // 80% hot over 200 draws lands well inside [100, 200).
        assert!(mix.hot > 100, "hot={}", mix.hot);
        // Distinct keys: at most hot_keys x experiments hot variants
        // plus one per cold request.
        assert!(mix.distinct_keys <= 3 * 2 + mix.cold);
        assert!(mix.distinct_keys >= mix.cold);
        // Hot requests draw only from the pool; colds are unique.
        let mut cold_seeds = HashSet::new();
        for req in &p {
            if req.seed < COLD_SEED_BASE {
                assert!((1..=3).contains(&req.seed));
            } else {
                assert!(cold_seeds.insert(req.seed), "cold seeds never repeat");
            }
        }
    }

    #[test]
    fn all_hot_and_all_cold_extremes() {
        let all_hot = plan(&LoadgenConfig {
            hot_ratio: 1.0,
            requests: 50,
            ..LoadgenConfig::default()
        });
        assert_eq!(summarize(&all_hot).cold, 0);
        let all_cold = plan(&LoadgenConfig {
            hot_ratio: 0.0,
            requests: 50,
            ..LoadgenConfig::default()
        });
        let mix = summarize(&all_cold);
        assert_eq!(mix.hot, 0);
        assert_eq!(mix.distinct_keys, 50, "every cold request is unique");
    }

    #[test]
    fn request_lines_parse_back_to_the_same_request() {
        let cfg = LoadgenConfig::default();
        for req in plan(&cfg).iter().take(8) {
            let line = request_line(req);
            let doc = sim_observe::parse(&line).expect("line is valid JSON");
            let back = Request::from_json(&doc).expect("line is a valid request");
            assert_eq!(&back, req);
        }
    }

    #[test]
    fn bench_json_has_the_report_split() {
        let cfg = LoadgenConfig::default();
        let mix = summarize(&plan(&cfg));
        let mut result = LoadResult::new(&cfg);
        result.wall_ms = 12.5;
        result.ok = 60;
        result.cache_hits = 40;
        result.coalesced = 3;
        result.busy = 4;
        result.latency.record(1_000);
        result.latency.record(2_000_000);
        result.slo.record(1_000, true);
        result.slo.record(2_000_000, true);
        result.per_op[0].latency.record(1_000);
        result.per_op[0].slo.record(1_000, true);
        let doc = bench_json(&cfg, &mix, &result);
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(BENCH_SCHEMA));
        assert_eq!(
            doc.get("schema_version"),
            Some(&Json::UInt(2)),
            "the SLO section is a schema bump"
        );
        for section in ["config", "mix", "run"] {
            assert!(doc.get(section).is_some(), "missing {section}");
        }
        assert!(
            doc.get("config").unwrap().get("slo").is_some(),
            "the SLO policy is deterministic config"
        );
        let run = doc.get("run").unwrap();
        for field in
            ["wall_ms", "requests_per_sec", "ok", "cache_hits", "coalesced", "busy", "errors", "latency_ns", "slo"]
        {
            assert!(run.get(field).is_some(), "missing run.{field}");
        }
        let slo = run.get("slo").unwrap();
        assert!(slo.get("overall").and_then(|o| o.get("attainment")).is_some());
        assert_eq!(slo.get("p999_ns"), Some(&Json::UInt(2_000_000)));
        let per_op = slo.get("per_op").unwrap();
        for name in ["e2", "e3"] {
            assert!(per_op.get(name).is_some(), "missing per_op.{name}");
        }
        // The deterministic prefix re-renders identically.
        let again = bench_json(&cfg, &mix, &result);
        assert_eq!(doc.to_pretty(), again.to_pretty());
    }

    #[test]
    fn per_op_breakdown_covers_the_whole_plan() {
        // Attribution is pure bookkeeping over the plan: every request
        // lands in exactly one per-op bucket, so bucket totals must
        // sum to the plan length whatever the mix.
        let cfg = LoadgenConfig {
            requests: 40,
            ..LoadgenConfig::default()
        };
        let p = plan(&cfg);
        let mut result = LoadResult::new(&cfg);
        for req in &p {
            let op = cfg
                .experiments
                .iter()
                .position(|e| *e == req.experiment)
                .expect("plan draws from configured experiments");
            result.per_op[op].slo.record(1_000, true);
            result.slo.record(1_000, true);
        }
        let total: u64 = result.per_op.iter().map(|o| o.slo.total()).sum();
        assert_eq!(total, 40);
        assert_eq!(result.slo.total(), 40);
        assert!(result.slo.healthy(), "all-fast all-ok traffic meets any default SLO");
    }
}
