//! Bounded worker pool with structured overload rejection.
//!
//! A fixed set of worker threads pulls jobs off a
//! [`std::sync::mpsc::sync_channel`] whose capacity is the submission
//! queue bound. Submission uses `try_send`: when every worker is busy
//! and the queue is full the caller gets [`SubmitError::Busy`]
//! *immediately* instead of blocking — the server turns that into the
//! structured `busy` response, which is how the system sheds load
//! without unbounded memory growth or convoy buildup.
//!
//! Each job runs under `catch_unwind`, so a panicking experiment
//! poisons neither the worker thread nor the pool; the panic is
//! counted and the worker moves on. (The engine layer additionally
//! catches panics itself so it can report them to the waiting client —
//! the pool's catch is the backstop that keeps the thread alive.)
//!
//! [`Pool::shutdown`] closes the channel and joins every worker, which
//! by `mpsc` semantics first drains all already-queued jobs — this is
//! the mechanism behind the server's graceful drain.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of work: any `FnOnce` closure, sent to a worker thread.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Workers and queue are both full — shed load now, retry later.
    Busy,
    /// The pool is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy => write!(f, "worker pool and queue are full"),
            SubmitError::ShuttingDown => write!(f, "worker pool is shutting down"),
        }
    }
}

/// Monotonic pool counters (all `Relaxed`: they are reporting, not
/// synchronization).
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    rejected_busy: AtomicU64,
    completed: AtomicU64,
    panicked: AtomicU64,
}

/// A point-in-time copy of the pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs accepted onto the queue.
    pub submitted: u64,
    /// Submissions rejected with [`SubmitError::Busy`].
    pub rejected_busy: u64,
    /// Jobs that ran to completion (including ones that panicked).
    pub completed: u64,
    /// Jobs whose closure panicked (caught; worker survived).
    pub panicked: u64,
}

/// The bounded worker pool.
#[derive(Debug)]
pub struct Pool {
    /// `None` once shutdown has begun.
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
}

impl Pool {
    /// Spawns `workers` threads sharing a submission queue of
    /// `queue_cap` slots. Both are clamped to at least 1.
    #[must_use]
    pub fn new(workers: usize, queue_cap: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = sync_channel::<Job>(queue_cap.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let counters = Arc::new(Counters::default());
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let counters = Arc::clone(&counters);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &counters))
                    .expect("spawning a worker thread")
            })
            .collect();
        Pool { tx: Some(tx), workers: handles, counters }
    }

    /// Offers a job without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the queue is full,
    /// [`SubmitError::ShuttingDown`] after [`Pool::shutdown`] began.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        let Some(tx) = &self.tx else {
            return Err(SubmitError::ShuttingDown);
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Busy)
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            rejected_busy: self.counters.rejected_busy.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            panicked: self.counters.panicked.load(Ordering::Relaxed),
        }
    }

    /// Closes the queue and joins every worker. Already-queued jobs
    /// are drained first (mpsc keeps the buffer readable after the
    /// sender drops), so this is a graceful drain, not an abort.
    pub fn shutdown(&mut self) {
        self.tx = None; // dropping the sender closes the channel
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, counters: &Counters) {
    loop {
        // Hold the receiver lock only for the dequeue itself, never
        // while a job runs, so workers pull concurrently.
        let job = {
            let guard = rx.lock().expect("receiver mutex");
            guard.recv()
        };
        let Ok(job) = job else { return }; // channel closed: drain done
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            counters.panicked.fetch_add(1, Ordering::Relaxed);
        }
        counters.completed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_complete() {
        let pool = Pool::new(2, 4);
        let ran = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = channel();
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            let done = done_tx.clone();
            // Small queue + blocking submit loop: retry on Busy.
            loop {
                let ran2 = Arc::clone(&ran);
                let done2 = done.clone();
                match pool.try_submit(Box::new(move || {
                    ran2.fetch_add(1, Ordering::SeqCst);
                    let _ = done2.send(());
                })) {
                    Ok(()) => break,
                    Err(SubmitError::Busy) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
        }
        for _ in 0..8 {
            done_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("all jobs complete");
        }
        assert_eq!(ran.load(Ordering::SeqCst), 8);
        assert_eq!(pool.stats().submitted, 8);
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        let pool = Pool::new(1, 1);
        let (gate_tx, gate_rx) = channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        // One worker + one queue slot = at most 2 gated jobs in the
        // system (1 if the worker has not dequeued the first yet);
        // keep offering jobs that block on the gate until the pool
        // must say Busy.
        let mut accepted = 0;
        let mut saw_busy = false;
        for _ in 0..1000 {
            let g = Arc::clone(&gate_rx);
            match pool.try_submit(Box::new(move || {
                let _ = g.lock().unwrap().recv();
            })) {
                Ok(()) => accepted += 1,
                Err(SubmitError::Busy) => {
                    saw_busy = true;
                    break;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(saw_busy, "a saturated pool must reject with Busy");
        assert!(
            (1..=2).contains(&accepted),
            "1 worker + 1 slot accepted {accepted} blocking jobs"
        );
        assert!(pool.stats().rejected_busy >= 1);
        // Release the gated jobs so shutdown drains cleanly.
        drop(gate_tx);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = Pool::new(1, 4);
        let (done_tx, done_rx) = channel();
        pool.try_submit(Box::new(|| panic!("experiment exploded")))
            .expect("submit");
        let done2 = done_tx.clone();
        pool.try_submit(Box::new(move || {
            let _ = done2.send(());
        }))
        .expect("submit after panic");
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("the worker survived the panic and ran the next job");
        assert_eq!(pool.stats().panicked, 1);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let mut pool = Pool::new(1, 8);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let ran = Arc::clone(&ran);
            loop {
                let r = Arc::clone(&ran);
                match pool.try_submit(Box::new(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    r.fetch_add(1, Ordering::SeqCst);
                })) {
                    Ok(()) => break,
                    Err(SubmitError::Busy) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 5, "drain runs queued work");
        assert!(matches!(
            pool.try_submit(Box::new(|| {})),
            Err(SubmitError::ShuttingDown)
        ));
    }
}
