//! A small blocking client for the serve protocol, shared by the
//! load generator, the smoke script (via `sim_loadgen`), and the
//! server's own tests.
//!
//! One [`Client`] owns one TCP connection and drives strict
//! request/response cycles: write a line, read the header line, read
//! exactly `header.bytes` body bytes. Response bodies are not
//! line-framed, so the client buffers raw bytes and slices frames out
//! by count — the only place a newline is structural is the header.
//!
//! # Bounded retry
//!
//! Two failure classes are transient by construction and safe to
//! retry (every serve op is idempotent — responses are content-keyed
//! and cached):
//!
//! * **connect refused** — the server isn't listening *yet* (startup
//!   races in scripts and tests);
//! * **partial read / connection closed** — the peer died mid-frame;
//!   the connection is useless, so the client reconnects and replays
//!   the request;
//! * **`busy` refusals** — the server shed load and said when to come
//!   back (`retry_after_ms`); the connection stays healthy.
//!
//! [`Backoff`] makes the retry schedule bounded and *deterministic*:
//! exponential doubling from a fixed base, capped, no jitter — two
//! processes with the same policy wait the same schedule.

use crate::proto::{parse_header, Header, BUSY_RETRY_AFTER_MS};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default per-read timeout: generous enough for a cold experiment
/// run, finite so a wedged server cannot hang a client forever.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(120);

/// A bounded, deterministic retry schedule: attempt `i` (0-based)
/// sleeps `min(base << i, cap)` before retrying. No jitter — the
/// schedule is a pure function of the policy, so test runs and paired
/// processes behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Total attempts (the first try included). 1 disables retry.
    pub attempts: u32,
    /// Sleep before the first retry.
    pub base: Duration,
    /// Upper bound on any single sleep.
    pub cap: Duration,
}

impl Default for Backoff {
    /// Four attempts, 10 ms doubling to a 200 ms cap — bounded well
    /// under a second in total.
    fn default() -> Self {
        Backoff {
            attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        }
    }
}

impl Backoff {
    /// The deterministic sleep before retry `attempt` (0-based).
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// Whether a roundtrip error means the *connection* failed (retryable
/// after a reconnect) rather than the protocol (not retryable).
fn is_connection_error(msg: &str) -> bool {
    msg.starts_with("write failed")
        || msg.starts_with("read failed")
        || msg == "server closed the connection"
}

/// A blocking protocol client over one connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// The resolved peer, kept for reconnect-and-replay.
    addr: SocketAddr,
    /// Bytes received but not yet consumed (tail of a read that
    /// crossed a frame boundary).
    buf: Vec<u8>,
}

impl Client {
    /// Connects and configures timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connection/setup failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(Client { stream, addr, buf: Vec::new() })
    }

    /// Connects like [`connect`](Self::connect), retrying
    /// connection-refused (the server isn't listening yet) on the
    /// `backoff` schedule. Other errors fail immediately.
    ///
    /// # Errors
    ///
    /// The last connect error once the attempt budget is spent.
    pub fn connect_with_retry<A: ToSocketAddrs + Copy>(
        addr: A,
        backoff: &Backoff,
    ) -> std::io::Result<Client> {
        let mut attempt = 0;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e)
                    if e.kind() == ErrorKind::ConnectionRefused
                        && attempt + 1 < backoff.attempts =>
                {
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Drops the broken connection and dials the same peer again,
    /// discarding any partial frame.
    fn reconnect(&mut self) -> Result<(), String> {
        let fresh = Client::connect(self.addr)
            .map_err(|e| format!("reconnect {}: {e}", self.addr))?;
        self.stream = fresh.stream;
        self.buf.clear();
        Ok(())
    }

    /// [`roundtrip`](Self::roundtrip) with bounded retry: reconnects
    /// and replays on connection-level failures (refused, partial
    /// read, peer close), and honours the server's `retry_after_ms`
    /// hint on `busy` refusals (falling back to the protocol default
    /// when a hint is absent). Protocol errors — unparsable headers,
    /// non-UTF-8 bodies — are not retried.
    ///
    /// Returns the last `busy` response when the budget runs out
    /// while the server keeps shedding load, so callers can still
    /// count structured refusals.
    ///
    /// # Errors
    ///
    /// The last connection error once the attempt budget is spent, or
    /// any protocol error immediately.
    pub fn roundtrip_with_retry(
        &mut self,
        line: &str,
        backoff: &Backoff,
    ) -> Result<(Header, String), String> {
        let mut attempt = 0;
        loop {
            let last_try = attempt + 1 >= backoff.attempts;
            match self.roundtrip(line) {
                Ok((header, _body)) if header.status == "busy" && !last_try => {
                    let hint = header.retry_after_ms.unwrap_or(BUSY_RETRY_AFTER_MS);
                    std::thread::sleep(Duration::from_millis(hint));
                }
                Ok(response) => return Ok(response),
                Err(msg) if is_connection_error(&msg) && !last_try => {
                    std::thread::sleep(backoff.delay(attempt));
                    self.reconnect()?;
                }
                Err(msg) => return Err(msg),
            }
            attempt += 1;
        }
    }

    /// Sends one request line and reads the full response.
    ///
    /// Returns the parsed header and the body (empty string when the
    /// header carries no `bytes`).
    ///
    /// # Errors
    ///
    /// A message on I/O failure, connection close, or an unparsable
    /// header.
    pub fn roundtrip(&mut self, line: &str) -> Result<(Header, String), String> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .map_err(|e| format!("write failed: {e}"))?;
        let header_line = self.read_line()?;
        let header = parse_header(header_line.trim_end())?;
        let body = if header.bytes > 0 {
            let raw = self.read_exact_bytes(header.bytes)?;
            String::from_utf8(raw).map_err(|_| "body is not UTF-8".to_owned())?
        } else {
            String::new()
        };
        Ok((header, body))
    }

    fn fill(&mut self) -> Result<(), String> {
        let mut chunk = [0u8; 8192];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err("server closed the connection".to_owned()),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("read failed: {e}")),
            }
        }
    }

    fn read_line(&mut self) -> Result<String, String> {
        loop {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=nl).collect();
                return String::from_utf8(line)
                    .map_err(|_| "header is not UTF-8".to_owned());
            }
            self.fill()?;
        }
    }

    fn read_exact_bytes(&mut self, n: usize) -> Result<Vec<u8>, String> {
        while self.buf.len() < n {
            self.fill()?;
        }
        Ok(self.buf.drain(..n).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let b = Backoff {
            attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(60),
        };
        let delays: Vec<u64> = (0..5).map(|i| b.delay(i).as_millis() as u64).collect();
        assert_eq!(delays, vec![10, 20, 40, 60, 60], "doubles, then caps");
        // A second policy with the same fields waits the same schedule.
        assert_eq!(b.delay(3), b.delay(3));
        // Huge attempt indices neither overflow nor exceed the cap.
        assert_eq!(b.delay(63), Duration::from_millis(60));
    }

    #[test]
    fn connect_retry_gives_up_after_the_attempt_budget() {
        // Bind then drop: the port existed but nobody is listening.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let b = Backoff {
            attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
        };
        let err = Client::connect_with_retry(addr, &b).expect_err("no listener");
        assert_eq!(err.kind(), ErrorKind::ConnectionRefused);
    }

    #[test]
    fn partial_read_reconnects_and_replays() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // First connection: answer with a truncated header, then
            // slam the connection shut mid-frame.
            {
                let (stream, _) = listener.accept().expect("accept 1");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut line = String::new();
                reader.read_line(&mut line).expect("request 1");
                let mut w = stream;
                w.write_all(b"{\"status\":\"ok\",\"op\"").expect("partial write");
            }
            // Second connection (the client's replay): full response.
            let (stream, _) = listener.accept().expect("accept 2");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("request 2");
            let mut w = stream;
            w.write_all(b"{\"status\":\"ok\",\"op\":\"ping\"}\n")
                .expect("full write");
            line
        });
        let b = Backoff {
            attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
        };
        let mut client = Client::connect(addr).expect("connect");
        let (header, body) = client
            .roundtrip_with_retry("{\"op\":\"ping\"}", &b)
            .expect("retry succeeds after reconnect");
        assert!(header.is_ok());
        assert!(body.is_empty());
        let replayed = server.join().expect("server thread");
        assert_eq!(replayed.trim_end(), "{\"op\":\"ping\"}", "the request was replayed verbatim");
    }

    #[test]
    fn busy_responses_honour_the_hint_then_surface() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut w = stream;
            // Shed the first request with a 1 ms hint, serve the
            // retry on the same connection.
            let mut line = String::new();
            reader.read_line(&mut line).expect("request 1");
            w.write_all(crate::proto::busy_header("full", 1).as_bytes())
                .expect("busy");
            line.clear();
            reader.read_line(&mut line).expect("request 2");
            w.write_all(b"{\"status\":\"ok\",\"op\":\"ping\"}\n").expect("ok");
        });
        let b = Backoff {
            attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
        };
        let mut client = Client::connect(addr).expect("connect");
        let (header, _) = client
            .roundtrip_with_retry("{\"op\":\"ping\"}", &b)
            .expect("retry after busy");
        assert!(header.is_ok(), "the post-hint retry got the real answer");
        server.join().expect("server thread");
    }
}
