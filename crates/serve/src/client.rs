//! A small blocking client for the serve protocol, shared by the
//! load generator, the smoke script (via `sim_loadgen`), and the
//! server's own tests.
//!
//! One [`Client`] owns one TCP connection and drives strict
//! request/response cycles: write a line, read the header line, read
//! exactly `header.bytes` body bytes. Response bodies are not
//! line-framed, so the client buffers raw bytes and slices frames out
//! by count — the only place a newline is structural is the header.

use crate::proto::{parse_header, Header};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default per-read timeout: generous enough for a cold experiment
/// run, finite so a wedged server cannot hang a client forever.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(120);

/// A blocking protocol client over one connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Bytes received but not yet consumed (tail of a read that
    /// crossed a frame boundary).
    buf: Vec<u8>,
}

impl Client {
    /// Connects and configures timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connection/setup failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, buf: Vec::new() })
    }

    /// Sends one request line and reads the full response.
    ///
    /// Returns the parsed header and the body (empty string when the
    /// header carries no `bytes`).
    ///
    /// # Errors
    ///
    /// A message on I/O failure, connection close, or an unparsable
    /// header.
    pub fn roundtrip(&mut self, line: &str) -> Result<(Header, String), String> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .map_err(|e| format!("write failed: {e}"))?;
        let header_line = self.read_line()?;
        let header = parse_header(header_line.trim_end())?;
        let body = if header.bytes > 0 {
            let raw = self.read_exact_bytes(header.bytes)?;
            String::from_utf8(raw).map_err(|_| "body is not UTF-8".to_owned())?
        } else {
            String::new()
        };
        Ok((header, body))
    }

    fn fill(&mut self) -> Result<(), String> {
        let mut chunk = [0u8; 8192];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err("server closed the connection".to_owned()),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("read failed: {e}")),
            }
        }
    }

    fn read_line(&mut self) -> Result<String, String> {
        loop {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=nl).collect();
                return String::from_utf8(line)
                    .map_err(|_| "header is not UTF-8".to_owned());
            }
            self.fill()?;
        }
    }

    fn read_exact_bytes(&mut self, n: usize) -> Result<Vec<u8>, String> {
        while self.buf.len() < n {
            self.fill()?;
        }
        Ok(self.buf.drain(..n).collect())
    }
}
