//! [`Request`]: the normalized experiment request and its content
//! address.
//!
//! Correctness of the whole serving layer hangs on one property:
//! **semantically identical requests must hash identically**. The
//! cache, the single-flight table, and the hot/cold split of the load
//! generator all key on the canonical form produced here, so
//! normalization happens in exactly one place:
//!
//! * absent fields are default-filled (`seed` 1, `trials` null,
//!   `params.fast` false, `fault_rates` all-defaults), so
//!   `{"experiment":"e2"}` and `{"experiment":"e2","seed":1}` are the
//!   same request;
//! * field order is fixed by [`Request::canonical_json`] regardless of
//!   the order the client sent them in;
//! * unknown fields are rejected rather than ignored — a typo like
//!   `"sead"` must not silently address a different cache entry.
//!
//! The content address is the FNV-1a hash of the canonical bytes. The
//! cache stores full canonical strings and compares them on lookup, so
//! a hash collision can never serve the wrong body — the hex key is a
//! compact handle, not a trusted identity.

use sim_faults::FaultRates;
use sim_observe::Json;
use sim_runtime::ExpConfig;

/// Version of the request wire schema, embedded in the canonical form
/// (bump on any incompatible change — old and new requests must not
/// collide in a shared cache).
pub const REQUEST_SCHEMA_VERSION: u64 = 1;

/// A validated, default-filled experiment request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Registry name of the experiment (`"e1"`…`"e12"`).
    pub experiment: String,
    /// Root RNG seed (default 1, matching the CLI).
    pub seed: u64,
    /// Monte-Carlo trial override; `None` → the experiment default.
    pub trials: Option<usize>,
    /// Reduced-size smoke mode (the CLI's `--fast`).
    pub fast: bool,
    /// Fault-injection rate overrides. Normalized and content-hashed;
    /// the engine currently accepts only the all-default value (e12
    /// sweeps its fault grid internally) and rejects others with a
    /// structured error rather than silently ignoring them.
    pub fault_rates: FaultRates,
}

impl Request {
    /// A request for `experiment` with every other field defaulted.
    #[must_use]
    pub fn new(experiment: &str) -> Self {
        Request {
            experiment: experiment.to_owned(),
            seed: 1,
            trials: None,
            fast: false,
            fault_rates: FaultRates::none(),
        }
    }

    /// Parses and normalizes a request object (the payload of a `run`
    /// op). Ignores the routing field `op`; rejects every other
    /// unknown key.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field on
    /// missing/unknown keys, wrong types, or out-of-range values.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let pairs = doc
            .as_object()
            .ok_or_else(|| "request must be a JSON object".to_owned())?;
        // First pass: the experiment name (required, and needed before
        // the defaults make sense).
        let experiment = pairs
            .iter()
            .find(|(k, _)| k == "experiment")
            .map(|(_, v)| v)
            .ok_or_else(|| "request is missing the `experiment` field".to_owned())?
            .as_str()
            .ok_or_else(|| "`experiment` must be a string".to_owned())?;
        if experiment.is_empty() {
            return Err("`experiment` must be a non-empty string".to_owned());
        }
        let mut req = Request::new(experiment);
        for (key, value) in pairs {
            match key.as_str() {
                "op" | "experiment" => {}
                "seed" => req.seed = uint_field("seed", value)?,
                "trials" => {
                    req.trials = match value {
                        Json::Null => None,
                        _ => {
                            let t = uint_field("trials", value)?;
                            if t == 0 {
                                return Err("`trials` must be at least 1".to_owned());
                            }
                            Some(usize::try_from(t).map_err(|_| {
                                "`trials` exceeds the platform limit".to_owned()
                            })?)
                        }
                    };
                }
                "params" => {
                    let params = value
                        .as_object()
                        .ok_or_else(|| "`params` must be a JSON object".to_owned())?;
                    for (pk, pv) in params {
                        match (pk.as_str(), pv) {
                            ("fast", Json::Bool(b)) => req.fast = *b,
                            ("fast", _) => {
                                return Err("`params.fast` must be a boolean".to_owned())
                            }
                            (other, _) => {
                                return Err(format!(
                                    "unknown params field `{other}` (known: fast)"
                                ))
                            }
                        }
                    }
                }
                "fault_rates" => req.fault_rates = FaultRates::from_json(value)?,
                other => {
                    return Err(format!(
                        "unknown request field `{other}` \
                         (known: experiment, seed, trials, params, fault_rates)"
                    ))
                }
            }
        }
        Ok(req)
    }

    /// The canonical JSON form: schema version first, then every field
    /// in fixed order with defaults filled in. Two requests are the
    /// same cache entry iff these trees serialize to the same bytes.
    #[must_use]
    pub fn canonical_json(&self) -> Json {
        Json::obj(vec![
            ("v", Json::UInt(REQUEST_SCHEMA_VERSION)),
            ("experiment", Json::from(self.experiment.as_str())),
            ("seed", Json::UInt(self.seed)),
            (
                "trials",
                self.trials.map_or(Json::Null, |t| Json::UInt(t as u64)),
            ),
            ("params", Json::obj(vec![("fast", Json::Bool(self.fast))])),
            ("fault_rates", self.fault_rates.to_json()),
        ])
    }

    /// The canonical compact serialization — the cache's true key.
    #[must_use]
    pub fn canonical(&self) -> String {
        self.canonical_json().to_compact()
    }

    /// The content address: FNV-1a 64 over the canonical bytes, as 16
    /// hex digits. Compact handle for logs and response headers; the
    /// cache always verifies the full canonical string.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical().as_bytes()))
    }

    /// The [`ExpConfig`] this request prescribes. `threads` is the
    /// server's per-job parallelism — a *volatile* execution detail
    /// that deliberately does not participate in the canonical form,
    /// because reports are byte-identical across thread counts.
    #[must_use]
    pub fn exp_config(&self, threads: usize) -> ExpConfig {
        ExpConfig {
            trials: self.trials,
            seed: self.seed,
            threads,
            fast: self.fast,
            ..ExpConfig::default()
        }
    }
}

fn uint_field(name: &str, value: &Json) -> Result<u64, String> {
    match value {
        Json::UInt(v) => Ok(*v),
        _ => Err(format!("`{name}` must be a non-negative integer")),
    }
}

/// A validated, default-filled `frontier` request: serve the Pareto
/// frontier of the design-space sweep (scheme × topology × size ×
/// fault-rate) at a given seed and trial count.
///
/// Normalized exactly like [`Request`]: absent fields default-fill
/// (`seed` 1, `trials` null → the server default, `fast` false),
/// unknown fields are rejected, and the canonical form fixes the field
/// order — so the frontier body is cached and single-flighted under
/// the same discipline as experiment reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierRequest {
    /// Root RNG seed of the sweep (default 1).
    pub seed: u64,
    /// Trials per grid point; `None` → [`FrontierRequest::DEFAULT_TRIALS`].
    pub trials: Option<u64>,
    /// Use the reduced fast grid (fewer array sizes).
    pub fast: bool,
}

impl Default for FrontierRequest {
    fn default() -> Self {
        FrontierRequest {
            seed: 1,
            trials: None,
            fast: false,
        }
    }
}

impl FrontierRequest {
    /// Trials per grid point when the request leaves `trials` null.
    pub const DEFAULT_TRIALS: u64 = 40;

    /// Parses and normalizes a `frontier` op payload. Ignores the
    /// routing field `op`; rejects every other unknown key.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field on
    /// unknown keys, wrong types, or zero `trials`.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let pairs = doc
            .as_object()
            .ok_or_else(|| "request must be a JSON object".to_owned())?;
        let mut req = FrontierRequest::default();
        for (key, value) in pairs {
            match key.as_str() {
                "op" => {}
                "seed" => req.seed = uint_field("seed", value)?,
                "trials" => {
                    req.trials = match value {
                        Json::Null => None,
                        _ => {
                            let t = uint_field("trials", value)?;
                            if t == 0 {
                                return Err("`trials` must be at least 1".to_owned());
                            }
                            Some(t)
                        }
                    };
                }
                "fast" => {
                    req.fast = match value {
                        Json::Bool(b) => *b,
                        _ => return Err("`fast` must be a boolean".to_owned()),
                    };
                }
                other => {
                    return Err(format!(
                        "unknown frontier field `{other}` (known: seed, trials, fast)"
                    ))
                }
            }
        }
        Ok(req)
    }

    /// The canonical JSON form; carries the op tag so frontier bodies
    /// can never collide with experiment reports in a shared cache.
    #[must_use]
    pub fn canonical_json(&self) -> Json {
        Json::obj(vec![
            ("v", Json::UInt(REQUEST_SCHEMA_VERSION)),
            ("op", Json::from("frontier")),
            ("seed", Json::UInt(self.seed)),
            ("trials", self.trials.map_or(Json::Null, Json::UInt)),
            ("fast", Json::Bool(self.fast)),
        ])
    }

    /// The canonical compact serialization — the cache's true key.
    #[must_use]
    pub fn canonical(&self) -> String {
        self.canonical_json().to_compact()
    }

    /// The content address: FNV-1a 64 over the canonical bytes, as 16
    /// hex digits.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical().as_bytes()))
    }
}

// The hash itself now lives in sim-observe (manifests and checkpoints
// digest with the same function); re-exported here so existing callers
// of `sim_serve::request::fnv1a64` keep compiling.
pub use sim_observe::fnv1a64;

#[cfg(test)]
mod tests {
    use super::*;
    use sim_observe::json::parse;

    fn req(doc: &str) -> Result<Request, String> {
        Request::from_json(&parse(doc).expect("test doc is valid JSON"))
    }

    #[test]
    fn defaults_fill_and_explicit_defaults_normalize_identically() {
        let minimal = req(r#"{"experiment":"e2"}"#).unwrap();
        let spelled = req(
            r#"{"experiment":"e2","seed":1,"trials":null,
                "params":{"fast":false},"fault_rates":{}}"#,
        )
        .unwrap();
        assert_eq!(minimal, spelled);
        assert_eq!(minimal.canonical(), spelled.canonical());
        assert_eq!(minimal.key(), spelled.key());
    }

    #[test]
    fn field_order_does_not_matter() {
        let a = req(r#"{"experiment":"e3","seed":9,"params":{"fast":true}}"#).unwrap();
        let b = req(r#"{"params":{"fast":true},"seed":9,"experiment":"e3"}"#).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        // And spelling out a fault_rates default changes nothing.
        let c = req(
            r#"{"experiment":"e3","seed":9,"params":{"fast":true},
                "fault_rates":{"gate_stuck":0.0}}"#,
        )
        .unwrap();
        assert_eq!(a.canonical(), c.canonical());
    }

    #[test]
    fn semantically_different_requests_hash_differently() {
        let base = req(r#"{"experiment":"e2","seed":42}"#).unwrap();
        for other in [
            r#"{"experiment":"e2","seed":43}"#,
            r#"{"experiment":"e3","seed":42}"#,
            r#"{"experiment":"e2","seed":42,"trials":5}"#,
            r#"{"experiment":"e2","seed":42,"params":{"fast":true}}"#,
            r#"{"experiment":"e2","seed":42,"fault_rates":{"gate_stuck":0.5}}"#,
        ] {
            let o = req(other).unwrap();
            assert_ne!(base.canonical(), o.canonical(), "{other}");
            assert_ne!(base.key(), o.key(), "{other}");
        }
    }

    #[test]
    fn canonical_form_is_stable_bytes() {
        let r = req(r#"{"experiment":"e2","seed":42,"params":{"fast":true}}"#).unwrap();
        assert_eq!(
            r.canonical(),
            r#"{"v":1,"experiment":"e2","seed":42,"trials":null,"params":{"fast":true},"fault_rates":{"gate_stuck":0.0,"gate_transient":0.0,"gate_delay":0.0,"delay_spread":0.5,"buffer_dead":0.0,"buffer_degraded":0.0,"degrade_spread":1.0,"handshake_drop":0.0,"handshake_delay":0.0}}"#
        );
        // The canonical form is a wire format, not a request: its `v`
        // marker is rejected if fed straight back in...
        let err = req(&r.canonical()).unwrap_err();
        assert!(err.contains("unknown request field `v`"), "{err}");
        // ...but with the marker stripped it round-trips to an equal
        // request.
        let back = req(&r.canonical().replace(r#""v":1,"#, "")).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_requests_are_rejected_with_field_names() {
        for (doc, needle) in [
            (r#"{}"#, "missing the `experiment`"),
            (r#"{"experiment":""}"#, "non-empty"),
            (r#"{"experiment":7}"#, "`experiment` must be a string"),
            (r#"{"experiment":"e2","seed":-1}"#, "`seed` must be"),
            (r#"{"experiment":"e2","seed":1.5}"#, "`seed` must be"),
            (r#"{"experiment":"e2","trials":0}"#, "`trials` must be at least 1"),
            (r#"{"experiment":"e2","trials":"many"}"#, "`trials` must be"),
            (r#"{"experiment":"e2","params":{"fast":1}}"#, "`params.fast`"),
            (r#"{"experiment":"e2","params":{"threads":4}}"#, "unknown params field"),
            (r#"{"experiment":"e2","sead":1}"#, "unknown request field `sead`"),
            (r#"{"experiment":"e2","fault_rates":{"x":1}}"#, "unknown fault_rates"),
            (r#"{"experiment":"e2","fault_rates":{"gate_stuck":2.0}}"#, "out of range"),
            (r#"[1]"#, "must be a JSON object"),
        ] {
            let err = req(doc).expect_err(&format!("{doc} must be rejected"));
            assert!(err.contains(needle), "{doc}: got `{err}`");
        }
        // `op` is routing metadata, not an unknown field.
        assert!(req(r#"{"op":"run","experiment":"e2"}"#).is_ok());
    }

    #[test]
    fn exp_config_mirrors_the_request_but_not_threads() {
        let r = req(r#"{"experiment":"e5","seed":7,"trials":12,"params":{"fast":true}}"#)
            .unwrap();
        let cfg = r.exp_config(3);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.trials, Some(12));
        assert!(cfg.fast);
        assert_eq!(cfg.threads, 3);
        // threads is volatile: same canonical form for any value.
        assert_eq!(r.canonical(), r.clone().canonical());
    }

    #[test]
    fn frontier_requests_normalize_and_hash_like_runs() {
        let freq = |doc: &str| {
            FrontierRequest::from_json(&parse(doc).expect("valid test doc"))
        };
        let minimal = freq(r#"{"op":"frontier"}"#).unwrap();
        let spelled = freq(r#"{"op":"frontier","seed":1,"trials":null,"fast":false}"#).unwrap();
        assert_eq!(minimal, spelled);
        assert_eq!(
            minimal.canonical(),
            r#"{"v":1,"op":"frontier","seed":1,"trials":null,"fast":false}"#
        );
        assert_eq!(minimal.key(), spelled.key());
        // Different parameters address different cache entries.
        let other = freq(r#"{"op":"frontier","seed":2}"#).unwrap();
        assert_ne!(minimal.canonical(), other.canonical());
        // And a frontier request never collides with a run request.
        assert!(!minimal.canonical().starts_with(r#"{"v":1,"experiment""#));
        // Malformed payloads name the offending field.
        for (doc, needle) in [
            (r#"{"op":"frontier","trials":0}"#, "at least 1"),
            (r#"{"op":"frontier","fast":1}"#, "`fast` must be a boolean"),
            (r#"{"op":"frontier","experiment":"e2"}"#, "unknown frontier field"),
        ] {
            let err = freq(doc).expect_err(doc);
            assert!(err.contains(needle), "{doc}: got `{err}`");
        }
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        let k = Request::new("e1").key();
        assert_eq!(k.len(), 16);
        assert!(k.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
