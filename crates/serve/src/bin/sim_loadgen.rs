//! `sim_loadgen` — drive a `sim_serve` instance with a seeded request
//! mix and report throughput and latency.
//!
//! ```text
//! sim_loadgen [--addr HOST:PORT] [--conns N] [--requests N]
//!             [--hot-ratio F] [--hot-keys N] [--experiments e2,e3]
//!             [--seed S] [--trials N] [--no-fast] [--json PATH]
//! ```
//!
//! The request plan is a pure function of the flags (see
//! [`sim_serve::loadgen`]): hot requests repeat seeds from a small
//! pool and should hit the server's cache; cold requests are unique
//! and always compute. The run summary goes to stdout; `--json PATH`
//! additionally writes the `BENCH_serve.json` snapshot whose
//! `config`/`mix` sections are deterministic (exact-compared by
//! `bench_regress --compare`) and whose `run` section is volatile.
//!
//! Exits 0 when every request was answered (structured `busy` counts
//! as answered — observing load-shedding is the point), 1 on
//! connection failure or response errors, 2 on usage errors.

use sim_serve::loadgen::{self, LoadgenConfig};
use std::net::{SocketAddr, ToSocketAddrs};

const USAGE: &str = "usage: sim_loadgen [--addr HOST:PORT] [--conns N] [--requests N] \
[--hot-ratio F] [--hot-keys N] [--experiments NAMES] [--seed S] [--trials N] \
[--no-fast] [--json PATH]";

struct Opts {
    addr: String,
    cfg: LoadgenConfig,
    json: Option<String>,
    help: bool,
}

fn parse_opts<I: IntoIterator<Item = String>>(args: I) -> Result<Opts, String> {
    let mut opts = Opts {
        addr: "127.0.0.1:7071".to_owned(),
        cfg: LoadgenConfig::default(),
        json: None,
        help: false,
    };
    let mut it = args.into_iter();
    let value = |name: &str, v: Option<String>| -> Result<String, String> {
        v.ok_or_else(|| format!("{name} needs an argument\n{USAGE}"))
    };
    fn num<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String> {
        raw.parse()
            .map_err(|_| format!("{name} needs a number, got `{raw}`\n{USAGE}"))
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr", it.next())?,
            "--conns" => opts.cfg.conns = num("--conns", &value("--conns", it.next())?)?,
            "--requests" => {
                opts.cfg.requests = num("--requests", &value("--requests", it.next())?)?;
            }
            "--hot-ratio" => {
                let r: f64 = num("--hot-ratio", &value("--hot-ratio", it.next())?)?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("--hot-ratio must be in [0, 1], got {r}\n{USAGE}"));
                }
                opts.cfg.hot_ratio = r;
            }
            "--hot-keys" => {
                opts.cfg.hot_keys = num("--hot-keys", &value("--hot-keys", it.next())?)?;
                if opts.cfg.hot_keys == 0 {
                    return Err(format!("--hot-keys must be at least 1\n{USAGE}"));
                }
            }
            "--experiments" => {
                let list = value("--experiments", it.next())?;
                opts.cfg.experiments =
                    list.split(',').map(|s| s.trim().to_owned()).collect();
                if opts.cfg.experiments.iter().any(String::is_empty) {
                    return Err(format!("--experiments has an empty name\n{USAGE}"));
                }
            }
            "--seed" => opts.cfg.seed = num("--seed", &value("--seed", it.next())?)?,
            "--trials" => {
                let t: usize = num("--trials", &value("--trials", it.next())?)?;
                if t == 0 {
                    return Err(format!("--trials must be at least 1\n{USAGE}"));
                }
                opts.cfg.trials = Some(t);
            }
            "--no-fast" => opts.cfg.fast = false,
            "--json" => opts.json = Some(value("--json", it.next())?),
            "--help" | "-h" => {
                opts.help = true;
                return Ok(opts);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{addr}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{addr}` resolves to no address"))
}

fn main() {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if opts.help {
        println!("{USAGE}");
        return;
    }
    let addr = match resolve(&opts.addr) {
        Ok(addr) => addr,
        Err(msg) => {
            eprintln!("sim_loadgen: {msg}");
            std::process::exit(2);
        }
    };
    let plan = loadgen::plan(&opts.cfg);
    let mix = loadgen::summarize(&plan);
    let result = match loadgen::run(addr, &opts.cfg, &plan) {
        Ok(result) => result,
        Err(msg) => {
            eprintln!("sim_loadgen: {msg}");
            std::process::exit(1);
        }
    };
    let fmt_ns = |q: Option<u64>| {
        q.map_or("-".to_owned(), |ns| format!("{:.2}ms", ns as f64 / 1e6))
    };
    println!(
        "sim_loadgen: {} requests over {} conns in {:.0}ms ({:.0} req/s)",
        opts.cfg.requests,
        opts.cfg.conns,
        result.wall_ms,
        result.ok as f64 / (result.wall_ms / 1e3).max(1e-9),
    );
    println!(
        "  mix: {} hot / {} cold ({} distinct keys)",
        mix.hot, mix.cold, mix.distinct_keys
    );
    println!(
        "  outcomes: ok={} cache_hits={} coalesced={} busy={} errors={}",
        result.ok, result.cache_hits, result.coalesced, result.busy, result.errors
    );
    println!(
        "  latency: p50={} p95={} p99={} p999={} max={}",
        fmt_ns(result.latency.p50()),
        fmt_ns(result.latency.p95()),
        fmt_ns(result.latency.p99()),
        fmt_ns(result.latency.p999()),
        fmt_ns(result.latency.max()),
    );
    println!(
        "  slo: attainment={:.1}% p999={} latency_burn={:.2} error_burn={:.2} healthy={}",
        result.slo.attainment() * 100.0,
        fmt_ns(result.latency.p999()),
        result.slo.latency_burn_rate(),
        result.slo.error_burn_rate(),
        result.slo.healthy(),
    );
    for op in &result.per_op {
        println!(
            "    {}: n={} attainment={:.1}% p999={}",
            op.name,
            op.slo.total(),
            op.slo.attainment() * 100.0,
            fmt_ns(op.latency.p999()),
        );
    }
    if let Some(path) = &opts.json {
        let doc = loadgen::bench_json(&opts.cfg, &mix, &result);
        if let Err(e) = std::fs::write(path, doc.to_pretty()) {
            eprintln!("sim_loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("  snapshot: {path}");
    }
    if result.errors > 0 {
        eprintln!("sim_loadgen: {} request(s) failed", result.errors);
        std::process::exit(1);
    }
}
