//! `sim_serve` — serve experiment reports over TCP.
//!
//! ```text
//! sim_serve [--addr HOST] [--port P] [--workers N] [--queue N]
//!           [--cache-bytes N] [--job-threads N] [--job-timeout-secs N]
//!           [--port-file PATH] [--drain-on-stdin-close] [--no-telemetry]
//! ```
//!
//! Binds `HOST:P` (default `127.0.0.1:7071`; `--port 0` picks an
//! ephemeral port, which `--port-file` writes out for scripts) and
//! serves the full experiment registry until a `shutdown` op — or,
//! with `--drain-on-stdin-close`, until stdin reaches EOF, which is
//! how a supervising script triggers a graceful drain without
//! signals. Draining finishes every accepted job before exiting.
//!
//! `--no-telemetry` turns off the live telemetry plane (the `metrics`
//! op answers `bad_request`, `stats` reports `"slo": null`) and
//! reduces the request path's telemetry cost to a single branch.
//!
//! Exit codes follow the workspace convention: 0 on a clean drain,
//! 1 on runtime failure (bind error), 2 on usage errors; `--help`
//! prints usage on stdout and exits 0.

use sim_serve::{Engine, EngineConfig, Server};
use std::io::Read;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: sim_serve [--addr HOST] [--port P] [--workers N] [--queue N] \
[--cache-bytes N] [--job-threads N] [--job-timeout-secs N] [--port-file PATH] \
[--drain-on-stdin-close] [--no-telemetry]";

struct Opts {
    addr: String,
    port: u16,
    engine: EngineConfig,
    port_file: Option<String>,
    drain_on_stdin_close: bool,
    help: bool,
}

fn parse_opts<I: IntoIterator<Item = String>>(args: I) -> Result<Opts, String> {
    let mut opts = Opts {
        addr: "127.0.0.1".to_owned(),
        port: 7071,
        engine: EngineConfig::default(),
        port_file: None,
        drain_on_stdin_close: false,
        help: false,
    };
    let mut it = args.into_iter();
    let value = |name: &str, v: Option<String>| -> Result<String, String> {
        v.ok_or_else(|| format!("{name} needs an argument\n{USAGE}"))
    };
    fn num<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String> {
        raw.parse()
            .map_err(|_| format!("{name} needs a non-negative integer, got `{raw}`\n{USAGE}"))
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr", it.next())?,
            "--port" => opts.port = num("--port", &value("--port", it.next())?)?,
            "--workers" => {
                opts.engine.workers = num("--workers", &value("--workers", it.next())?)?;
            }
            "--queue" => {
                opts.engine.queue_cap = num("--queue", &value("--queue", it.next())?)?;
            }
            "--cache-bytes" => {
                opts.engine.cache_bytes =
                    num("--cache-bytes", &value("--cache-bytes", it.next())?)?;
            }
            "--job-threads" => {
                opts.engine.job_threads =
                    num("--job-threads", &value("--job-threads", it.next())?)?;
            }
            "--job-timeout-secs" => {
                let secs: u64 = num(
                    "--job-timeout-secs",
                    &value("--job-timeout-secs", it.next())?,
                )?;
                opts.engine.job_timeout =
                    (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--port-file" => opts.port_file = Some(value("--port-file", it.next())?),
            "--drain-on-stdin-close" => opts.drain_on_stdin_close = true,
            "--no-telemetry" => opts.engine.telemetry = false,
            "--help" | "-h" => {
                opts.help = true;
                return Ok(opts);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if opts.help {
        println!("{USAGE}");
        return;
    }
    let engine = Arc::new(Engine::new(Arc::new(bench::registry()), &opts.engine));
    let bind_addr = format!("{}:{}", opts.addr, opts.port);
    let server = match Server::bind(&bind_addr, engine) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sim_serve: cannot bind {bind_addr}: {e}");
            std::process::exit(1);
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("sim_serve: cannot resolve the bound address: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &opts.port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!("sim_serve: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "sim_serve: listening on {addr} ({} workers, queue {}, cache {} bytes, \
         job timeout {}, telemetry {})",
        opts.engine.workers,
        opts.engine.queue_cap,
        opts.engine.cache_bytes,
        opts.engine
            .job_timeout
            .map_or("none".to_owned(), |t| format!("{}s", t.as_secs())),
        if opts.engine.telemetry { "on" } else { "off" },
    );
    if opts.drain_on_stdin_close {
        let stop = server.stop_flag();
        std::thread::Builder::new()
            .name("stdin-watch".to_owned())
            .spawn(move || {
                // Consume stdin until EOF; the supervising script
                // holds the write end open for the server's lifetime.
                let mut sink = [0u8; 1024];
                let mut stdin = std::io::stdin().lock();
                while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
                eprintln!("sim_serve: stdin closed, draining");
                stop.store(true, Ordering::SeqCst);
            })
            .expect("spawning the stdin watcher");
    }
    match server.serve() {
        Ok(()) => eprintln!("sim_serve: drained cleanly"),
        Err(e) => {
            eprintln!("sim_serve: accept loop failed: {e}");
            std::process::exit(1);
        }
    }
}
