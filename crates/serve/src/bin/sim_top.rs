//! `sim_top` — live view of a running `sim_serve` instance.
//!
//! ```text
//! sim_top [--addr HOST:PORT] [--interval-ms N] [--count N] [--once]
//!         [--format table|json|prom]
//! ```
//!
//! Polls the server's `metrics` op and renders a refreshing table of
//! per-op request counts, windowed latency quantiles, SLO state, and
//! the latest gauge samples. `--format json` / `--format prom` print
//! the raw metrics body instead (one document per poll), which is
//! what the smoke scripts scrape.
//!
//! Exits 0 on success, 1 when the server is unreachable or answers
//! with an error (including telemetry-disabled servers), 2 on usage
//! errors.

use sim_observe::{parse_with_limits, Json, ParseLimits};
use sim_serve::{Backoff, Client};
use std::net::{SocketAddr, ToSocketAddrs};

const USAGE: &str = "usage: sim_top [--addr HOST:PORT] [--interval-ms N] [--count N] \
[--once] [--format table|json|prom]";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Table,
    JsonBody,
    Prom,
}

struct Opts {
    addr: String,
    interval_ms: u64,
    /// Number of polls; 0 means poll until interrupted.
    count: u64,
    format: Format,
    help: bool,
}

fn parse_opts<I: IntoIterator<Item = String>>(args: I) -> Result<Opts, String> {
    let mut opts = Opts {
        addr: "127.0.0.1:7071".to_owned(),
        interval_ms: 1_000,
        count: 0,
        format: Format::Table,
        help: false,
    };
    let mut it = args.into_iter();
    let value = |name: &str, v: Option<String>| -> Result<String, String> {
        v.ok_or_else(|| format!("{name} needs an argument\n{USAGE}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr", it.next())?,
            "--interval-ms" => {
                let raw = value("--interval-ms", it.next())?;
                opts.interval_ms = raw.parse().map_err(|_| {
                    format!("--interval-ms needs a number, got `{raw}`\n{USAGE}")
                })?;
            }
            "--count" => {
                let raw = value("--count", it.next())?;
                opts.count = raw.parse().map_err(|_| {
                    format!("--count needs a number, got `{raw}`\n{USAGE}")
                })?;
            }
            "--once" => opts.count = 1,
            "--format" => {
                let raw = value("--format", it.next())?;
                opts.format = match raw.as_str() {
                    "table" => Format::Table,
                    "json" => Format::JsonBody,
                    "prom" | "prometheus" => Format::Prom,
                    other => {
                        return Err(format!(
                            "unknown format `{other}` (known: table, json, prom)\n{USAGE}"
                        ))
                    }
                };
            }
            "--help" | "-h" => {
                opts.help = true;
                return Ok(opts);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{addr}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{addr}` resolves to no address"))
}

/// Reads a number at a dotted path like `slo.attainment`, or NaN.
fn num(doc: &Json, path: &[&str]) -> f64 {
    let mut cur = doc;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return f64::NAN,
        }
    }
    cur.as_f64().unwrap_or(f64::NAN)
}

fn fmt_ms(ns: f64) -> String {
    if ns.is_nan() {
        "-".to_owned()
    } else {
        format!("{:.2}ms", ns / 1e6)
    }
}

fn fmt_pct(frac: f64) -> String {
    if frac.is_nan() {
        "-".to_owned()
    } else {
        format!("{:.1}%", frac * 100.0)
    }
}

/// Renders the metrics document as the table view.
fn render_table(doc: &Json, addr: &SocketAddr, poll: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!("sim_top — {addr} (poll {poll})\n\n"));
    out.push_str(&format!(
        "{:<10} {:>8} {:>6} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10} {:>8}\n",
        "op", "reqs", "errs", "p50", "p95", "p99", "p999", "attain", "burn l/e", "healthy"
    ));
    let ops: Vec<String> = doc
        .get("ops")
        .and_then(Json::as_array)
        .map(|a| a.iter().filter_map(|v| v.as_str().map(str::to_owned)).collect())
        .unwrap_or_default();
    for op in &ops {
        let Some(o) = doc.get("run").and_then(|r| r.get("ops")).and_then(|m| m.get(op))
        else {
            continue;
        };
        // Quantiles come from the sliding window so the table tracks
        // *current* behaviour, not lifetime averages.
        out.push_str(&format!(
            "{:<10} {:>8} {:>6} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10} {:>8}\n",
            op,
            num(o, &["requests"]),
            num(o, &["errors"]),
            fmt_ms(num(o, &["window", "window", "p50"])),
            fmt_ms(num(o, &["window", "window", "p95"])),
            fmt_ms(num(o, &["window", "window", "p99"])),
            fmt_ms(num(o, &["window", "window", "p999"])),
            fmt_pct(num(o, &["slo", "attainment"])),
            format!(
                "{:.2}/{:.2}",
                num(o, &["slo", "latency_burn_rate"]),
                num(o, &["slo", "error_burn_rate"])
            ),
            if o.get("slo").and_then(|s| s.get("healthy"))
                == Some(&Json::Bool(true))
            {
                "yes"
            } else {
                "no"
            },
        ));
    }
    let latest = |name: &str| {
        doc.get("run")
            .and_then(|r| r.get("series"))
            .and_then(|s| s.get(name))
            .and_then(|s| s.get("samples"))
            .and_then(Json::as_array)
            .and_then(<[Json]>::last)
            .and_then(Json::as_array)
            .and_then(|pair| pair.get(1))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN)
    };
    out.push_str(&format!(
        "\ngauges: queue_depth={} in_flight={} cache_hit_rate={}\n",
        latest("queue_depth"),
        latest("in_flight"),
        fmt_pct(latest("cache_hit_rate")),
    ));
    out
}

fn main() {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if opts.help {
        println!("{USAGE}");
        return;
    }
    let addr = match resolve(&opts.addr) {
        Ok(addr) => addr,
        Err(msg) => {
            eprintln!("sim_top: {msg}");
            std::process::exit(2);
        }
    };
    let backoff = Backoff::default();
    let mut client = match Client::connect_with_retry(addr, &backoff) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("sim_top: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let line = match opts.format {
        Format::Prom => r#"{"op":"metrics","format":"prom"}"#,
        Format::Table | Format::JsonBody => r#"{"op":"metrics"}"#,
    };
    let mut poll: u64 = 0;
    loop {
        poll += 1;
        let (header, body) = match client.roundtrip_with_retry(line, &backoff) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("sim_top: {e}");
                std::process::exit(1);
            }
        };
        if !header.is_ok() {
            eprintln!(
                "sim_top: server answered `{}`: {}",
                header.status,
                header.error.as_deref().unwrap_or("(no detail)")
            );
            std::process::exit(1);
        }
        match opts.format {
            Format::JsonBody | Format::Prom => {
                println!("{body}");
            }
            Format::Table => {
                let doc = match parse_with_limits(&body, ParseLimits::network()) {
                    Ok(doc) => doc,
                    Err(e) => {
                        eprintln!("sim_top: unparsable metrics body: {e}");
                        std::process::exit(1);
                    }
                };
                // Clear + home between polls so the table refreshes in
                // place; a single poll just prints.
                if opts.count != 1 && poll > 1 {
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render_table(&doc, &addr, poll));
            }
        }
        if opts.count != 0 && poll >= opts.count {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        parse_opts(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_and_flags_parse() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.addr, "127.0.0.1:7071");
        assert_eq!(opts.interval_ms, 1_000);
        assert_eq!(opts.count, 0);
        assert!(opts.format == Format::Table);

        let opts =
            parse(&["--addr", "h:1", "--interval-ms", "50", "--count", "3"]).unwrap();
        assert_eq!(opts.addr, "h:1");
        assert_eq!(opts.interval_ms, 50);
        assert_eq!(opts.count, 3);

        assert_eq!(parse(&["--once"]).unwrap().count, 1);
        assert!(parse(&["--format", "json"]).unwrap().format == Format::JsonBody);
        assert!(parse(&["--format", "prom"]).unwrap().format == Format::Prom);
        assert!(parse(&["--format", "prometheus"]).unwrap().format == Format::Prom);
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        for bad in [
            &["--format", "xml"][..],
            &["--interval-ms", "soon"],
            &["--count"],
            &["--frobnicate"],
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn table_renders_ops_and_gauges() {
        // A miniature metrics document shaped like EngineTelemetry::to_json.
        let body = r#"{
            "ops": ["run"],
            "run": {
                "ops": {"run": {
                    "requests": 3, "errors": 1,
                    "window": {"window": {"p50": 1000000.0, "p95": 2000000.0,
                                          "p99": 2000000.0, "p999": 2000000.0}},
                    "slo": {"attainment": 0.5, "latency_burn_rate": 2.0,
                            "error_burn_rate": 1.0, "healthy": false}
                }},
                "series": {
                    "queue_depth": {"samples": [[0, 1.0], [5, 4.0]]},
                    "in_flight": {"samples": [[5, 2.0]]},
                    "cache_hit_rate": {"samples": [[5, 0.25]]}
                }
            }
        }"#;
        let doc = parse_with_limits(body, ParseLimits::network()).unwrap();
        let addr: SocketAddr = "127.0.0.1:7071".parse().unwrap();
        let table = render_table(&doc, &addr, 1);
        assert!(table.contains("run"), "{table}");
        assert!(table.contains("50.0%"), "attainment rendered: {table}");
        assert!(table.contains("2.00/1.00"), "burn rates rendered: {table}");
        assert!(table.contains("queue_depth=4"), "latest gauge sample: {table}");
        assert!(table.contains("cache_hit_rate=25.0%"), "{table}");
        assert!(table.contains("1.00ms"), "window p50 in ms: {table}");
    }
}
