//! [`EngineTelemetry`]: the engine's live telemetry plane.
//!
//! The `stats` op reports *cumulative* counters (cache hits since
//! startup, jobs submitted since startup). This module holds the
//! *windowed* state behind the `metrics` op: per-op sliding-window
//! latency quantiles, SLO budget accounting, and short gauge series
//! (queue depth, in-flight count, cache hit rate) sampled at request
//! completion.
//!
//! Two properties the serve-determinism suite pins:
//!
//! * **No scrape-time sampling.** Every sample is pushed when a
//!   request completes, never when the document renders — so two
//!   consecutive scrapes with no intervening traffic produce
//!   byte-identical bodies.
//! * **Fixed shape.** Op order, series names, and the SLO policy are
//!   declared up front, so the deterministic core of the metrics
//!   document is byte-identical across thread counts and machines;
//!   only values inside the volatile `run` section move.
//!
//! The engine holds an `Option<Mutex<EngineTelemetry>>`; with
//! telemetry disabled the request path pays exactly one branch
//! (`telemetry_overhead` bench pins the same discipline the trace
//! hooks follow).

use sim_observe::timeseries::{Exposition, SloPolicy, SloTracker, TimeSeries, WindowedHistogram};
use sim_observe::{Json, LogHistogram};

/// Schema marker of the `metrics` op's JSON body.
pub const METRICS_SCHEMA: &str = "vlsi-sync/serve-metrics";
/// Version of [`METRICS_SCHEMA`].
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Ops the engine instruments, in document order. `ping`/`stats`/
/// `metrics` are deliberately absent: introspection must not perturb
/// the numbers it reports (scrape-and-compare tests depend on it).
pub const INSTRUMENTED_OPS: [&str; 2] = ["run", "frontier"];

/// Sliding-window geometry: 60 buckets × 1000 ms = one minute.
const WINDOW_BUCKETS: usize = 60;
const BUCKET_WIDTH_MS: u64 = 1_000;
/// Gauge series capacity (one sample per completed request).
const SERIES_CAP: usize = 256;

/// Telemetry of one instrumented op.
#[derive(Debug)]
struct OpTelemetry {
    requests: u64,
    errors: u64,
    /// Cumulative latency since startup.
    latency: LogHistogram,
    /// Sliding-window latency (ticks are milliseconds since engine
    /// start).
    window: WindowedHistogram,
    slo: SloTracker,
}

impl OpTelemetry {
    fn new(policy: SloPolicy) -> Self {
        OpTelemetry {
            requests: 0,
            errors: 0,
            latency: LogHistogram::new(),
            window: WindowedHistogram::new(WINDOW_BUCKETS, BUCKET_WIDTH_MS),
            slo: SloTracker::new(policy),
        }
    }

    fn record(&mut self, tick_ms: u64, latency_ns: u64, ok: bool) {
        self.requests += 1;
        if !ok {
            self.errors += 1;
        }
        self.latency.record(latency_ns);
        self.window.record(tick_ms, latency_ns);
        self.slo.record(latency_ns, ok);
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::UInt(self.requests)),
            ("errors", Json::UInt(self.errors)),
            ("latency_ns", self.latency.to_json()),
            ("window", self.window.to_json()),
            ("slo", self.slo.to_json()),
        ])
    }
}

/// One completed request's gauge readings, taken by the engine outside
/// the telemetry lock.
#[derive(Debug, Clone, Copy)]
pub struct GaugeSnapshot {
    /// Outstanding pool jobs (submitted − completed).
    pub queue_depth: u64,
    /// Entries in the single-flight table.
    pub in_flight: u64,
    /// Cumulative cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
}

/// The engine's windowed telemetry state (behind the engine's
/// `Option<Mutex<..>>`).
#[derive(Debug)]
pub struct EngineTelemetry {
    policy: SloPolicy,
    ops: Vec<OpTelemetry>,
    queue_depth: TimeSeries,
    in_flight: TimeSeries,
    cache_hit_rate: TimeSeries,
}

impl EngineTelemetry {
    /// Fresh telemetry accounting against `policy`.
    #[must_use]
    pub fn new(policy: SloPolicy) -> Self {
        EngineTelemetry {
            policy,
            ops: INSTRUMENTED_OPS.iter().map(|_| OpTelemetry::new(policy)).collect(),
            queue_depth: TimeSeries::new(SERIES_CAP),
            in_flight: TimeSeries::new(SERIES_CAP),
            cache_hit_rate: TimeSeries::new(SERIES_CAP),
        }
    }

    /// Records one completed request of `op` (an [`INSTRUMENTED_OPS`]
    /// name) plus the gauge readings taken at completion time.
    pub fn record(
        &mut self,
        op: &str,
        tick_ms: u64,
        latency_ns: u64,
        ok: bool,
        gauges: GaugeSnapshot,
    ) {
        if let Some(i) = INSTRUMENTED_OPS.iter().position(|&n| n == op) {
            self.ops[i].record(tick_ms, latency_ns, ok);
        }
        self.queue_depth.push(tick_ms, gauges.queue_depth as f64);
        self.in_flight.push(tick_ms, gauges.in_flight as f64);
        self.cache_hit_rate.push(tick_ms, gauges.cache_hit_rate);
    }

    /// An SLO tracker over *all* instrumented ops (for summary lines).
    #[must_use]
    pub fn slo_overall(&self) -> SloTracker {
        let mut merged = SloTracker::new(self.policy);
        for op in &self.ops {
            merged.merge(&op.slo);
        }
        merged
    }

    /// The `slo` section of the `stats` op: overall plus per-op
    /// tracker state. Fixed shape, volatile values.
    #[must_use]
    pub fn slo_json(&self) -> Json {
        let mut pairs = vec![
            ("policy".to_owned(), self.policy.to_json()),
            ("overall".to_owned(), self.slo_overall().to_json()),
        ];
        for (name, op) in INSTRUMENTED_OPS.iter().zip(&self.ops) {
            pairs.push(((*name).to_owned(), op.slo.to_json()));
        }
        Json::Object(pairs)
    }

    /// The `metrics` op's JSON body. Top-level fields outside `run`
    /// are the deterministic core (byte-identical across thread counts
    /// and idle scrapes); everything measured lives under `run`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let ops = INSTRUMENTED_OPS
            .iter()
            .zip(&self.ops)
            .map(|(name, op)| ((*name).to_owned(), op.to_json()))
            .collect();
        Json::obj(vec![
            ("schema", Json::Str(METRICS_SCHEMA.to_owned())),
            ("schema_version", Json::UInt(METRICS_SCHEMA_VERSION)),
            (
                "ops",
                Json::Array(
                    INSTRUMENTED_OPS
                        .iter()
                        .map(|n| Json::Str((*n).to_owned()))
                        .collect(),
                ),
            ),
            ("slo_policy", self.policy.to_json()),
            (
                "window",
                Json::obj(vec![
                    ("buckets", Json::UInt(WINDOW_BUCKETS as u64)),
                    ("bucket_width_ms", Json::UInt(BUCKET_WIDTH_MS)),
                ]),
            ),
            (
                "run",
                Json::obj(vec![
                    ("ops", Json::Object(ops)),
                    (
                        "series",
                        Json::obj(vec![
                            ("queue_depth", self.queue_depth.to_json()),
                            ("in_flight", self.in_flight.to_json()),
                            ("cache_hit_rate", self.cache_hit_rate.to_json()),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    /// The `metrics` op's Prometheus-text body. Same sources as
    /// [`EngineTelemetry::to_json`], same no-scrape-sampling rule.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut exp = Exposition::new();
        for (name, op) in INSTRUMENTED_OPS.iter().zip(&self.ops) {
            let labels = [("op", *name)];
            exp.counter(
                "serve_requests_total",
                "Requests served per op.",
                &labels,
                op.requests,
            );
            exp.counter(
                "serve_errors_total",
                "Requests that returned an error, per op.",
                &labels,
                op.errors,
            );
            exp.quantiles(
                "serve_latency_ns",
                "Cumulative request latency quantiles, nanoseconds.",
                &labels,
                &op.latency,
            );
            exp.quantiles(
                "serve_window_latency_ns",
                "Sliding-window request latency quantiles, nanoseconds.",
                &labels,
                &op.window.merged(),
            );
            exp.gauge(
                "serve_slo_attainment",
                "Fraction of requests within the latency budget.",
                &labels,
                op.slo.attainment(),
            );
            exp.gauge(
                "serve_slo_latency_burn_rate",
                "Latency budget burn rate (1.0 = burning at the allowed rate).",
                &labels,
                op.slo.latency_burn_rate(),
            );
            exp.gauge(
                "serve_slo_error_burn_rate",
                "Error budget burn rate (1.0 = burning at the allowed rate).",
                &labels,
                op.slo.error_burn_rate(),
            );
            exp.gauge(
                "serve_slo_healthy",
                "1 when both SLO budgets hold, else 0.",
                &labels,
                if op.slo.healthy() { 1.0 } else { 0.0 },
            );
        }
        for (name, help, series) in [
            (
                "serve_queue_depth",
                "Outstanding pool jobs at last request completion.",
                &self.queue_depth,
            ),
            (
                "serve_in_flight",
                "Single-flight entries at last request completion.",
                &self.in_flight,
            ),
            (
                "serve_cache_hit_rate",
                "Cumulative cache hit rate at last request completion.",
                &self.cache_hit_rate,
            ),
        ] {
            let latest = series.latest().map_or(0.0, |s| s.value);
            exp.gauge(name, help, &[], latest);
        }
        exp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauges() -> GaugeSnapshot {
        GaugeSnapshot {
            queue_depth: 2,
            in_flight: 1,
            cache_hit_rate: 0.5,
        }
    }

    #[test]
    fn idle_scrapes_are_byte_identical() {
        let mut tel = EngineTelemetry::new(SloPolicy::default());
        tel.record("run", 5, 1_000_000, true, gauges());
        let json_a = tel.to_json().to_compact();
        let prom_a = tel.to_prometheus();
        // Rendering must not perturb state: scrape twice, same bytes.
        assert_eq!(tel.to_json().to_compact(), json_a);
        assert_eq!(tel.to_prometheus(), prom_a);
        // Wait: telemetry ticks come from requests, not wall clocks,
        // so even "later" idle scrapes stay identical.
        assert_eq!(tel.to_json().to_compact(), json_a);
        // record() was a no-op on series? No — traffic must move them.
        tel.record("run", 9, 2_000_000, true, gauges());
        assert_ne!(tel.to_json().to_compact(), json_a);
    }

    #[test]
    fn deterministic_core_is_independent_of_traffic() {
        let mut a = EngineTelemetry::new(SloPolicy::default());
        let b = EngineTelemetry::new(SloPolicy::default());
        for i in 0..50 {
            a.record(
                if i % 3 == 0 { "frontier" } else { "run" },
                i,
                i * 1_000,
                i % 7 != 0,
                gauges(),
            );
            a.record("ping", i, 1, true, gauges()); // not instrumented: op ignored
        }
        let core = |doc: Json| {
            let Json::Object(pairs) = doc else { panic!("object") };
            Json::Object(pairs.into_iter().filter(|(k, _)| k != "run").collect())
        };
        assert_eq!(
            core(a.to_json()).to_compact(),
            core(b.to_json()).to_compact(),
            "everything outside `run` is configuration, not measurement"
        );
    }

    #[test]
    fn uninstrumented_ops_still_sample_gauges() {
        let mut tel = EngineTelemetry::new(SloPolicy::default());
        tel.record("ping", 1, 500, true, gauges());
        let doc = tel.to_json();
        let ops = doc.get("run").unwrap().get("ops").unwrap();
        assert_eq!(
            ops.get("run").unwrap().get("requests"),
            Some(&Json::UInt(0)),
            "ping must not count as a run request"
        );
        let qd = doc
            .get("run")
            .unwrap()
            .get("series")
            .unwrap()
            .get("queue_depth")
            .unwrap();
        assert_eq!(qd.get("pushed"), Some(&Json::UInt(1)));
    }

    #[test]
    fn prometheus_body_carries_slo_and_quantiles() {
        let mut tel = EngineTelemetry::new(SloPolicy::default());
        for i in 0..100 {
            tel.record("run", i / 10, (i + 1) * 10_000, i != 50, gauges());
        }
        tel.record("frontier", 10, 123, true, gauges());
        let text = tel.to_prometheus();
        for needle in [
            "# TYPE serve_requests_total counter",
            "serve_requests_total{op=\"run\"} 100",
            "serve_requests_total{op=\"frontier\"} 1",
            "serve_errors_total{op=\"run\"} 1",
            "serve_latency_ns{op=\"run\",quantile=\"0.999\"}",
            "serve_window_latency_ns{op=\"run\",quantile=\"0.5\"}",
            "serve_slo_attainment{op=\"run\"}",
            "serve_slo_healthy{op=\"run\"} 1",
            "serve_queue_depth 2",
            "serve_cache_hit_rate 0.5",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn slo_json_reports_overall_and_per_op() {
        let mut tel = EngineTelemetry::new(SloPolicy::default());
        tel.record("run", 1, 1_000, true, gauges());
        tel.record("frontier", 2, 2_000, false, gauges());
        let doc = tel.slo_json();
        assert!(doc.get("policy").is_some());
        assert_eq!(
            doc.get("overall").unwrap().get("total"),
            Some(&Json::UInt(2))
        );
        assert_eq!(doc.get("run").unwrap().get("total"), Some(&Json::UInt(1)));
        assert_eq!(
            doc.get("frontier").unwrap().get("errors"),
            Some(&Json::UInt(1))
        );
        let _ = gauges(); // silence the helper when cfgs shift
    }

    #[test]
    fn gauge_snapshot_lands_in_every_series() {
        let mut tel = EngineTelemetry::new(SloPolicy::default());
        tel.record("run", 3, 1_000, true, gauges());
        let doc = tel.to_json();
        let series = doc.get("run").unwrap().get("series").unwrap();
        for name in ["queue_depth", "in_flight", "cache_hit_rate"] {
            assert_eq!(
                series.get(name).unwrap().get("pushed"),
                Some(&Json::UInt(1)),
                "series {name}"
            );
        }
    }
}
