//! Content-addressed result cache with an LRU byte-size bound.
//!
//! Entries are keyed by the **full canonical request string** (see
//! [`crate::request`]), not by its hash — the 16-hex-digit key that
//! appears in response headers and logs is derived from the same
//! bytes, so a hash collision can at worst confuse a log reader, never
//! serve the wrong body. Bodies are `Arc<str>` so a hit hands out a
//! reference-counted view instead of copying a multi-kilobyte report
//! under the lock.
//!
//! Accounting charges each entry its canonical-key bytes plus its body
//! bytes. When an insert would push the total past the configured
//! bound, least-recently-used entries are evicted until it fits; a
//! single body larger than the whole bound is simply not cached (the
//! request still succeeds — the cache is an accelerator, not a store
//! of record). Hits, misses, insertions, and evictions are counted and
//! surfaced through the server's `stats` op and the observe-style
//! snapshot in [`Cache::stats_json`].

use sim_observe::Json;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Monotonic counters describing cache behaviour since startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a body.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Bodies stored (excludes oversized bodies that were skipped).
    pub insertions: u64,
    /// Entries removed to make room.
    pub evictions: u64,
    /// Bodies too large to cache at all under the configured bound.
    pub oversized: u64,
}

impl CacheStats {
    /// Hit rate over all lookups so far, 0.0 when none happened.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    body: Arc<str>,
    /// Recency stamp; also the key of this entry's slot in the
    /// `recency` index.
    tick: u64,
}

/// The LRU result cache. Not internally synchronized — the server
/// wraps it in a `Mutex`, and every operation here is O(log n) plus
/// hashing, so the critical section stays short.
pub struct Cache {
    max_bytes: usize,
    used_bytes: usize,
    next_tick: u64,
    entries: HashMap<String, Entry>,
    /// tick → canonical key, ordered oldest-first. Ticks are unique
    /// (monotonically assigned), so this is a faithful LRU queue.
    recency: BTreeMap<u64, String>,
    stats: CacheStats,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("max_bytes", &self.max_bytes)
            .field("used_bytes", &self.used_bytes)
            .field("entries", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Cache {
    /// An empty cache bounded to `max_bytes` of key+body payload.
    #[must_use]
    pub fn new(max_bytes: usize) -> Self {
        Cache {
            max_bytes,
            used_bytes: 0,
            next_tick: 0,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up the body for a canonical request, refreshing its
    /// recency on a hit.
    pub fn get(&mut self, canonical: &str) -> Option<Arc<str>> {
        let tick = self.next_tick;
        match self.entries.get_mut(canonical) {
            Some(entry) => {
                self.stats.hits += 1;
                self.recency.remove(&entry.tick);
                entry.tick = tick;
                self.next_tick += 1;
                self.recency.insert(tick, canonical.to_owned());
                Some(Arc::clone(&entry.body))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a body, evicting least-recently-used entries as needed.
    /// Replacing an existing key refreshes both body and recency.
    pub fn insert(&mut self, canonical: &str, body: Arc<str>) {
        let cost = canonical.len() + body.len();
        if cost > self.max_bytes {
            self.stats.oversized += 1;
            return;
        }
        if let Some(old) = self.entries.remove(canonical) {
            self.recency.remove(&old.tick);
            self.used_bytes -= canonical.len() + old.body.len();
        }
        while self.used_bytes + cost > self.max_bytes {
            let Some((&oldest_tick, _)) = self.recency.iter().next() else {
                break;
            };
            let key = self
                .recency
                .remove(&oldest_tick)
                .expect("tick was just observed in the recency index");
            let victim = self
                .entries
                .remove(&key)
                .expect("recency index references a live entry");
            self.used_bytes -= key.len() + victim.body.len();
            self.stats.evictions += 1;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.entries.insert(canonical.to_owned(), Entry { body, tick });
        self.recency.insert(tick, canonical.to_owned());
        self.used_bytes += cost;
        self.stats.insertions += 1;
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently charged against the bound.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The deterministic-shape JSON snapshot served by the `stats` op:
    /// fixed fields, insertion-ordered, value-volatile.
    #[must_use]
    pub fn stats_json(&self) -> Json {
        Json::obj(vec![
            ("entries", Json::from(self.entries.len())),
            ("used_bytes", Json::from(self.used_bytes)),
            ("max_bytes", Json::from(self.max_bytes)),
            ("hits", Json::UInt(self.stats.hits)),
            ("misses", Json::UInt(self.stats.misses)),
            ("insertions", Json::UInt(self.stats.insertions)),
            ("evictions", Json::UInt(self.stats.evictions)),
            ("oversized", Json::UInt(self.stats.oversized)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    #[test]
    fn hit_returns_identical_body_and_counts() {
        let mut c = Cache::new(1024);
        assert!(c.get("k1").is_none());
        c.insert("k1", body("report-one"));
        let b = c.get("k1").expect("just inserted");
        assert_eq!(&*b, "report-one");
        assert_eq!(
            c.stats(),
            CacheStats { hits: 1, misses: 1, insertions: 1, ..CacheStats::default() }
        );
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest_first_and_get_refreshes() {
        // Keys and bodies are 2+8 = 10 bytes each; bound fits two.
        let mut c = Cache::new(20);
        c.insert("k1", body("aaaaaaaa"));
        c.insert("k2", body("bbbbbbbb"));
        assert_eq!(c.len(), 2);
        // Touch k1 so k2 becomes the LRU victim.
        assert!(c.get("k1").is_some());
        c.insert("k3", body("cccccccc"));
        assert_eq!(c.len(), 2);
        assert!(c.get("k1").is_some(), "refreshed entry survives");
        assert!(c.get("k2").is_none(), "stale entry was evicted");
        assert_eq!(c.stats().evictions, 1);
        assert!(c.used_bytes() <= 20);
    }

    #[test]
    fn oversized_bodies_are_skipped_not_stored() {
        let mut c = Cache::new(8);
        c.insert("key-longer-than-cap", body("and a very long body too"));
        assert!(c.is_empty());
        assert_eq!(c.stats().oversized, 1);
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn replacing_a_key_adjusts_accounting() {
        let mut c = Cache::new(64);
        c.insert("k", body("short"));
        let before = c.used_bytes();
        c.insert("k", body("a noticeably longer body"));
        assert_eq!(c.len(), 1);
        assert!(c.used_bytes() > before);
        assert_eq!(&*c.get("k").unwrap(), "a noticeably longer body");
        assert_eq!(c.stats().evictions, 0, "replacement is not an eviction");
    }

    #[test]
    fn eviction_loop_frees_enough_for_large_inserts() {
        let mut c = Cache::new(35);
        c.insert("a", body("111111111")); // 10
        c.insert("b", body("222222222")); // 10
        c.insert("c", body("333333333")); // 10
        assert_eq!(c.len(), 3);
        // 25-byte entry forces out two LRU victims (a then b):
        // 30 used + 25 > 35, and evicting a alone still leaves 45.
        c.insert("d", body("444444444444444444444444")); // 1+24 = 25
        assert!(c.get("d").is_some());
        assert!(c.get("c").is_some());
        assert!(c.get("a").is_none());
        assert!(c.get("b").is_none());
        assert_eq!(c.stats().evictions, 2);
        assert!(c.used_bytes() <= 35);
    }

    #[test]
    fn stats_json_has_a_fixed_shape() {
        let mut c = Cache::new(100);
        c.insert("k", body("v"));
        let _ = c.get("k");
        let doc = c.stats_json().to_compact();
        assert_eq!(
            doc,
            r#"{"entries":1,"used_bytes":2,"max_bytes":100,"hits":1,"misses":0,"insertions":1,"evictions":0,"oversized":0}"#
        );
    }
}
