//! The execution engine: request → cache → single-flight → pool.
//!
//! [`Engine::run`] is the whole serving policy in one place:
//!
//! 1. **Cache lookup.** The canonical request string indexes the
//!    [`crate::cache::Cache`]; a hit returns the stored body with no
//!    work scheduled.
//! 2. **Single-flight coalescing.** On a miss, concurrent requests for
//!    the same canonical form share one computation: the first caller
//!    submits a job and everyone (submitter included) waits on the
//!    same [`InFlight`] cell. A thundering herd of identical cold
//!    requests costs one experiment run, not N.
//! 3. **Bounded execution.** The job goes to the [`crate::pool::Pool`]
//!    via `try_submit`; a full pool surfaces as [`ServeError::Busy`]
//!    and the in-flight cell is retracted before anyone can join it.
//! 4. **Waiter-side timeout.** Waiters give up after the configured
//!    deadline ([`ServeError::Timeout`]) but the job itself keeps
//!    running and still populates the cache — a slow experiment is
//!    paid for once, then served from cache forever.
//!
//! Lock discipline: the cache mutex and the in-flight mutex are never
//! held at the same time. The price is a benign race — a job that
//! finishes between a cache miss and the in-flight check may be
//! recomputed once — which is harmless because bodies are
//! deterministic for a given canonical request.
//!
//! The served body is `json_core(...).to_pretty()`: the deterministic
//! core of the CLI's `--json` output, byte-identical across thread
//! counts and wall clocks, which is what makes caching (and the
//! serve-determinism test suite) sound.

use crate::cache::{Cache, CacheStats};
use crate::pool::{Pool, PoolStats, SubmitError};
use crate::request::{FrontierRequest, Request};
use crate::telemetry::{EngineTelemetry, GaugeSnapshot};
use sim_faults::FaultRates;
use sim_observe::timeseries::SloPolicy;
use sim_observe::duration_ns;
use sim_runtime::{json_core, run_experiment, Registry};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Pool and queue are full; the client should back off and retry.
    Busy,
    /// The engine is draining and accepts no new work.
    ShuttingDown,
    /// The waiter-side deadline passed. The job keeps running and its
    /// result will be cached; a retry will usually hit.
    Timeout,
    /// The request is well-formed JSON but semantically unservable
    /// (unknown experiment, unsupported fault rates, …).
    BadRequest(String),
    /// The experiment ran but failed (panicked).
    Failed(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy => write!(f, "server busy: worker pool and queue are full"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Timeout => write!(f, "timed out waiting for the experiment"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Failed(msg) => write!(f, "experiment failed: {msg}"),
        }
    }
}

/// The protocol status token for an error, used in the response
/// header's `"status"` field and tallied by the load generator.
impl ServeError {
    /// Stable machine-readable status token (`busy`, `timeout`, …).
    #[must_use]
    pub fn status(&self) -> &'static str {
        match self {
            ServeError::Busy => "busy",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Timeout => "timeout",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Failed(_) => "failed",
        }
    }
}

/// A successfully served body plus how it was obtained.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The report body: `json_core` pretty-printed, newline-free count
    /// of bytes exactly as sent on the wire.
    pub body: Arc<str>,
    /// Content address (FNV-1a hex of the canonical request).
    pub key: String,
    /// Served straight from the cache.
    pub cached: bool,
    /// Waited on another request's computation (single-flight).
    pub coalesced: bool,
}

/// One in-flight computation; waiters block on `cv` until `done` is
/// populated by the worker.
struct InFlight {
    done: Mutex<Option<Result<Arc<str>, String>>>,
    cv: Condvar,
}

/// Engine configuration knobs (all have serving-sensible defaults).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing experiments.
    pub workers: usize,
    /// Bounded submission queue depth beyond the busy workers.
    pub queue_cap: usize,
    /// Cache bound in bytes (canonical key + body per entry).
    pub cache_bytes: usize,
    /// `--threads` handed to each experiment run (volatile; does not
    /// affect report bytes).
    pub job_threads: usize,
    /// Waiter-side deadline per request; `None` waits indefinitely.
    pub job_timeout: Option<Duration>,
    /// Live telemetry (`metrics` op, SLO accounting). Disabling it
    /// reduces the request path's telemetry cost to a single branch.
    pub telemetry: bool,
    /// SLO budgets the telemetry accounts against.
    pub slo: SloPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            queue_cap: 16,
            cache_bytes: 16 * 1024 * 1024,
            job_threads: 1,
            job_timeout: Some(Duration::from_secs(60)),
            telemetry: true,
            slo: SloPolicy::default(),
        }
    }
}

/// The serving engine. Cheap to share behind an `Arc`; all interior
/// state is synchronized.
pub struct Engine {
    registry: Arc<Registry>,
    pool: Mutex<Pool>,
    cache: Mutex<Cache>,
    inflight: Mutex<HashMap<String, Arc<InFlight>>>,
    coalesced: AtomicU64,
    job_threads: usize,
    job_timeout: Option<Duration>,
    /// `None` = telemetry disabled; the request path then pays exactly
    /// one branch (no clock read, no lock).
    telemetry: Option<Mutex<EngineTelemetry>>,
    /// Telemetry tick origin (ticks are milliseconds since this).
    started: Instant,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("experiments", &self.registry.names())
            .field("job_threads", &self.job_threads)
            .field("job_timeout", &self.job_timeout)
            .finish()
    }
}

impl Engine {
    /// Builds an engine serving `registry` under `cfg`.
    #[must_use]
    pub fn new(registry: Arc<Registry>, cfg: &EngineConfig) -> Self {
        Engine {
            registry,
            pool: Mutex::new(Pool::new(cfg.workers, cfg.queue_cap)),
            cache: Mutex::new(Cache::new(cfg.cache_bytes)),
            inflight: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
            job_threads: cfg.job_threads.max(1),
            job_timeout: cfg.job_timeout,
            telemetry: cfg
                .telemetry
                .then(|| Mutex::new(EngineTelemetry::new(cfg.slo))),
            started: Instant::now(),
        }
    }

    /// The experiments this engine can serve, in registry order.
    #[must_use]
    pub fn experiment_names(&self) -> Vec<&'static str> {
        self.registry.names()
    }

    /// Serves one request: cache hit, coalesced wait, or fresh run.
    ///
    /// # Errors
    ///
    /// See [`ServeError`]; `Busy` and `Timeout` are retryable.
    pub fn run(self: &Arc<Self>, req: &Request) -> Result<Outcome, ServeError> {
        let t0 = self.telemetry_start();
        let result = self.run_inner(req);
        self.telemetry_record("run", t0, result.is_ok());
        result
    }

    fn run_inner(self: &Arc<Self>, req: &Request) -> Result<Outcome, ServeError> {
        if self.registry.get(&req.experiment).is_none() {
            return Err(ServeError::BadRequest(format!(
                "unknown experiment `{}` (known: {})",
                req.experiment,
                self.registry.names().join(", ")
            )));
        }
        if req.fault_rates != FaultRates::none() {
            return Err(ServeError::BadRequest(
                "nonzero fault_rates are reserved: no experiment consumes external \
                 rates yet (e12 sweeps its fault grid internally); submit e12 with \
                 default rates instead"
                    .to_owned(),
            ));
        }
        let cfg = req.exp_config(self.job_threads);
        let registry = Arc::clone(&self.registry);
        let name = req.experiment.clone();
        self.serve_body(&req.canonical(), req.key(), &req.experiment, move || {
            let exp = registry.get(&name).expect("validated before submission");
            let report = run_experiment(exp, &cfg);
            Ok(Arc::from(json_core(exp, &cfg, &report).to_pretty()))
        })
    }

    /// Serves a design-space frontier request: a fast-grid sweep over
    /// the (scheme × topology × size × fault-rate) grid followed by
    /// Pareto pruning, through the same cache / single-flight / pool
    /// path as experiment runs — the sweep is deterministic for a
    /// given canonical request, so the first caller pays for it and
    /// everyone after reads cached bytes.
    ///
    /// # Errors
    ///
    /// See [`ServeError`]; `Busy` and `Timeout` are retryable.
    pub fn frontier(self: &Arc<Self>, req: &FrontierRequest) -> Result<Outcome, ServeError> {
        let t0 = self.telemetry_start();
        let result = self.frontier_inner(req);
        self.telemetry_record("frontier", t0, result.is_ok());
        result
    }

    fn frontier_inner(self: &Arc<Self>, req: &FrontierRequest) -> Result<Outcome, ServeError> {
        let job = req.clone();
        let threads = self.job_threads;
        self.serve_body(&req.canonical(), req.key(), "frontier", move || {
            let trials = job.trials.unwrap_or(FrontierRequest::DEFAULT_TRIALS);
            // One shard, checkpointing irrelevant in-process: neither
            // field participates in the report's manifest digest.
            let m = bench::grid::default_manifest(job.seed, trials, 1, trials.max(1), job.fast)?;
            let results = bench::grid::run_sweep_single(&m, threads)?;
            let report = bench::grid::sweep_report(&m, &results);
            let frontier = bench::grid::sweep_frontier(&report)?;
            Ok(Arc::from(frontier.to_pretty()))
        })
    }

    /// The shared serving policy: cache lookup, single-flight
    /// join-or-submit, bounded pool execution, waiter-side deadline.
    /// `compute` produces the body on a pool thread exactly once per
    /// cold canonical form; `label` names the job in panic messages.
    fn serve_body(
        self: &Arc<Self>,
        canonical: &str,
        key: String,
        label: &str,
        compute: impl FnOnce() -> Result<Arc<str>, String> + Send + 'static,
    ) -> Result<Outcome, ServeError> {
        // 1. Cache. (Cache lock only.)
        if let Some(body) = self.cache.lock().expect("cache mutex").get(canonical) {
            return Ok(Outcome { body, key, cached: true, coalesced: false });
        }

        // 2./3. Single-flight join-or-submit. (In-flight lock only;
        // try_submit is non-blocking so holding the lock across it
        // keeps the join/retract window race-free.)
        let (flight, coalesced) = {
            let mut inflight = self.inflight.lock().expect("inflight mutex");
            if let Some(existing) = inflight.get(canonical) {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(existing), true)
            } else {
                let flight = Arc::new(InFlight {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                inflight.insert(canonical.to_owned(), Arc::clone(&flight));
                let engine = Arc::clone(self);
                let job_canonical = canonical.to_owned();
                let job_label = label.to_owned();
                let submitted = self
                    .pool
                    .lock()
                    .expect("pool mutex")
                    .try_submit(Box::new(move || {
                        engine.execute(&job_label, &job_canonical, compute);
                    }));
                if let Err(e) = submitted {
                    inflight.remove(canonical);
                    return Err(match e {
                        SubmitError::Busy => ServeError::Busy,
                        SubmitError::ShuttingDown => ServeError::ShuttingDown,
                    });
                }
                (flight, false)
            }
        };

        // 4. Wait (with the optional deadline).
        let result = self.wait(&flight)?;
        match result {
            Ok(body) => Ok(Outcome { body, key, cached: false, coalesced }),
            Err(msg) => Err(ServeError::Failed(msg)),
        }
    }

    /// Blocks until the flight resolves or the deadline passes.
    #[allow(clippy::type_complexity)]
    fn wait(&self, flight: &InFlight) -> Result<Result<Arc<str>, String>, ServeError> {
        let mut done = flight.done.lock().expect("flight mutex");
        let deadline = self.job_timeout.map(|t| std::time::Instant::now() + t);
        loop {
            if let Some(result) = done.as_ref() {
                return Ok(result.clone());
            }
            match deadline {
                None => done = flight.cv.wait(done).expect("flight mutex"),
                Some(deadline) => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return Err(ServeError::Timeout);
                    }
                    let (guard, _) = flight
                        .cv
                        .wait_timeout(done, deadline - now)
                        .expect("flight mutex");
                    done = guard;
                }
            }
        }
    }

    /// Worker-side: run the job, cache the body, resolve the flight.
    /// Runs on a pool thread; panics are caught and surfaced as
    /// [`ServeError::Failed`].
    fn execute(
        self: &Arc<Self>,
        label: &str,
        canonical: &str,
        compute: impl FnOnce() -> Result<Arc<str>, String>,
    ) {
        let result = catch_unwind(AssertUnwindSafe(compute))
            .unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".to_owned());
                Err(format!("panic in `{label}`: {msg}"))
            });

        if let Ok(body) = &result {
            // Cache lock only.
            self.cache
                .lock()
                .expect("cache mutex")
                .insert(canonical, Arc::clone(body));
        }
        // In-flight lock only: resolve and retract.
        let flight = self
            .inflight
            .lock()
            .expect("inflight mutex")
            .remove(canonical);
        if let Some(flight) = flight {
            *flight.done.lock().expect("flight mutex") = Some(result);
            flight.cv.notify_all();
        }
    }

    /// Telemetry entry gate: the *entire* disabled path is this one
    /// branch — no clock read, no lock, no allocation.
    fn telemetry_start(&self) -> Option<Instant> {
        if self.telemetry.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Telemetry exit: records latency/outcome for `op` and samples
    /// the queue/in-flight/cache gauges. Gauges are read *before*
    /// taking the telemetry lock — it is never held together with the
    /// pool, cache, or in-flight locks.
    fn telemetry_record(&self, op: &str, t0: Option<Instant>, ok: bool) {
        let Some(t0) = t0 else { return };
        let latency_ns = duration_ns(t0.elapsed());
        let tick_ms = duration_ns(self.started.elapsed()) / 1_000_000;
        let pool = self.pool_stats();
        let gauges = GaugeSnapshot {
            queue_depth: pool.submitted.saturating_sub(pool.completed),
            in_flight: self.inflight.lock().expect("inflight mutex").len() as u64,
            cache_hit_rate: self.cache_stats().hit_rate(),
        };
        if let Some(tel) = &self.telemetry {
            tel.lock()
                .expect("telemetry mutex")
                .record(op, tick_ms, latency_ns, ok, gauges);
        }
    }

    /// The `metrics` op's JSON body ([`crate::telemetry`] document);
    /// `None` when telemetry is disabled.
    #[must_use]
    pub fn metrics_json(&self) -> Option<sim_observe::Json> {
        self.telemetry
            .as_ref()
            .map(|t| t.lock().expect("telemetry mutex").to_json())
    }

    /// The `metrics` op's Prometheus-text body; `None` when telemetry
    /// is disabled.
    #[must_use]
    pub fn metrics_prometheus(&self) -> Option<String> {
        self.telemetry
            .as_ref()
            .map(|t| t.lock().expect("telemetry mutex").to_prometheus())
    }

    /// Cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache mutex").stats()
    }

    /// Pool counters.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.lock().expect("pool mutex").stats()
    }

    /// Requests that attached to another request's computation.
    #[must_use]
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// The `stats` op payload: cache snapshot, pool counters, and SLO
    /// state — a fixed deterministic shape with volatile values
    /// (`slo` is `null` when telemetry is disabled).
    #[must_use]
    pub fn stats_json(&self) -> sim_observe::Json {
        use sim_observe::Json;
        let pool = self.pool_stats();
        let slo = self
            .telemetry
            .as_ref()
            .map_or(Json::Null, |t| t.lock().expect("telemetry mutex").slo_json());
        Json::obj(vec![
            ("cache", self.cache.lock().expect("cache mutex").stats_json()),
            (
                "pool",
                Json::obj(vec![
                    ("submitted", Json::UInt(pool.submitted)),
                    ("rejected_busy", Json::UInt(pool.rejected_busy)),
                    ("completed", Json::UInt(pool.completed)),
                    ("panicked", Json::UInt(pool.panicked)),
                ]),
            ),
            ("coalesced", Json::UInt(self.coalesced_count())),
            ("slo", slo),
        ])
    }

    /// Drains the pool: queued jobs finish, workers join, new
    /// submissions get `ShuttingDown`. Idempotent.
    pub fn shutdown(&self) {
        self.pool.lock().expect("pool mutex").shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_observe::parse;

    fn engine(cfg: &EngineConfig) -> Arc<Engine> {
        Arc::new(Engine::new(Arc::new(bench::registry()), cfg))
    }

    fn fast_request(name: &str, seed: u64) -> Request {
        let mut req = Request::new(name);
        req.seed = seed;
        req.fast = true;
        req.trials = Some(2);
        req
    }

    #[test]
    fn miss_then_hit_with_identical_bytes() {
        let eng = engine(&EngineConfig { workers: 1, ..EngineConfig::default() });
        let req = fast_request("e2", 42);
        let first = eng.run(&req).expect("first run succeeds");
        assert!(!first.cached);
        let second = eng.run(&req).expect("second run succeeds");
        assert!(second.cached, "repeat request must be a cache hit");
        assert_eq!(first.body, second.body, "hit body must be byte-identical");
        assert_eq!(first.key, second.key);
        assert_eq!(eng.cache_stats().hits, 1);
        // The body is valid JSON with the report schema marker.
        let doc = parse(&first.body).expect("body is valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("vlsi-sync/experiment-report")
        );
    }

    #[test]
    fn frontier_miss_then_hit_serves_a_frontier_report() {
        use crate::request::FrontierRequest;
        let eng = engine(&EngineConfig { workers: 1, ..EngineConfig::default() });
        let req = FrontierRequest {
            seed: 7,
            trials: Some(2),
            fast: true,
        };
        let first = eng.frontier(&req).expect("first frontier run");
        assert!(!first.cached);
        let second = eng.frontier(&req).expect("second frontier run");
        assert!(second.cached, "repeat frontier request must hit the cache");
        assert_eq!(first.body, second.body);
        let doc = parse(&first.body).expect("frontier body is valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("vlsi-sync/frontier-report")
        );
        assert!(
            doc.get("frontier_size").is_some(),
            "frontier body carries the pruned set"
        );
        // Experiment runs and frontier sweeps share one cache but can
        // never collide: the canonical forms differ structurally.
        let run = fast_request("e2", 7);
        assert_ne!(run.canonical(), req.canonical());
    }

    #[test]
    fn unknown_experiment_and_fault_rates_are_bad_requests() {
        let eng = engine(&EngineConfig::default());
        let err = eng.run(&Request::new("e99")).expect_err("unknown name");
        assert!(matches!(err, ServeError::BadRequest(_)));
        assert!(err.to_string().contains("e99"), "{err}");

        let mut req = fast_request("e2", 1);
        req.fault_rates.gate_stuck = 0.5;
        let err = eng.run(&req).expect_err("nonzero rates are reserved");
        assert!(matches!(err, ServeError::BadRequest(_)));
        assert!(err.to_string().contains("e12"), "{err}");
        assert_eq!(err.status(), "bad_request");
    }

    #[test]
    fn concurrent_identical_requests_coalesce_to_one_run() {
        let eng = engine(&EngineConfig { workers: 2, ..EngineConfig::default() });
        let req = fast_request("e2", 7);
        let threads: Vec<_> = (0..6)
            .map(|_| {
                let eng = Arc::clone(&eng);
                let req = req.clone();
                std::thread::spawn(move || eng.run(&req).expect("served"))
            })
            .collect();
        let outcomes: Vec<Outcome> =
            threads.into_iter().map(|t| t.join().expect("no panic")).collect();
        let first_body = &outcomes[0].body;
        for o in &outcomes {
            assert_eq!(&o.body, first_body, "all waiters see identical bytes");
        }
        // Exactly one insertion: the experiment ran once (modulo the
        // documented benign recompute race, which cannot fire here
        // because nothing evicts between check and join).
        assert_eq!(eng.cache_stats().insertions, 1);
        let coalesced_or_cached = outcomes
            .iter()
            .filter(|o| o.coalesced || o.cached)
            .count();
        assert!(
            coalesced_or_cached >= 1,
            "at least one of six concurrent requests must have shared the run"
        );
    }

    #[test]
    fn zero_timeout_times_out_but_still_caches() {
        let eng = Arc::new(Engine::new(
            Arc::new(bench::registry()),
            &EngineConfig {
                workers: 1,
                job_timeout: Some(Duration::ZERO),
                ..EngineConfig::default()
            },
        ));
        let req = fast_request("e2", 11);
        match eng.run(&req) {
            // The overwhelmingly common path: the deadline passes
            // while the job is still queued or running.
            Err(err) => assert_eq!(err, ServeError::Timeout),
            // Theoretically the job can finish inside the submit→wait
            // window on a wildly preempted box; that is not a failure
            // of timeout semantics, so tolerate it.
            Ok(outcome) => assert!(!outcome.cached),
        }
        // The job keeps running and eventually caches; poll for it.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            if eng.cache_stats().insertions >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "timed-out job must still populate the cache"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // A retry is now a hit.
        let retry = eng.run(&req).expect("cached after timeout");
        assert!(retry.cached);
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let eng = engine(&EngineConfig::default());
        eng.shutdown();
        let err = eng.run(&fast_request("e2", 1)).expect_err("draining");
        assert_eq!(err, ServeError::ShuttingDown);
        assert_eq!(err.status(), "shutting_down");
    }

    #[test]
    fn stats_json_shape_is_fixed() {
        let eng = engine(&EngineConfig::default());
        let doc = eng.stats_json();
        for path in ["cache", "pool", "coalesced", "slo"] {
            assert!(doc.get(path).is_some(), "missing {path}");
        }
        let pool = doc.get("pool").unwrap();
        for field in ["submitted", "rejected_busy", "completed", "panicked"] {
            assert!(pool.get(field).is_some(), "missing pool.{field}");
        }
        for section in ["policy", "overall", "run", "frontier"] {
            assert!(
                doc.get("slo").unwrap().get(section).is_some(),
                "missing slo.{section}"
            );
        }
    }

    #[test]
    fn telemetry_observes_served_and_rejected_requests() {
        let eng = engine(&EngineConfig { workers: 1, ..EngineConfig::default() });
        eng.run(&fast_request("e2", 3)).expect("cold run");
        eng.run(&fast_request("e2", 3)).expect("cache hit");
        let _ = eng.run(&Request::new("e99")).expect_err("bad request");
        let doc = eng.metrics_json().expect("telemetry on by default");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(crate::telemetry::METRICS_SCHEMA)
        );
        let run_op = doc.get("run").unwrap().get("ops").unwrap().get("run").unwrap();
        assert_eq!(run_op.get("requests"), Some(&Json::UInt(3)));
        assert_eq!(run_op.get("errors"), Some(&Json::UInt(1)));
        assert_eq!(
            run_op.get("slo").unwrap().get("total"),
            Some(&Json::UInt(3)),
            "SLO accounting sees every request, hits and errors included"
        );
        let prom = eng.metrics_prometheus().expect("exposition available");
        assert!(prom.contains("serve_requests_total{op=\"run\"} 3"), "{prom}");
        assert!(prom.contains("serve_errors_total{op=\"run\"} 1"), "{prom}");
    }

    #[test]
    fn disabled_telemetry_serves_but_reports_nothing() {
        let eng = engine(&EngineConfig {
            workers: 1,
            telemetry: false,
            ..EngineConfig::default()
        });
        eng.run(&fast_request("e2", 5)).expect("serves without telemetry");
        assert!(eng.metrics_json().is_none());
        assert!(eng.metrics_prometheus().is_none());
        assert_eq!(eng.stats_json().get("slo"), Some(&Json::Null));
    }

    use sim_observe::Json;
}
