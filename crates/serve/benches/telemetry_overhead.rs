//! Telemetry overhead guard: the engine's request path with telemetry
//! disabled must cost what it cost before the telemetry plane existed
//! — the disabled path is a single branch on an `Option` (no clock
//! read, no lock, no allocation) — and the enabled path's cost should
//! stay within a small multiple on a cache-hit request, where the
//! request itself does the least work and any overhead is most
//! visible.

use bench::timing::{bench, group};
use sim_serve::{Engine, EngineConfig, Request};
use std::sync::Arc;

fn engine(telemetry: bool) -> Arc<Engine> {
    let cfg = EngineConfig {
        workers: 2,
        telemetry,
        ..EngineConfig::default()
    };
    Arc::new(Engine::new(Arc::new(bench::registry()), &cfg))
}

fn hot_request() -> Request {
    let mut req = Request::new("e2");
    req.seed = 7;
    req.trials = Some(2);
    req.fast = true;
    req
}

fn main() {
    // Primitives first: what one telemetry sample costs in isolation.
    group("timeseries_primitives");
    {
        use sim_observe::timeseries::{SloTracker, TimeSeries, WindowedHistogram};
        let mut series = TimeSeries::new(256);
        let mut tick = 0u64;
        bench("timeseries/push", || {
            tick += 1;
            series.push(tick, 1.5);
            series.len()
        });
        let mut win = WindowedHistogram::new(60, 1_000);
        let mut t = 0u64;
        bench("windowed_histogram/record", || {
            t += 17;
            win.record(t, 1_000_000);
            win.recorded()
        });
        let mut slo = SloTracker::new(sim_observe::SloPolicy::default());
        bench("slo_tracker/record", || {
            slo.record(1_000_000, true);
            slo.total()
        });
    }

    // The end-to-end request path on a warm cache: the experiment work
    // is a lookup, so the telemetry delta dominates any difference.
    group("engine_cached_run");
    let req = hot_request();
    for (name, telemetry) in [("disabled", false), ("enabled", true)] {
        let eng = engine(telemetry);
        eng.run(&req).expect("prime the cache");
        bench(&format!("engine_cached_run/telemetry_{name}"), || {
            let out = eng.run(&req).expect("cache hit");
            (out.cached, out.body.len())
        });
    }

    // Scrape cost: rendering the metrics document must be cheap enough
    // to poll every second, and it samples nothing (read-only).
    group("metrics_scrape");
    let eng = engine(true);
    eng.run(&req).expect("traffic");
    bench("metrics_scrape/json", || {
        eng.metrics_json().expect("enabled").to_compact().len()
    });
    bench("metrics_scrape/prometheus", || {
        eng.metrics_prometheus().expect("enabled").len()
    });
}
