//! End-to-end serving tests: a real TCP server, the real load
//! generator, concurrency well past the worker count.

use sim_serve::loadgen::{self, LoadgenConfig};
use sim_serve::{Engine, EngineConfig, Server};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn start(cfg: &EngineConfig) -> (SocketAddr, Arc<Engine>, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let engine = Arc::new(Engine::new(Arc::new(bench::registry()), cfg));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, engine, stop, handle)
}

#[test]
fn thirty_two_connections_against_four_workers() {
    let (addr, engine, stop, handle) = start(&EngineConfig {
        workers: 4,
        queue_cap: 64,
        ..EngineConfig::default()
    });
    let cfg = LoadgenConfig {
        conns: 32,
        requests: 96,
        hot_ratio: 0.75,
        hot_keys: 3,
        experiments: vec!["e2".to_owned(), "e3".to_owned()],
        seed: 1,
        trials: Some(2),
        fast: true,
        ..LoadgenConfig::default()
    };
    let plan = loadgen::plan(&cfg);
    let mix = loadgen::summarize(&plan);
    assert!(mix.hot > 0 && mix.cold > 0, "the default mix exercises both paths");

    let first = loadgen::run(addr, &cfg, &plan).expect("32 conns complete without deadlock");
    assert_eq!(first.errors, 0, "no protocol or I/O errors");
    assert_eq!(
        first.ok + first.busy,
        96,
        "every request is answered: served or structured busy"
    );
    // Queue depth 64 >= plan size, so nothing should actually shed.
    assert_eq!(first.busy, 0, "a deep queue absorbs the whole plan");
    assert!(
        first.cache_hits + first.coalesced > 0,
        "hot repeats must share work (hits={}, coalesced={})",
        first.cache_hits,
        first.coalesced
    );

    // Second identical run: every distinct key is now cached, so every
    // request is a hit.
    let second = loadgen::run(addr, &cfg, &plan).expect("second pass");
    assert_eq!(second.errors, 0);
    assert_eq!(second.ok, 96);
    assert_eq!(second.cache_hits, 96, "warm cache serves the full plan");
    assert!(
        engine.cache_stats().hits >= 96,
        "server-side hit counter reflects the warm pass"
    );

    stop.store(true, Ordering::SeqCst);
    handle.join().expect("drain");
}

#[test]
fn overload_sheds_with_structured_busy() {
    // One worker, one queue slot, sixteen connections firing unique
    // cold requests: the pool must reject most submissions with the
    // structured `busy` status rather than queueing unboundedly.
    let (addr, _engine, stop, handle) = start(&EngineConfig {
        workers: 1,
        queue_cap: 1,
        ..EngineConfig::default()
    });
    let cfg = LoadgenConfig {
        conns: 16,
        requests: 32,
        hot_ratio: 0.0, // all cold: nothing coalesces, nothing hits
        hot_keys: 1,
        experiments: vec!["e2".to_owned()],
        seed: 5,
        trials: Some(20), // slow enough that the pool saturates
        fast: true,
        ..LoadgenConfig::default()
    };
    let plan = loadgen::plan(&cfg);
    let result = loadgen::run(addr, &cfg, &plan).expect("run completes");
    assert_eq!(result.errors, 0, "busy is structured, not an error");
    assert_eq!(result.ok + result.busy, 32, "every request is answered");
    assert!(
        result.busy > 0,
        "a saturated 1-worker/1-slot server must shed load (ok={})",
        result.ok
    );

    stop.store(true, Ordering::SeqCst);
    handle.join().expect("drain after overload");
}

#[test]
fn drain_finishes_inflight_work() {
    let (addr, engine, stop, handle) = start(&EngineConfig {
        workers: 2,
        queue_cap: 8,
        ..EngineConfig::default()
    });
    // Kick off a request, then immediately begin the drain while it
    // may still be running.
    let mut client = sim_serve::Client::connect(addr).expect("connect");
    let line = r#"{"experiment":"e2","seed":77,"trials":10,"params":{"fast":true}}"#;
    let t = std::thread::spawn(move || client.roundtrip(line).expect("served"));
    // Wait until the job is actually in the pool — stopping earlier
    // would legitimately answer `shutting_down` instead.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while engine.pool_stats().submitted == 0 {
        assert!(std::time::Instant::now() < deadline, "job never submitted");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, Ordering::SeqCst);
    let (header, body) = t.join().expect("client thread");
    assert!(header.is_ok(), "in-flight request completes through the drain");
    assert_eq!(body.len(), header.bytes);
    handle.join().expect("drain");
    assert_eq!(engine.cache_stats().insertions, 1, "the drained job was cached");
}
