//! Workspace-level facade for the Fisher–Kung reproduction.
//!
//! This crate exists to host the repository's integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library
//! surface lives in the member crates; [`vlsi_sync`] re-exports all of
//! them behind one roof.
//!
//! ```
//! use vlsi_sync_repro::prelude::*;
//!
//! let comm = CommGraph::linear(8);
//! assert_eq!(comm.node_count(), 8);
//! ```

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use array_layout::prelude::*;
    pub use clock_tree::prelude::*;
    pub use desim::prelude::*;
    pub use selftimed::prelude::*;
    pub use systolic::prelude::*;
    pub use vlsi_sync::prelude::*;
}
