//! End-to-end gate-level scenarios: the paper's synchronization
//! mechanisms exercised as actual circuits on the discrete-event
//! simulator, across crates.

use vlsi_sync_repro::prelude::*;

#[test]
fn muller_pipeline_has_selftimed_signature() {
    // Throughput independent of length, latency linear in it — the
    // Section I characterization of self-timing, at gate level.
    let short = MullerPipeline::new(8, SimTime::from_ps(100), SimTime::from_ps(50))
        .run(SimTime::from_ps(300_000));
    let long = MullerPipeline::new(64, SimTime::from_ps(100), SimTime::from_ps(50))
        .run(SimTime::from_ps(300_000));
    let ratio = long.period.as_ps() as f64 / short.period.as_ps() as f64;
    assert!((0.8..1.25).contains(&ratio), "{short:?} vs {long:?}");
    assert!(long.first_arrival.as_ps() > 4 * short.first_arrival.as_ps());
}

#[test]
fn clocked_chain_confirms_a5_in_gates() {
    // The analytic σ + δ + τ period is sufficient; below it, the
    // registers themselves flag the failure.
    let spec = ClockedChainSpec::default_chain();
    let safe = analytic_min_period(spec) + SimTime::from_ps(100);
    let ok = run_chain(spec, safe, 10);
    assert!(ok.clean(), "{ok:?}");
    let unsafe_period = SimTime::from_ps(analytic_min_period(spec).as_ps() - 130);
    let bad = run_chain(spec, unsafe_period, 10);
    assert!(!bad.clean(), "{bad:?}");
}

#[test]
fn element_pair_is_the_hybrid_scheme_in_gates() {
    let pair = ElementPair::new(2, SimTime::from_ps(50), SimTime::from_ps(80));
    let run = pair.run(SimTime::from_ps(250_000));
    // Lock step, alternating, violation-free: Fig. 8's discipline.
    assert!(run.ticks_a >= 100);
    assert!(run.ticks_a.abs_diff(run.ticks_b) <= 1);
    assert_eq!(run.violations, 0);
}

#[test]
fn elmore_quantifies_the_buffering_tradeoff() {
    // The RC story behind A6/A7: the same H-tree is quadratic-ish to
    // settle unbuffered and linear with repeaters.
    let rc = RcParams::new(1.0, 1.0, 0.5);
    let lens = [16.0, 32.0, 64.0, 128.0];
    let unbuf: Vec<f64> = lens.iter().map(|&l| unbuffered_line_delay(l, rc)).collect();
    let buf: Vec<f64> = lens
        .iter()
        .map(|&l| buffered_line_delay(l, 2.0, 1.0, rc))
        .collect();
    assert_eq!(
        classify_growth(&lens, &unbuf),
        GrowthClass::Superlinear,
        "{unbuf:?}"
    );
    assert_eq!(classify_growth(&lens, &buf), GrowthClass::Linear, "{buf:?}");
}

#[test]
fn vcd_export_round_trips_a_simulation() {
    let mut sim = Simulator::new();
    let clock = add_stoppable_clock(&mut sim, 2, SimTime::from_ps(50), SimTime::from_ps(80));
    sim.schedule_input(clock.enable, SimTime::from_ps(100), true);
    sim.run_until(SimTime::from_ps(10_000));
    let vcd = export_vcd(&sim, &[(clock.enable, "en"), (clock.clk, "clk")]);
    // Structure: header, two vars, dumpvars, and one timestamp per
    // distinct event time.
    assert!(vcd.contains("$timescale 1ps $end"));
    assert_eq!(vcd.matches("$var wire 1").count(), 2);
    let stamps = vcd.lines().filter(|l| l.starts_with('#')).count();
    assert!(stamps >= sim.transitions(clock.clk).len());
}

#[test]
fn ring_arrays_clock_like_linear_arrays() {
    // Theorem 3 extended to rings: folded layout + interleaved spine.
    let model = SummationModel::from_delay_model(WireDelayModel::new(1.0, 0.1));
    let mut skews = Vec::new();
    for n in [8usize, 64, 512] {
        let comm = CommGraph::ring(n);
        let layout = Layout::folded_ring(&comm);
        let tree = spine_ring(&comm, &layout);
        skews.push(model.max_skew(&tree, &comm));
    }
    assert!((skews[0] - skews[2]).abs() < 1e-9, "{skews:?}");
}

#[test]
fn hex_matmul_under_equalized_htree_is_faithful() {
    // The Fig. 3(c) workload under the Fig. 3(c) clocking: hexagonal
    // matmul driven by a tuned H-tree schedule.
    let a = vec![vec![2, -1, 3], vec![0, 4, 1], vec![-2, 5, -3]];
    let b = vec![vec![1, 2, 0], vec![3, -1, 2], vec![4, 0, -2]];
    let mut hm = HexMatMul::new(&a, &b);
    let comm = hm.comm().clone();
    let layout = Layout::grid(&comm);
    let clk = htree(&comm, &layout).equalized();
    let delays = WireDelayModel::new(0.02, 0.004);
    let timing = CellTiming::new(1.0, 2.0, 0.3, 0.2);
    let period = safe_period_for_tree(&clk, &comm, delays, timing).expect("no race");
    let schedule = worst_case_schedule(&clk, &comm, delays, period);
    let mut exec = SkewedExecutor::new(&comm, &schedule, timing);
    assert!(exec.is_faithful());
    let cycles = hm.cycles_needed();
    exec.run(&mut hm, cycles);
    assert_eq!(hm.product(), HexMatMul::reference(&a, &b));
}
