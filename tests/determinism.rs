//! The tentpole guarantee of the runtime rework: experiment reports
//! are **byte-identical for any worker count**. Every Monte-Carlo loop
//! derives trial `i`'s stream from `(seed, i)` alone, so
//! `--threads 1` and `--threads 4` must produce the same bytes — and
//! a different `--seed` must not.
//!
//! Runs the three sweep-heavy experiments (E1 skew fabrications, E5
//! metastability events, E6 chip yield) in `--fast` mode, then extends
//! the same guarantee to the **structured JSON reports**: the
//! deterministic core emitted by `--json` must be byte-identical for
//! `--threads 1/2/4` across all fourteen experiments (only the `run`
//! section — wall clock, worker stats — may differ). E12's
//! fault-injected sweep gets an explicit pin: seed-derived fault
//! draws must not depend on which worker executes a trial. E13's
//! time-varying fault episodes get the same treatment one level
//! deeper: the per-trial episode *schedules* themselves are
//! byte-compared across worker counts before any simulation runs.

use sim_runtime::{json_core, json_full, run_experiment, ExpConfig, Experiment, RunInfo};

fn report(exp: &dyn Experiment, threads: usize, seed: u64) -> String {
    let cfg = ExpConfig {
        threads,
        seed,
        ..ExpConfig::fast()
    };
    run_experiment(exp, &cfg).to_string()
}

fn assert_thread_count_invariant(exp: &dyn Experiment) {
    let base = report(exp, 1, 1);
    assert!(!base.is_empty(), "{} produced an empty report", exp.name());
    for threads in [2, 4] {
        assert_eq!(
            base,
            report(exp, threads, 1),
            "{}: threads=1 vs threads={threads} reports diverged",
            exp.name()
        );
    }
}

#[test]
fn e1_skew_monte_carlo_identical_across_thread_counts() {
    assert_thread_count_invariant(&bench::experiments::E1);
}

#[test]
fn e5_metastability_identical_across_thread_counts() {
    assert_thread_count_invariant(&bench::experiments::E5);
}

/// E6 now carries the flat-netlist sections — the 1,000,000-stage
/// pipelined clock train and the 1000×1000 mesh fault sweep — so this
/// pin covers the million-gate report bytes across worker counts, not
/// just the legacy sweeps.
#[test]
fn e6_million_gate_report_identical_across_thread_counts() {
    let exp = &bench::experiments::E6;
    let base = report(exp, 1, 1);
    assert!(
        base.contains("pipelined clock train, 1000000 stages"),
        "e6 report lost its 1M-stage netlist section"
    );
    assert!(
        base.contains("wavefront mesh, 1000x1000 cells"),
        "e6 report lost its mesh fault sweep"
    );
    for threads in [2, 4] {
        assert_eq!(
            base,
            report(exp, threads, 1),
            "e6: threads=1 vs threads={threads} reports diverged"
        );
    }
}

/// The deterministic JSON core (everything `--json` writes except the
/// volatile `run` section), pretty-printed — the bytes the regression
/// gate compares against committed baselines.
fn json_core_doc(exp: &dyn Experiment, threads: usize, seed: u64) -> String {
    let cfg = ExpConfig {
        threads,
        seed,
        ..ExpConfig::fast()
    };
    let report = run_experiment(exp, &cfg);
    json_core(exp, &cfg, &report).to_pretty()
}

#[test]
fn json_core_identical_across_thread_counts_for_every_experiment() {
    let registry = bench::registry();
    for exp in registry.iter() {
        let base = json_core_doc(exp, 1, 1);
        assert!(
            base.contains("\"schema\": \"vlsi-sync/experiment-report\""),
            "{}: core is missing the schema marker",
            exp.name()
        );
        for threads in [2, 4] {
            assert_eq!(
                base,
                json_core_doc(exp, threads, 1),
                "{}: JSON core diverged between threads=1 and threads={threads}",
                exp.name()
            );
        }
    }
}

#[test]
fn json_full_only_adds_the_run_section() {
    let exp = &bench::experiments::E3;
    let cfg = ExpConfig::fast();
    let report = run_experiment(exp, &cfg);
    let run = RunInfo {
        threads: 4,
        wall_ms: 12.5,
    };
    let core = json_core(exp, &cfg, &report);
    let full = json_full(exp, &cfg, &report, &run);
    let pairs = full.as_object().expect("report is an object");
    let stripped: Vec<_> = pairs.iter().filter(|(k, _)| k != "run").cloned().collect();
    assert_eq!(
        sim_observe::Json::Object(stripped),
        core,
        "full report must be the core plus exactly the run section"
    );
    assert!(full.get("run").is_some());
}

/// The deterministic trace portion (`Trace::to_text`: every sim-time
/// event, wall spans excluded) at a given worker count. The trace path
/// is never written here — setting it only turns the collectors on.
fn trace_text(exp: &dyn Experiment, threads: usize, seed: u64) -> String {
    let cfg = ExpConfig {
        threads,
        seed,
        trace: Some("unused.json".to_owned()),
        ..ExpConfig::fast()
    };
    run_experiment(exp, &cfg).trace().to_text()
}

#[test]
fn trace_text_identical_across_thread_counts_for_every_experiment() {
    let registry = bench::registry();
    for exp in registry.iter() {
        let base = trace_text(exp, 1, 1);
        assert!(
            base.starts_with("# sim-trace v1"),
            "{}: trace text missing header",
            exp.name()
        );
        for threads in [2, 4] {
            assert_eq!(
                base,
                trace_text(exp, threads, 1),
                "{}: trace text diverged between threads=1 and threads={threads}",
                exp.name()
            );
        }
    }
}

#[test]
fn tracing_never_changes_the_report_bytes() {
    for exp in [
        &bench::experiments::E1 as &dyn Experiment,
        &bench::experiments::E6,
    ] {
        let plain = report(exp, 2, 1);
        let cfg = ExpConfig {
            threads: 2,
            seed: 1,
            trace: Some("unused.json".to_owned()),
            ..ExpConfig::fast()
        };
        let traced = run_experiment(exp, &cfg).to_string();
        assert_eq!(plain, traced, "{}: --trace leaked into stdout", exp.name());
    }
}

#[test]
fn e12_fault_injected_report_and_trace_identical_across_thread_counts() {
    let exp = &bench::experiments::E12;
    // The stdout report: outcome tallies, retention columns and all.
    assert_thread_count_invariant(exp);
    // The trace: fault_injected markers land at identical sim times
    // regardless of which worker ran the trial that drew them.
    let base = trace_text(exp, 1, 1);
    assert!(
        base.contains("fault_injected"),
        "e12 trace must carry fault markers"
    );
    for threads in [2, 4] {
        assert_eq!(
            base,
            trace_text(exp, threads, 1),
            "e12: fault-injected trace diverged at threads={threads}"
        );
    }
}

/// The episode schedules behind e13, serialized per trial by a
/// [`ParallelSweep`] — the layer *below* the report. If this holds,
/// any report divergence across thread counts would have to come from
/// the simulation itself, never from the fault environment.
#[test]
fn e13_episode_schedules_identical_across_thread_counts() {
    use sim_faults::{EpisodeConfig, EpisodePlan};
    use sim_runtime::ParallelSweep;
    let cfg = EpisodeConfig {
        rate: 0.6,
        min_duration: 30,
        max_duration: 60,
        horizon: 240,
    };
    let schedules = |threads: usize| -> Vec<String> {
        ParallelSweep::new(threads).run_range(0..16, 7, |trial, _| {
            EpisodePlan::new(7, trial as u64, cfg)
                .schedule(64)
                .iter()
                .map(|ep| format!("{}@{}..{}", ep.site, ep.onset, ep.repair))
                .collect::<Vec<_>>()
                .join(";")
        })
    };
    let base = schedules(1);
    assert!(
        base.iter().any(|s| !s.is_empty()),
        "storm-rate config must actually schedule episodes"
    );
    for threads in [2, 4] {
        assert_eq!(
            base,
            schedules(threads),
            "episode schedules diverged between threads=1 and threads={threads}"
        );
    }
}

/// E13's recovery harness end-to-end: the stdout report (recovery
/// tables, latency quantiles) and the trace (episode onsets plus
/// violation/recovery spans, in sim-time order) must not depend on
/// the worker count.
#[test]
fn e13_recovery_report_and_trace_identical_across_thread_counts() {
    let exp = &bench::experiments::E13;
    assert_thread_count_invariant(exp);
    let base = trace_text(exp, 1, 1);
    assert!(
        base.contains("episode_onset"),
        "e13 trace must carry episode markers"
    );
    for threads in [2, 4] {
        assert_eq!(
            base,
            trace_text(exp, threads, 1),
            "e13: episode trace diverged at threads={threads}"
        );
    }
}

/// E14's topology scorecard end-to-end: the stdout report (geometry
/// tables, SDF corpus verdicts, attribution worked example) and the
/// skew-attribution trace must not depend on the worker count — the
/// Monte-Carlo band sampling inside the scorecard is the only
/// parallel stage, and it derives every trial from `(seed, trial)`.
#[test]
fn e14_topology_report_and_trace_identical_across_thread_counts() {
    let exp = &bench::experiments::E14;
    assert_thread_count_invariant(exp);
    let base = trace_text(exp, 1, 1);
    assert!(
        base.contains("skew_sample"),
        "e14 trace must carry skew-attribution samples"
    );
    for threads in [2, 4] {
        assert_eq!(
            base,
            trace_text(exp, threads, 1),
            "e14: attribution trace diverged at threads={threads}"
        );
    }
}

#[test]
fn different_seed_changes_the_e1_report() {
    let exp = &bench::experiments::E1;
    assert_ne!(
        report(exp, 1, 1),
        report(exp, 1, 2),
        "the seed must actually steer the Monte-Carlo streams"
    );
}
