//! The tentpole guarantee of the runtime rework: experiment reports
//! are **byte-identical for any worker count**. Every Monte-Carlo loop
//! derives trial `i`'s stream from `(seed, i)` alone, so
//! `--threads 1` and `--threads 4` must produce the same bytes — and
//! a different `--seed` must not.
//!
//! Runs the three sweep-heavy experiments (E1 skew fabrications, E5
//! metastability events, E6 chip yield) in `--fast` mode.

use sim_runtime::{run_experiment, ExpConfig, Experiment};

fn report(exp: &dyn Experiment, threads: usize, seed: u64) -> String {
    let cfg = ExpConfig {
        threads,
        seed,
        ..ExpConfig::fast()
    };
    run_experiment(exp, &cfg).to_string()
}

fn assert_thread_count_invariant(exp: &dyn Experiment) {
    let base = report(exp, 1, 1);
    assert!(!base.is_empty(), "{} produced an empty report", exp.name());
    for threads in [2, 4] {
        assert_eq!(
            base,
            report(exp, threads, 1),
            "{}: threads=1 vs threads={threads} reports diverged",
            exp.name()
        );
    }
}

#[test]
fn e1_skew_monte_carlo_identical_across_thread_counts() {
    assert_thread_count_invariant(&bench::experiments::E1);
}

#[test]
fn e5_metastability_identical_across_thread_counts() {
    assert_thread_count_invariant(&bench::experiments::E5);
}

#[test]
fn e6_fabrication_yield_identical_across_thread_counts() {
    assert_thread_count_invariant(&bench::experiments::E6);
}

#[test]
fn different_seed_changes_the_e1_report() {
    let exp = &bench::experiments::E1;
    assert_ne!(
        report(exp, 1, 1),
        report(exp, 1, 2),
        "the seed must actually steer the Monte-Carlo streams"
    );
}
