//! Differential suite: the flat netlist core (`crates/netlist`)
//! against the legacy reference engine (`desim`), on the shared
//! small-circuit suite both cores can build.
//!
//! Every circuit here is described once — as a
//! [`desim::chain::ChainStage`] list or a sealed arena mirrored via
//! [`netlist::mirror`] — and driven with identical stimuli in both
//! engines. The pinned contract is *byte identity* of everything the
//! reporting layer derives from a run: watched waveforms, VCD
//! exports, the full [`desim::engine::EngineStats`] counter set, and
//! the rendered metrics JSON (the deterministic core `--json`
//! publishes). Any divergence is an engine-semantics bug, not noise.

use desim::prelude::*;
use netlist::prelude::*;
use sim_faults::{FaultPlan, FaultRates, GateFault};
use std::sync::Arc;

fn ps(v: u64) -> SimTime {
    SimTime::from_ps(v)
}

/// The metrics-JSON bytes a report would carry for these counters.
fn metrics_bytes(stats: &desim::engine::EngineStats, sim_time: SimTime) -> String {
    let mut m = sim_observe::Metrics::new();
    stats.record(&mut m, "core");
    m.add("core.sim_time_ps", sim_time.as_ps());
    m.to_json().to_pretty()
}

/// e6-small: a 64-stage fabricated inverter string under a pipelined
/// clock train, compared tap by tap — waveforms, VCD bytes, counters,
/// and metrics bytes.
#[test]
fn e6_small_inverter_string_matches_reference_engine() {
    let spec = InverterStringSpec {
        stages: 64,
        ..InverterStringSpec::paper_chip(1)
    };
    let chip = InverterString::fabricate(spec);
    let stages = chip.chain_stages();

    let mut slow = Simulator::new();
    let s_nodes = build_chain(&mut slow, &stages);
    let mut nl = Netlist::new();
    let f_nodes = build_chain(&mut nl, &stages);
    let mut fast = NetSim::from_netlist(nl);

    let taps = [0usize, 16, 32, 48, 64];
    let mut named_slow = Vec::new();
    let mut named_fast = Vec::new();
    for &k in &taps {
        slow.watch(s_nodes[k]);
        fast.watch(f_nodes[k]);
        named_slow.push((s_nodes[k], format!("tap_{k}")));
        named_fast.push((f_nodes[k], format!("tap_{k}")));
    }

    let shrink = chip.worst_prefix_shrinkage_ps().unsigned_abs();
    let period = ps(2 * shrink + 8 * spec.base_delay.as_ps());
    let high = ps(period.as_ps() / 2);
    slow.schedule_clock(s_nodes[0], ps(10), period, high, 3);
    fast.schedule_clock(f_nodes[0], ps(10), period, high, 3);
    let limit = ps(10 + 3 * period.as_ps() + 4 * chip.total_delay_both_edges().as_ps());
    let slow_end = slow.run_to_quiescence(limit).expect("reference settles");
    let fast_end = fast.run_to_quiescence(limit).expect("netlist settles");
    assert_eq!(slow_end, fast_end, "quiescence times diverged");

    for (&k, (s_net, _)) in taps.iter().zip(&named_slow) {
        assert_eq!(
            fast.transitions(f_nodes[k]),
            slow.transitions(*s_net).to_vec(),
            "waveform at tap {k} diverged"
        );
    }
    // Every pipelined edge reached the far end in both engines.
    assert_eq!(fast.transitions(*f_nodes.last().unwrap()).len(), 6);

    let slow_named: Vec<(NetId, &str)> =
        named_slow.iter().map(|(n, s)| (*n, s.as_str())).collect();
    let fast_named: Vec<(WireId, &str)> =
        named_fast.iter().map(|(w, s)| (*w, s.as_str())).collect();
    assert_eq!(
        fast.export_vcd(&fast_named),
        export_vcd(&slow, &slow_named),
        "VCD bytes diverged"
    );
    assert_eq!(fast.stats(), slow.stats(), "engine counters diverged");
    assert_eq!(
        metrics_bytes(&fast.stats(), fast.now()),
        metrics_bytes(&slow.stats(), slow.now()),
        "metrics JSON bytes diverged"
    );
}

/// e2-small: the buffered clock spine of the clocked chain — the
/// arrival (skew) profile along the spine must match edge for edge.
#[test]
fn e2_small_clock_spine_skew_matches_reference_engine() {
    let spec = ClockedChainSpec::default_chain();
    let stages = spec.spine_stages();

    let mut slow = Simulator::new();
    let s_nodes = build_chain(&mut slow, &stages);
    let mut nl = Netlist::new();
    let f_nodes = build_chain(&mut nl, &stages);
    let mut fast = NetSim::from_netlist(nl);
    for (s, f) in s_nodes.iter().zip(&f_nodes) {
        slow.watch(*s);
        fast.watch(*f);
    }

    // Two full clock cycles into the spine root.
    for &(t, v) in &[(1_000, true), (6_000, false), (11_000, true), (16_000, false)] {
        slow.schedule_input(s_nodes[0], ps(t), v);
        fast.schedule_input(f_nodes[0], ps(t), v);
    }
    slow.run_until(ps(50_000));
    fast.run_until(ps(50_000));

    let mut prev_rise = None;
    for (k, (s, f)) in s_nodes.iter().zip(&f_nodes).enumerate() {
        let reference = slow.transitions(*s).to_vec();
        assert_eq!(
            fast.transitions(*f),
            reference,
            "spine tap {k} skew profile diverged"
        );
        // And the profile is the expected one: past the 1 ps root
        // buffer (node 0 is the raw input, node 1 the first tap),
        // each tap's first rise arrives one skew step after its
        // predecessor's.
        let rise = reference.first().expect("tap saw the clock").0;
        if let Some(prev) = prev_rise {
            if k >= 2 {
                assert_eq!(rise, prev + spec.skew_step, "tap {k} skew step wrong");
            }
        }
        prev_rise = Some(rise);
    }
    assert_eq!(fast.stats(), slow.stats(), "engine counters diverged");
}

/// e5-small: a fabricated one-shot string — pulse regeneration
/// timing, including the self-generated falling edges, must match.
#[test]
fn e5_small_one_shot_string_matches_reference_engine() {
    let spec = OneShotStringSpec {
        stages: 24,
        base_delay: ps(1_000),
        delay_std_ps: 60.0,
        pulse_width: ps(400),
        seed: 3,
    };
    let string = OneShotString::fabricate(spec);
    let stages = string.chain_stages();

    let mut slow = Simulator::new();
    let s_nodes = build_chain(&mut slow, &stages);
    let mut nl = Netlist::new();
    let f_nodes = build_chain(&mut nl, &stages);
    let mut fast = NetSim::from_netlist(nl);
    let taps = [1usize, 12, 24];
    for &k in &taps {
        slow.watch(s_nodes[k]);
        fast.watch(f_nodes[k]);
    }

    // A train of trigger pulses faster than the string's latency: the
    // one-shots regenerate width 400 ps pulses at every stage.
    for i in 0..4u64 {
        let t = 500 + i * 3_000;
        slow.schedule_input(s_nodes[0], ps(t), true);
        fast.schedule_input(f_nodes[0], ps(t), true);
        slow.schedule_input(s_nodes[0], ps(t + 150), false);
        fast.schedule_input(f_nodes[0], ps(t + 150), false);
    }
    let limit = ps(200_000);
    let slow_end = slow.run_to_quiescence(limit).expect("reference settles");
    let fast_end = fast.run_to_quiescence(limit).expect("netlist settles");
    assert_eq!(slow_end, fast_end);

    for &k in &taps {
        let reference = slow.transitions(s_nodes[k]).to_vec();
        assert!(
            reference.len() >= 8,
            "tap {k} should see every regenerated pulse"
        );
        assert_eq!(
            fast.transitions(f_nodes[k]),
            reference,
            "one-shot waveform at tap {k} diverged"
        );
    }
    assert_eq!(fast.stats(), slow.stats(), "engine counters diverged");
    assert_eq!(
        metrics_bytes(&fast.stats(), fast.now()),
        metrics_bytes(&slow.stats(), slow.now()),
        "metrics JSON bytes diverged"
    );
}

/// The fault path across layers: a compiled fault-word column applied
/// to the netlist core must leave the mesh in exactly the state the
/// reference engine reaches when the same words are replayed through
/// its per-net fault hooks.
#[test]
fn mesh_fault_words_match_reference_engine() {
    let mesh = MeshSpec::square(12, 5).build();
    let plan = FaultPlan::new(5, 0, FaultRates::uniform(0.05));
    let words = gate_fault_words(&plan, mesh.sealed());
    let window = mesh.settle_limit();

    let mut fast = NetSim::new(Arc::clone(mesh.sealed()));
    let summary = inject_fault_words(&mut fast, &words, window);
    assert!(summary.total() > 0, "the 5% plan should fault some gates");

    let (mut slow, map) = mirror_into_desim(mesh.sealed());
    for (g, word) in words.iter().enumerate() {
        let Some(fault) = word.unpack() else { continue };
        let out = net_of(&map, mesh.sealed().gate_output(GateId::from_index(g)));
        match fault {
            GateFault::StuckAt(v) => slow.pin_net(out, v),
            GateFault::Transient { at_frac } => {
                let t = (window.as_ps() as f64 * at_frac) as u64;
                slow.schedule_upset(out, ps(t));
            }
            GateFault::Delay { scale_pct } => {
                slow.scale_net_delay(out, scale_pct.clamp(1, 10_000));
            }
        }
    }

    fast.schedule_input(mesh.input(), ps(10), true);
    slow.schedule_input(net_of(&map, mesh.input()), ps(10), true);
    let fast_end = fast.run_to_quiescence(window).expect("netlist settles");
    let slow_end = slow.run_to_quiescence(window).expect("reference settles");
    assert_eq!(fast_end, slow_end);

    for k in 0..mesh.sealed().n_wires() {
        let w = WireId::from_index(k);
        assert_eq!(
            fast.value(w),
            slow.value(net_of(&map, w)),
            "wire {w} diverged under faults"
        );
    }
    assert_eq!(fast.stats(), slow.stats(), "engine counters diverged");
}
