//! Serve-determinism contract: the bytes a `sim-serve` server puts on
//! the wire are exactly the bytes the CLI's `--json` writes for the
//! same `(experiment, seed, trials, params)` — and a repeated request
//! is a *recorded* cache hit carrying the identical body.
//!
//! "CLI `--json` output" here means the deterministic core
//! (`sim_runtime::json_core`): `tests/determinism.rs` pins that the
//! full `--json` document minus its volatile `run` section equals the
//! core byte-for-byte, so matching the core *is* matching the CLI
//! output on every byte that is stable across runs. That equivalence
//! is what makes the server's cache sound: a cached body can never go
//! stale, because the same request can never produce different bytes.

use sim_runtime::{json_core, run_experiment};
use sim_serve::{Client, Engine, EngineConfig, Request, Server};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// What the CLI would emit (deterministic core) for a request.
fn cli_json_bytes(req: &Request) -> String {
    let registry = bench::registry();
    let exp = registry
        .get(&req.experiment)
        .expect("experiment is registered");
    let cfg = req.exp_config(1);
    let report = run_experiment(exp, &cfg);
    json_core(exp, &cfg, &report).to_pretty()
}

#[test]
fn served_e2_seed42_fast_is_byte_identical_to_cli_json() {
    let engine = Arc::new(Engine::new(
        Arc::new(bench::registry()),
        &EngineConfig::default(),
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));

    let mut client = Client::connect(addr).expect("connect");
    let line = r#"{"experiment":"e2","seed":42,"params":{"fast":true}}"#;

    let (h1, body1) = client.roundtrip(line).expect("first request");
    assert!(h1.is_ok());
    assert!(!h1.cached, "first request computes");

    let mut req = Request::new("e2");
    req.seed = 42;
    req.fast = true;
    assert_eq!(
        body1,
        cli_json_bytes(&req),
        "wire body must equal the CLI --json deterministic core"
    );

    // The repeat is a recorded hit with the identical body.
    let (h2, body2) = client.roundtrip(line).expect("repeat request");
    assert!(h2.cached, "repeat must be served from cache");
    assert_eq!(body1, body2, "cache hit must be byte-identical");
    assert_eq!(h1.key, h2.key, "same canonical request, same content key");
    assert_eq!(engine.cache_stats().hits, 1, "the hit was recorded");

    stop.store(true, Ordering::SeqCst);
    drop(client);
    handle.join().expect("drain");
}

#[test]
fn metrics_op_round_trips_and_quiet_scrapes_are_byte_identical() {
    use sim_observe::Json;

    let engine = Arc::new(Engine::new(
        Arc::new(bench::registry()),
        &EngineConfig::default(),
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));

    let mut client = Client::connect(addr).expect("connect");
    // Some traffic so the telemetry has something to report.
    for seed in [1, 2, 1] {
        let line =
            format!(r#"{{"experiment":"e2","seed":{seed},"trials":2,"params":{{"fast":true}}}}"#);
        let (h, _) = client.roundtrip(&line).expect("served");
        assert!(h.is_ok());
    }

    // The JSON body parses back under the same network limits the
    // server itself applies, and carries the schema + live counters.
    let (h, body) = client.roundtrip(r#"{"op":"metrics"}"#).expect("metrics");
    assert!(h.is_ok());
    assert_eq!(h.bytes, body.len());
    let doc = sim_observe::parse_with_limits(&body, sim_observe::ParseLimits::network())
        .expect("metrics body parses back");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(sim_serve::METRICS_SCHEMA)
    );
    let run_op = doc
        .get("run")
        .and_then(|r| r.get("ops"))
        .and_then(|o| o.get("run"))
        .expect("per-op telemetry for `run`");
    assert_eq!(run_op.get("requests"), Some(&Json::UInt(3)));
    assert!(run_op.get("slo").and_then(|s| s.get("attainment")).is_some());

    // The Prometheus exposition parses back line by line: every
    // non-comment line is `name[{labels}] value` with a float value.
    let (h, prom) = client
        .roundtrip(r#"{"op":"metrics","format":"prom"}"#)
        .expect("prom scrape");
    assert!(h.is_ok());
    let mut samples = 0;
    for line in prom.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("name value");
        assert!(!name.is_empty(), "{line}");
        assert!(value.parse::<f64>().is_ok(), "unparsable value in `{line}`");
        samples += 1;
    }
    assert!(samples > 10, "a real exposition has many samples, got {samples}");
    assert!(prom.contains(r#"serve_requests_total{op="run"} 3"#), "{prom}");

    // No-scrape-sampling contract: scraping records nothing, so two
    // quiet scrapes produce byte-identical bodies — JSON and prom.
    let (_, body2) = client.roundtrip(r#"{"op":"metrics"}"#).expect("quiet scrape");
    assert_eq!(body, body2, "quiet JSON scrapes must be byte-identical");
    let (_, prom2) = client
        .roundtrip(r#"{"op":"metrics","format":"prom"}"#)
        .expect("quiet prom scrape");
    assert_eq!(prom, prom2, "quiet prom scrapes must be byte-identical");

    stop.store(true, Ordering::SeqCst);
    drop(client);
    handle.join().expect("drain");
}

#[test]
fn every_registered_experiment_serves_cli_identical_bytes() {
    let engine = Arc::new(Engine::new(
        Arc::new(bench::registry()),
        &EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        },
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));

    let mut client = Client::connect(addr).expect("connect");
    for name in bench::registry().names() {
        // No trials override: each experiment's own fast-mode default
        // is the smallest size it guarantees to be well-posed at
        // (e.g. E5 needs enough trials to observe any events at all).
        let line = format!(
            r#"{{"experiment":"{name}","seed":7,"params":{{"fast":true}}}}"#
        );
        let (header, body) = client.roundtrip(&line).expect("served");
        assert!(header.is_ok(), "{name}: {:?}", header.error);

        let mut req = Request::new(name);
        req.seed = 7;
        req.fast = true;
        assert_eq!(
            body,
            cli_json_bytes(&req),
            "{name}: wire bytes diverged from the CLI core"
        );
        assert_eq!(header.key.as_deref(), Some(req.key().as_str()), "{name}: content key mismatch");
    }

    stop.store(true, Ordering::SeqCst);
    drop(client);
    handle.join().expect("drain");
}
