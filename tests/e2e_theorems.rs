//! End-to-end checks of the paper's theorem-level claims, spanning
//! the layout, clock, and core crates: the assertions behind
//! experiments E2, E3, E4, and E9.

use vlsi_sync_repro::prelude::*;

const DELAYS: f64 = 1.0;
const EPS: f64 = 0.1;

fn delay_model() -> WireDelayModel {
    WireDelayModel::new(DELAYS, EPS)
}

#[test]
fn theorem2_constant_period_for_all_three_families() {
    let dm = DifferenceModel::linear(DELAYS);
    let dist = Distribution::Pipelined {
        buffer_delay: 1.0,
        spacing: 2.0,
        unit_wire_delay: DELAYS,
    };
    for family in 0..3 {
        let mut periods = Vec::new();
        // Start at k=8: below that the tree's longest edge is shorter
        // than the buffer spacing, so τ is still climbing to its
        // (constant) asymptote.
        for k in [8usize, 16, 32] {
            let comm = match family {
                0 => CommGraph::linear(k * k),
                1 => CommGraph::mesh(k, k),
                _ => CommGraph::hex(k, k),
            };
            let layout = if family == 0 {
                Layout::comb(&comm, k)
            } else {
                Layout::grid(&comm)
            };
            let tree = htree(&comm, &layout).equalized();
            let sigma = dm.max_skew(&tree, &comm);
            assert!(sigma.abs() < 1e-9, "equalized tree must have zero d-skew");
            periods.push(clock_period(sigma, 2.0, dist.tau(&tree)));
        }
        for w in periods.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-9,
                "family {family}: period changed with size: {periods:?}"
            );
        }
    }
}

#[test]
fn theorem2_applies_to_skinny_arrays_via_embedding() {
    // The full Theorem 2 pipeline: a 2×k mesh (unbounded aspect ratio
    // as k grows) is folded into a near-square grid (the
    // Aleliunas–Rosenberg step), H-tree clocked, and delay-tuned —
    // yielding zero difference-model skew and a constant period.
    let dm = DifferenceModel::linear(DELAYS);
    let dist = Distribution::Pipelined {
        buffer_delay: 1.0,
        spacing: 2.0,
        unit_wire_delay: DELAYS,
    };
    let mut periods = Vec::new();
    for k in [32usize, 128, 512] {
        let comm = CommGraph::mesh(2, k);
        let embedding = GridEmbedding::fold(2, k);
        let layout = embedding.apply(&comm);
        assert!(layout.aspect_ratio() <= 4.0, "k={k}: embedding failed");
        let tree = htree(&comm, &layout).equalized();
        let sigma = dm.max_skew(&tree, &comm);
        assert!(sigma.abs() < 1e-9, "k={k}");
        periods.push(clock_period(sigma, 2.0, dist.tau(&tree)));
    }
    assert!(
        (periods[0] - periods[2]).abs() < 1e-9,
        "period grew with the skinny array: {periods:?}"
    );
}

#[test]
fn theorem3_spine_constant_for_all_linear_layouts() {
    let model = SummationModel::from_delay_model(delay_model());
    for n in [16usize, 128, 1024] {
        let comm = CommGraph::linear(n);
        for layout in [
            Layout::linear_row(&comm),
            Layout::folded_linear(&comm),
            Layout::comb(&comm, (n as f64).sqrt().max(1.0) as usize),
        ] {
            let tree = spine(&comm, &layout);
            let skew = model.max_skew(&tree, &comm);
            // Neighbour tree distance ≤ 2 in every layout (fold costs ≤ 2).
            assert!(
                skew <= model.pair_upper(&tree, CellId::new(0), CellId::new(0)) + 2.0 * 1.1 + 1e-9,
                "n={n}: skew {skew}"
            );
            assert!(skew <= 2.2 + 1e-9, "n={n}: skew {skew} not constant");
        }
    }
}

#[test]
fn section5b_every_strategy_grows_linearly_on_meshes() {
    let model = SummationModel::from_delay_model(delay_model());
    let sides = [4usize, 8, 16, 32];
    let mut best = Vec::new();
    for &n in &sides {
        let comm = CommGraph::mesh(n, n);
        let layout = Layout::grid(&comm);
        let candidates = [
            htree(&comm, &layout),
            htree(&comm, &layout).equalized(),
            serpentine(&comm, &layout),
            comb_tree(&comm, &layout),
        ];
        let min_skew = candidates
            .iter()
            .map(|t| model.max_guaranteed_skew(t, &comm))
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_skew >= mesh_skew_lower_bound(n, model.beta()),
            "n={n}: strategy beat the lower bound"
        );
        best.push(min_skew);
    }
    let xs: Vec<f64> = sides.iter().map(|&n| n as f64).collect();
    let class = classify_growth(&xs, &best);
    assert!(
        class == GrowthClass::Linear || class == GrowthClass::Superlinear,
        "best-strategy skew must grow linearly, got {class:?}"
    );
}

#[test]
fn theorem6_low_bisection_graphs_escape_the_bound() {
    // A binary-tree COMM graph (bisection width 1) can keep
    // communicating-pair skew bounded by its longest edge even as N
    // grows — no Ω(n) forcing as on the mesh.
    let model = SummationModel::from_delay_model(delay_model());
    for levels in [4usize, 6, 8] {
        let comm = CommGraph::complete_binary_tree(levels);
        let layout = Layout::htree_tree(&comm);
        let clk = mirror_tree(&comm, &layout);
        let measured = model.max_guaranteed_skew(&clk, &comm);
        // Skew equals β × longest layout edge (clock follows data).
        let longest = layout.max_wire_length();
        assert!(
            (measured - model.beta() * longest).abs() < 1e-9,
            "levels={levels}"
        );
        let bound = theorem6_bound_for(&comm, model.beta()).expect("known width");
        assert!(measured >= bound, "levels={levels}");
    }
}

#[test]
fn a6_vs_a7_distribution_times() {
    let pipelined = Distribution::Pipelined {
        buffer_delay: 1.0,
        spacing: 2.0,
        unit_wire_delay: 1.0,
    };
    let mut equi_prev = 0.0;
    for n in [8usize, 16, 32] {
        let comm = CommGraph::mesh(n, n);
        let layout = Layout::grid(&comm);
        let tree = htree(&comm, &layout);
        let equi = Distribution::Equipotential { alpha: 1.0 }.tau(&tree);
        let pipe = pipelined.tau(&tree);
        assert!(equi > equi_prev, "equipotential tau must grow");
        assert!(pipe <= 3.0 + 1e-9, "pipelined tau must stay constant");
        equi_prev = equi;
    }
}

#[test]
fn circle_certificate_consistent_on_various_sizes() {
    let model = SummationModel::from_delay_model(delay_model());
    for n in [6usize, 10, 16] {
        let comm = CommGraph::mesh(n, n);
        let layout = Layout::grid(&comm);
        let tree = htree(&comm, &layout);
        let cert = circle_certificate(&comm, &layout, &tree, &model);
        assert!(cert.sigma >= mesh_skew_lower_bound(n, model.beta()), "n={n}");
        assert!(cert.radius * model.beta() <= cert.sigma + 1e-9);
    }
}
