//! API contracts across the workspace: thread-safety markers and
//! trait implementations that the Rust API guidelines require of
//! library types (C-SEND-SYNC, C-COMMON-TRAITS, C-GOOD-ERR).

use vlsi_sync_repro::prelude::*;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_error<T: std::error::Error>() {}

#[test]
fn core_data_types_are_send_and_sync() {
    assert_send_sync::<CommGraph>();
    assert_send_sync::<Layout>();
    assert_send_sync::<Point>();
    assert_send_sync::<ClockTree>();
    assert_send_sync::<WireDelayModel>();
    assert_send_sync::<SummationModel>();
    assert_send_sync::<DifferenceModel>();
    assert_send_sync::<Simulator>();
    assert_send_sync::<SimTime>();
    assert_send_sync::<InverterString>();
    assert_send_sync::<ClockSchedule>();
    assert_send_sync::<CellTiming>();
    assert_send_sync::<SystolicFir>();
    assert_send_sync::<SystolicMatMul>();
    assert_send_sync::<HexMatMul>();
    assert_send_sync::<HandshakeLink>();
    assert_send_sync::<HybridArray>();
    assert_send_sync::<SelfTimedArray>();
    assert_send_sync::<MetastabilityModel>();
    assert_send_sync::<AnalysisParams>();
    assert_send_sync::<SyncScheme>();
    assert_send_sync::<SchemeReport>();
}

#[test]
fn error_types_implement_error() {
    assert_error::<ValidateLayoutError>();
    assert_error::<StillActiveError>();
    assert_error::<HoldRaceError>();
}

#[test]
fn ids_have_value_semantics() {
    // Copy + Eq + Ord + Hash: usable as map keys and sortable.
    let a = CellId::new(3);
    let b = a;
    assert_eq!(a, b);
    assert!(CellId::new(1) < CellId::new(2));
    let mut set = std::collections::HashSet::new();
    set.insert(a);
    assert!(set.contains(&b));
    let n = NodeId::new(7);
    assert_eq!(format!("{n}"), "n7");
    assert_eq!(format!("{a}"), "c3");
}

#[test]
fn display_impls_are_informative() {
    assert_eq!(format!("{}", SimTime::from_ps(1500)), "1.500ns");
    let err = StillActiveError {
        limit: SimTime::from_ps(500),
    };
    assert!(format!("{err}").contains("500"));
    let layout_err = ValidateLayoutError::CellCountMismatch { layout: 3, graph: 4 };
    assert!(format!("{layout_err}").contains('3'));
}

#[test]
fn debug_impls_are_non_empty() {
    assert!(!format!("{:?}", CommGraph::linear(2)).is_empty());
    assert!(!format!("{:?}", WireDelayModel::default()).is_empty());
    assert!(!format!("{:?}", Simulator::new()).is_empty());
    assert!(!format!("{:?}", SummationModel::from_delay_model(WireDelayModel::default())).is_empty());
}

#[test]
fn default_impls_are_usable() {
    let params = AnalysisParams::default();
    assert!(params.delta > 0.0);
    let model = WireDelayModel::default();
    assert!(model.nominal() > 0.0);
    let t = SimTime::default();
    assert_eq!(t, SimTime::ZERO);
}
