//! End-to-end checks of the experiment claims: every registered
//! experiment binary run through its `--fast` path, plus direct
//! library-level checks of the Section VII inverter-string trial (E6),
//! the self-timed advantage analysis (E7), and the hybrid scheme
//! comparison (E5) — at sizes small enough for the test suite.

use vlsi_sync_repro::prelude::*;

/// Drives every experiment exactly as `eN --fast` does. Each report
/// must render non-empty and mention its paper reference, so a broken
/// migration of any binary fails here rather than only at `cargo run`.
#[test]
fn every_registered_experiment_runs_fast() {
    use sim_runtime::{run_experiment, ExpConfig};
    let registry = bench::registry();
    assert_eq!(
        registry.names(),
        [
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
            "e14"
        ]
    );
    for exp in registry.iter() {
        let report = run_experiment(exp, &ExpConfig::fast());
        assert!(
            !report.as_str().trim().is_empty(),
            "{} produced an empty --fast report",
            exp.name()
        );
    }
}

/// The tentpole guarantee of the trace layer, end to end: every
/// experiment's `--fast` trace passes the invariant checker (two-phase
/// non-overlap, handshake ordering, monotone per-lane time, schedule
/// causality, span balance), and the Perfetto export round-trips to
/// byte-identical JSON.
#[test]
fn every_fast_trace_is_checker_clean_and_perfetto_round_trips() {
    use sim_runtime::{run_experiment, ExpConfig};
    let registry = bench::registry();
    for exp in registry.iter() {
        let cfg = ExpConfig {
            trace: Some("unused.json".to_owned()),
            ..ExpConfig::fast()
        };
        let report = run_experiment(exp, &cfg);
        let trace = report.trace();
        assert!(
            trace.event_count() > 0,
            "{}: tracing produced no sim-time events",
            exp.name()
        );
        let check = sim_observe::check_trace(trace);
        assert!(
            check.violations.is_empty(),
            "{}: trace checker found violations: {:?}",
            exp.name(),
            check.violations
        );
        let perfetto = trace.to_perfetto().to_pretty();
        let reparsed = sim_observe::json::parse(&perfetto).expect("perfetto JSON parses");
        let round = sim_observe::Trace::from_perfetto(&reparsed).expect("round-trips");
        assert_eq!(
            round.to_perfetto().to_pretty(),
            perfetto,
            "{}: Perfetto export is not a fixed point under reparse",
            exp.name()
        );
        assert_eq!(
            round.to_text(),
            trace.to_text(),
            "{}: deterministic text diverged after the round-trip",
            exp.name()
        );
    }
}

#[test]
fn inverter_string_speedup_regime() {
    // A scaled-down paper chip (256 stages) must already show a
    // substantial pipelined speedup with the same bias ratio.
    let spec = InverterStringSpec {
        stages: 256,
        ..InverterStringSpec::paper_chip(1)
    };
    let result = InverterString::fabricate(spec).run(4);
    assert!(
        result.speedup() > 20.0,
        "speedup {} too small",
        result.speedup()
    );
    assert!(result.equipotential_cycle > result.pipelined_cycle);
}

#[test]
fn equipotential_cycle_scales_linearly_pipelined_does_not() {
    let run = |stages: usize| {
        let spec = InverterStringSpec {
            stages,
            bias_ps: 0,
            discrepancy_std_ps: 0.0,
            base_delay: SimTime::from_ps(1_000),
            seed: 1,
        };
        InverterString::fabricate(spec).run(4)
    };
    let (r64, r256) = (run(64), run(256));
    let equi_ratio =
        r256.equipotential_cycle.as_ps() as f64 / r64.equipotential_cycle.as_ps() as f64;
    assert!((equi_ratio - 4.0).abs() < 0.2, "equi ratio {equi_ratio}");
    assert_eq!(
        r64.pipelined_cycle, r256.pipelined_cycle,
        "ideal unbiased pipelined cycle must not depend on length"
    );
}

#[test]
fn selftimed_advantage_decays_with_array_size() {
    let adv = |k: usize| {
        PipelineModel::new(k, 1.0, 2.0, 0.9)
            .simulate(400, 11)
            .advantage()
    };
    assert!(adv(1) > adv(64));
    // The paper's probability formula.
    let m = PipelineModel::new(64, 1.0, 2.0, 0.9);
    assert!(m.worst_case_path_probability() > 0.99);
}

#[test]
fn hybrid_constant_while_global_schemes_grow() {
    let params = AnalysisParams::default();
    let link = HandshakeLink::new(1.0, 0.5, Protocol::TwoPhase);
    let hybrid = SyncScheme::Hybrid(HybridParams::new(4, params.delta, 1.0, 0.1, link));
    let equi = SyncScheme::GlobalEquipotential { alpha: 1.0 };
    let (xs, hybrid_curve) = mesh_period_sweep(&hybrid, &[8, 16, 32, 64], &params);
    let (_, equi_curve) = mesh_period_sweep(&equi, &[8, 16, 32, 64], &params);
    assert_eq!(classify_growth(&xs, &hybrid_curve), GrowthClass::Constant);
    assert_eq!(classify_growth(&xs, &equi_curve), GrowthClass::Linear);
    // And at every size the hybrid is at least as fast beyond the
    // crossover.
    assert!(hybrid_curve.last() < equi_curve.last());
}

#[test]
fn handshake_throughput_size_independent() {
    let link = HandshakeLink::new(1.0, 0.5, Protocol::FourPhase);
    let short = HandshakeChain::new(8, link, 1.0).run(30);
    let long = HandshakeChain::new(512, link, 1.0).run(30);
    assert!((short.period - long.period).abs() < 1e-9);
    assert!(long.latency > short.latency);
}

#[test]
fn stoppable_clock_eliminates_metastability() {
    let meta = MetastabilityModel::new(0.1, 0.4);
    assert!(meta.count_naive_failures(100_000, 8.0, 5) > 0);
    assert_eq!(meta.count_stoppable_clock_failures(100_000), 0);
    // And the analytic failure probability decays exponentially in
    // settle slack.
    assert!(meta.failure_probability(8.0, 2.0) < meta.failure_probability(8.0, 0.5));
}

#[test]
fn scheme_reports_decompose_per_a5() {
    let params = AnalysisParams::default();
    let comm = CommGraph::mesh(16, 16);
    let layout = Layout::grid(&comm);
    for scheme in [
        SyncScheme::GlobalEquipotential { alpha: 1.0 },
        SyncScheme::PipelinedDifference {
            buffer_delay: 1.0,
            spacing: 2.0,
        },
        SyncScheme::PipelinedSummation {
            buffer_delay: 1.0,
            spacing: 2.0,
        },
    ] {
        let r = analyze(&comm, &layout, &scheme, &params);
        assert!(
            (r.period - (r.sigma + r.delta + r.tau)).abs() < 1e-9,
            "{}: period must be sigma+delta+tau",
            r.scheme
        );
    }
}
