//! End-to-end: clock trees driving real systolic computations — the
//! functional consequences of the paper's timing theory.
//!
//! Safe schedules derived from real clock trees reproduce the ideal
//! lock-step results exactly; schedules violating the A5 period or
//! carrying hold races corrupt them; stretching the period per A5
//! repairs setup failures but never hold races.

use vlsi_sync_repro::prelude::*;

fn timing() -> CellTiming {
    CellTiming::new(1.0, 2.0, 0.3, 0.2)
}

#[test]
fn spine_clocked_sort_matches_ideal() {
    let values: Vec<i64> = (0..24).map(|i| (i * 13) % 29 - 14).collect();
    let mut sorter = OddEvenSorter::new(&values);
    let comm = sorter.comm().clone();
    let layout = Layout::linear_row(&comm);
    let clk = spine(&comm, &layout);
    let delays = WireDelayModel::new(0.1, 0.02);
    let period = safe_period_for_tree(&clk, &comm, delays, timing()).expect("no race");
    let schedule = worst_case_schedule(&clk, &comm, delays, period);
    let mut exec = SkewedExecutor::new(&comm, &schedule, timing());
    assert!(exec.is_faithful());
    let cycles = sorter.cycles_needed();
    exec.run(&mut sorter, cycles);
    let mut expected = values;
    expected.sort_unstable();
    assert_eq!(sorter.values(), expected);
}

#[test]
fn htree_clocked_matmul_matches_ideal() {
    let n = 6;
    let a: Vec<Vec<i64>> = (0..n)
        .map(|i| (0..n).map(|j| ((i + 2 * j) % 9) as i64 - 4).collect())
        .collect();
    let b: Vec<Vec<i64>> = (0..n)
        .map(|i| (0..n).map(|j| ((i * j + 1) % 5) as i64 - 2).collect())
        .collect();
    let mut mm = SystolicMatMul::new(&a, &b);
    let comm = mm.comm().clone();
    let layout = Layout::grid(&comm);
    let clk = htree(&comm, &layout).equalized();
    let delays = WireDelayModel::new(0.05, 0.01);
    let period = safe_period_for_tree(&clk, &comm, delays, timing()).expect("no race");
    let schedule = worst_case_schedule(&clk, &comm, delays, period);
    let mut exec = SkewedExecutor::new(&comm, &schedule, timing());
    assert!(exec.is_faithful());
    let cycles = mm.cycles_needed();
    exec.run(&mut mm, cycles);
    assert_eq!(mm.product(), SystolicMatMul::reference(&a, &b));
}

#[test]
fn too_short_period_breaks_the_computation_and_a5_fixes_it() {
    let weights = [1, 2, 3, 4];
    let xs: Vec<i64> = (0..20).map(|i| i % 7 - 3).collect();
    let expected = SystolicFir::reference(&weights, &xs);

    // A schedule whose sender clocks lag: needs a long period.
    let offsets = vec![0.6, 0.4, 0.2, 0.0];
    let comm = SystolicFir::new(&weights, &xs).comm().clone();
    let needed = min_safe_period(&comm, &offsets, timing()).expect("no race");

    // Run below the A5 period: setup failures corrupt the output.
    let mut fir_fast = SystolicFir::new(&weights, &xs);
    let fast = ClockSchedule::new(offsets.clone(), needed - 0.2);
    let mut exec_fast = SkewedExecutor::new(&comm, &fast, timing());
    assert!(!exec_fast.is_faithful());
    let cycles = fir_fast.cycles_needed();
    exec_fast.run(&mut fir_fast, cycles);
    assert_ne!(fir_fast.outputs(), expected);

    // At the A5 period: clean.
    let mut fir_ok = SystolicFir::new(&weights, &xs);
    let ok = ClockSchedule::new(offsets, needed);
    let mut exec_ok = SkewedExecutor::new(&comm, &ok, timing());
    assert!(exec_ok.is_faithful());
    let cycles = fir_ok.cycles_needed();
    exec_ok.run(&mut fir_ok, cycles);
    assert_eq!(fir_ok.outputs(), expected);
}

#[test]
fn hold_race_cannot_be_fixed_by_any_period() {
    // Receiver clocked much later than sender: hold race on the
    // forward edge. min_safe_period refuses; even a huge period still
    // classifies the edge as racing.
    let comm = CommGraph::linear(3);
    let offsets = vec![0.0, 2.0, 4.0];
    let err = min_safe_period(&comm, &offsets, timing()).unwrap_err();
    assert!(err.skew >= 2.0);
    let huge = ClockSchedule::new(offsets, 1_000.0);
    let statuses = classify_edges(&comm, &huge, timing());
    assert!(statuses.contains(&TransferStatus::HoldViolation));

    // The paper's fix: add delay to the circuits (raise delta_min).
    let padded = CellTiming::new(5.0, 6.0, 0.3, 0.2);
    let period = min_safe_period(&comm, &[0.0, 2.0, 4.0], padded).expect("padding fixes races");
    assert!(period > 0.0);
}

#[test]
fn tree_machine_under_mirror_clock_is_faithful() {
    let keys: Vec<i64> = (0..16).map(|i| 3 * i).collect();
    let queries: Vec<i64> = (0..30).collect();
    let expected = TreeSearchMachine::search(&keys, &queries);

    let mut machine = TreeSearchMachine::new(&keys, &queries);
    let comm = machine.comm().clone();
    let layout = Layout::htree_tree(&comm);
    let clk = mirror_tree(&comm, &layout);
    // Scale wire delays down so the skew between parent and child
    // stays below the hold threshold (the paper's bounded-delay δ
    // assumption on tree edges after pipelining).
    let delays = WireDelayModel::new(0.05, 0.01);
    let period = safe_period_for_tree(&clk, &comm, delays, timing()).expect("no race");
    let schedule = worst_case_schedule(&clk, &comm, delays, period);
    let mut exec = SkewedExecutor::new(&comm, &schedule, timing());
    assert!(exec.is_faithful());
    let cycles = machine.cycles_needed(queries.len());
    exec.run(&mut machine, cycles);
    assert_eq!(machine.answers(), expected);
}

#[test]
fn matvec_under_uniform_clock() {
    let a: Vec<Vec<i64>> = (0..5)
        .map(|i| (0..7).map(|j| ((i * 7 + j) % 13) as i64 - 6).collect())
        .collect();
    let x: Vec<i64> = (0..7).map(|i| i - 3).collect();
    let mut mv = SystolicMatVec::new(&a, &x);
    let comm = mv.comm().clone();
    let schedule = ClockSchedule::uniform(comm.node_count(), 3.0);
    let mut exec = SkewedExecutor::new(&comm, &schedule, timing());
    assert!(exec.is_faithful());
    let cycles = mv.cycles_needed();
    exec.run(&mut mv, cycles);
    assert_eq!(mv.accumulators(), SystolicMatVec::reference(&a, &x));
}
