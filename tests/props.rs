//! Randomized property suite over the workspace's core invariants:
//! systolic algorithms against direct references, skew algebra on
//! random trees, layout invariants, and engine determinism.
//!
//! Formerly proptest-based; now a std-only deterministic sweep driven
//! by [`SimRng`] so the default feature set stays free of crates.io
//! dependencies. Each property runs `CASES` seeded cases; case `i` of
//! property `tag` always sees `SimRng::for_trial(tag, i)`, so failures
//! reproduce exactly. Gated behind `--features heavy-tests` (the suite
//! is the slowest in the repo).
#![cfg(feature = "heavy-tests")]

use sim_runtime::{Rng, SimRng};
use vlsi_sync_repro::prelude::*;

const CASES: u64 = 48;

/// One deterministic RNG per case of the named property.
fn cases(tag: u64) -> impl Iterator<Item = (u64, SimRng)> {
    (0..CASES).map(move |i| (i, SimRng::for_trial(tag, i)))
}

fn gen_vec(rng: &mut SimRng, len: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

// ---------------- systolic algorithms == references ----------------

#[test]
fn fir_equals_direct_convolution() {
    for (_, mut rng) in cases(1) {
        let wlen = rng.gen_range(1usize..8);
        let weights = gen_vec(&mut rng, wlen, -50, 50);
        // Ensure xs is at least as long as weights.
        let mut xs = weights.clone();
        let extra = rng.gen_range(0usize..24);
        xs.extend(gen_vec(&mut rng, extra, -50, 50));
        assert_eq!(
            SystolicFir::convolve(&weights, &xs),
            SystolicFir::reference(&weights, &xs)
        );
    }
}

#[test]
fn matvec_equals_direct_product() {
    for (_, mut rng) in cases(2) {
        let rows = rng.gen_range(1usize..6);
        let cols = rng.gen_range(1usize..6);
        let a: Vec<Vec<i64>> = (0..rows).map(|_| gen_vec(&mut rng, cols, -11, 12)).collect();
        let x = gen_vec(&mut rng, cols, -8, 9);
        assert_eq!(
            SystolicMatVec::multiply(&a, &x),
            SystolicMatVec::reference(&a, &x)
        );
    }
}

#[test]
fn matmul_equals_direct_product() {
    for (_, mut rng) in cases(3) {
        let n = rng.gen_range(1usize..5);
        let k = rng.gen_range(1usize..5);
        let m = rng.gen_range(1usize..5);
        let a: Vec<Vec<i64>> = (0..n).map(|_| gen_vec(&mut rng, k, -9, 10)).collect();
        let b: Vec<Vec<i64>> = (0..k).map(|_| gen_vec(&mut rng, m, -6, 7)).collect();
        assert_eq!(
            SystolicMatMul::multiply(&a, &b),
            SystolicMatMul::reference(&a, &b)
        );
    }
}

#[test]
fn sort_returns_sorted_permutation() {
    for (_, mut rng) in cases(4) {
        let len = rng.gen_range(1usize..24);
        let values = gen_vec(&mut rng, len, -1000, 1000);
        let sorted = OddEvenSorter::sort(&values);
        let mut expected = values.clone();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
    }
}

#[test]
fn tree_search_answers_membership() {
    for (_, mut rng) in cases(5) {
        let levels = rng.gen_range(1u32..5);
        let leaves = 1usize << levels;
        let offset = rng.gen_range(0i64..100);
        let keys: Vec<i64> = (0..leaves as i64).map(|i| (i * 7 + offset) % 64).collect();
        let qlen = rng.gen_range(1usize..20);
        let queries = gen_vec(&mut rng, qlen, 0, 64);
        let answers = TreeSearchMachine::search(&keys, &queries);
        for (q, found) in queries.iter().zip(&answers) {
            assert_eq!(*found, keys.contains(q), "query {q}");
        }
    }
}

// ---------------- skew algebra on random spines/trees ----------------

#[test]
fn skew_bounds_hold_on_random_linear_arrays() {
    for (_, mut rng) in cases(6) {
        let n = rng.gen_range(2usize..40);
        let eps_percent = rng.gen_range(1u32..50);
        let comm = CommGraph::linear(n);
        let layout = Layout::linear_row(&comm);
        let tree = htree(&comm, &layout);
        let model = WireDelayModel::new(1.0, f64::from(eps_percent) / 100.0);
        let rates = model.sample_rates(&tree, &mut rng);
        let arrivals = clock_tree::skew::ArrivalTimes::from_rates(&tree, &rates);
        for (a, b) in comm.communicating_pairs() {
            let observed = arrivals.skew(&tree, a, b);
            let worst = worst_case_skew(&tree, model, a, b);
            assert!(observed <= worst + 1e-9, "pair ({a},{b}): {observed} > {worst}");
        }
    }
}

#[test]
fn summation_lower_bound_below_upper_everywhere() {
    for (_, mut rng) in cases(7) {
        let rows = rng.gen_range(2usize..6);
        let cols = rng.gen_range(2usize..6);
        let comm = CommGraph::mesh(rows, cols);
        let layout = Layout::grid(&comm);
        let tree = htree(&comm, &layout);
        let model = SummationModel::from_delay_model(WireDelayModel::new(1.0, 0.2));
        for (a, b) in comm.communicating_pairs() {
            assert!(model.pair_lower(&tree, a, b) <= model.pair_upper(&tree, a, b) + 1e-9);
        }
        assert!(model.max_guaranteed_skew(&tree, &comm) <= model.max_skew(&tree, &comm) + 1e-9);
    }
}

// ---------------- layout invariants ----------------

#[test]
fn linear_layouts_validate_and_bound_wires() {
    for (_, mut rng) in cases(8) {
        let n = rng.gen_range(1usize..60);
        let tooth = rng.gen_range(1usize..12);
        let comm = CommGraph::linear(n);
        for layout in [
            Layout::linear_row(&comm),
            Layout::folded_linear(&comm),
            Layout::comb(&comm, tooth),
        ] {
            assert!(layout.validate(&comm).is_ok());
            assert!(layout.max_wire_length() <= 2.0 + 1e-9);
        }
    }
}

#[test]
fn htree_attaches_all_cells_on_any_grid() {
    for (_, mut rng) in cases(9) {
        let rows = rng.gen_range(1usize..8);
        let cols = rng.gen_range(1usize..8);
        let comm = CommGraph::mesh(rows, cols);
        let layout = Layout::grid(&comm);
        let tree = htree(&comm, &layout);
        assert!(tree.validate().is_ok());
        assert_eq!(tree.attached_cells().len(), rows * cols);
        // Equalization zeroes the difference metric for every pair.
        let tuned = tree.equalized();
        for (a, b) in comm.communicating_pairs() {
            assert!(tuned.difference_distance(a, b) < 1e-9);
        }
    }
}

#[test]
fn fold_embedding_injective_and_bounded() {
    for (_, mut rng) in cases(10) {
        let rows = rng.gen_range(1usize..5);
        let cols = rng.gen_range(1usize..40);
        let e = GridEmbedding::fold(rows, cols);
        let mut seen = std::collections::HashSet::new();
        for r in 0..rows {
            for c in 0..cols {
                assert!(seen.insert(e.image(r, c)), "collision at ({r},{c})");
            }
        }
        assert!(e.area_overhead() < 2.0 + 1e-9);
    }
}

// ---------------- more algorithms ----------------

#[test]
fn horner_equals_direct_evaluation() {
    for (_, mut rng) in cases(11) {
        let clen = rng.gen_range(1usize..7);
        let coeffs = gen_vec(&mut rng, clen, -20, 20);
        let plen = rng.gen_range(0usize..12);
        let points = gen_vec(&mut rng, plen, -10, 10);
        assert_eq!(
            SystolicHorner::evaluate(&coeffs, &points),
            SystolicHorner::reference(&coeffs, &points)
        );
    }
}

#[test]
fn priority_queue_matches_heap() {
    use std::collections::BinaryHeap;
    for (_, mut rng) in cases(12) {
        let olen = rng.gen_range(1usize..40);
        let op_codes: Vec<u8> = (0..olen).map(|_| rng.gen_range(0u8..100)).collect();
        // Derive a legal op sequence from the raw codes.
        let mut live = 0usize;
        let ops: Vec<PqOp> = op_codes
            .iter()
            .map(|&c| {
                if live > 0 && c < 45 {
                    live -= 1;
                    PqOp::ExtractMin
                } else {
                    live += 1;
                    PqOp::Insert(i64::from(c) * 7 % 50 - 25)
                }
            })
            .collect();
        let mut heap = BinaryHeap::new();
        let mut expected = Vec::new();
        for op in &ops {
            match op {
                PqOp::Insert(v) => heap.push(std::cmp::Reverse(*v)),
                PqOp::ExtractMin => expected.push(heap.pop().map(|r| r.0)),
            }
        }
        assert_eq!(SystolicPriorityQueue::run_ops(ops.len() + 1, &ops), expected);
    }
}

#[test]
fn hex_matmul_equals_direct_product() {
    for (_, mut rng) in cases(13) {
        let n = rng.gen_range(1usize..4);
        let a: Vec<Vec<i64>> = (0..n).map(|_| gen_vec(&mut rng, n, -8, 9)).collect();
        let b: Vec<Vec<i64>> = (0..n).map(|_| gen_vec(&mut rng, n, -6, 7)).collect();
        assert_eq!(HexMatMul::multiply(&a, &b), HexMatMul::reference(&a, &b));
    }
}

#[test]
fn trisolve_equals_forward_substitution() {
    for (_, mut rng) in cases(14) {
        let n = rng.gen_range(1usize..12);
        let w = rng.gen_range(1usize..5).min(n);
        let mut l = vec![vec![0i64; n]; n];
        for (i, row) in l.iter_mut().enumerate() {
            row[i] = 1;
            let lo = i.saturating_sub(w - 1);
            for cell in &mut row[lo..i] {
                *cell = rng.gen_range(-5i64..=5);
            }
        }
        let b: Vec<i64> = (0..n).map(|_| rng.gen_range(-30i64..=30)).collect();
        assert_eq!(SystolicTriSolve::solve(&l, &b, w), SystolicTriSolve::reference(&l, &b));
    }
}

#[test]
fn ring_spine_skew_constant() {
    for (_, mut rng) in cases(15) {
        let n = rng.gen_range(3usize..200);
        let comm = CommGraph::ring(n);
        let layout = Layout::folded_ring(&comm);
        let tree = spine_ring(&comm, &layout);
        let model = SummationModel::from_delay_model(WireDelayModel::new(1.0, 0.1));
        assert!(model.max_skew(&tree, &comm) <= 5.5 + 1e-9);
    }
}

#[test]
fn relayed_tree_machine_correct_for_any_spacing() {
    use systolic::relay::Relayed;
    for (_, mut rng) in cases(16) {
        let spacing_tenths = rng.gen_range(10u32..60);
        let levels = rng.gen_range(1u32..4);
        let leaves = 1usize << levels;
        let keys: Vec<i64> = (0..leaves as i64).map(|i| 2 * i).collect();
        let queries: Vec<i64> = (0..10).collect();
        let expected = TreeSearchMachine::search(&keys, &queries);
        let machine = TreeSearchMachine::new(&keys, &queries);
        let layout = Layout::htree_tree(machine.comm());
        let plan = layout.pipeline_register_plan(f64::from(spacing_tenths) / 10.0);
        let sub = machine.comm().subdivided(&plan);
        let mut exec = IdealExecutor::new(&sub.graph);
        let mut relayed = Relayed::new(machine, &sub);
        let cycles = 8 * (sub.graph.node_count() + queries.len() + 4);
        exec.run(&mut relayed, cycles);
        assert_eq!(relayed.inner().answers(), &expected[..]);
    }
}

// ---------------- simulator invariants ----------------

#[test]
fn desim_chain_is_deterministic() {
    for (_, mut rng) in cases(17) {
        let dlen = rng.gen_range(2usize..12);
        let delays: Vec<u64> = (0..dlen).map(|_| rng.gen_range(1u64..500)).collect();
        let period = rng.gen_range(100u64..2000);
        let build = || {
            let mut sim = Simulator::new();
            let mut nets = vec![sim.add_net()];
            for &d in &delays {
                let n = sim.add_net();
                sim.add_buffer(
                    *nets.last().expect("non-empty"),
                    n,
                    SimTime::from_ps(d),
                    SimTime::from_ps(d.max(2) - 1),
                );
                nets.push(n);
            }
            let last = *nets.last().expect("non-empty");
            sim.watch(last);
            sim.schedule_clock(
                nets[0],
                SimTime::from_ps(5),
                SimTime::from_ps(period),
                SimTime::from_ps(period / 2),
                10,
            );
            sim.run_until(SimTime::from_ps(1_000_000));
            sim.transitions(last).to_vec()
        };
        assert_eq!(build(), build());
    }
}

#[test]
fn inverter_string_survival_monotone() {
    for (_, mut rng) in cases(18) {
        let spec = InverterStringSpec {
            stages: 16,
            base_delay: SimTime::from_ps(500),
            bias_ps: rng.gen_range(0u64..80),
            discrepancy_std_ps: 5.0,
            seed: rng.gen_range(0u64..50),
        };
        let chip = InverterString::fabricate(spec);
        let min = chip.min_pipelined_period(3);
        // Survival is monotone in the period around the threshold.
        assert!(chip.pipelined_clock_survives(min, 3));
        assert!(chip.pipelined_clock_survives(min * 2, 3));
        if min.as_ps() > 4 {
            assert!(!chip.pipelined_clock_survives(SimTime::from_ps(min.as_ps() - 2), 3));
        }
    }
}

// ---------------- hybrid schedule invariants ----------------

#[test]
fn hybrid_schedule_skew_bounded_by_element() {
    for (_, mut rng) in cases(19) {
        let n = rng.gen_range(4usize..20);
        let e = rng.gen_range(1usize..6);
        let margin = f64::from(rng.gen_range(0u32..20)) / 100.0;
        let comm = CommGraph::mesh(n, n);
        let model = WireDelayModel::new(0.05, 0.01);
        let schedule = hybrid_schedule(&comm, e, model, margin, 10.0, 7);
        let bound = (e as f64) * model.max_rate() + margin;
        assert!(
            schedule.max_comm_skew(&comm) <= bound + 1e-9,
            "skew {} > bound {}",
            schedule.max_comm_skew(&comm),
            bound
        );
    }
}

// ---------------- period algebra ----------------

#[test]
fn min_safe_period_is_actually_safe() {
    for (_, mut rng) in cases(20) {
        let olen = rng.gen_range(2usize..10);
        let offsets: Vec<f64> = (0..olen).map(|_| rng.gen_range(0.0f64..0.5)).collect();
        let comm = CommGraph::linear(offsets.len());
        let timing = CellTiming::new(1.0, 2.0, 0.3, 0.2);
        // Offsets below delta_min - hold never race.
        let period = min_safe_period(&comm, &offsets, timing).expect("no race possible");
        let schedule = ClockSchedule::new(offsets, period.max(0.001));
        let statuses = classify_edges(&comm, &schedule, timing);
        assert!(statuses.iter().all(|&s| s == TransferStatus::Clean));
    }
}
