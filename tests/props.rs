//! Property-based tests (proptest) over the workspace's core
//! invariants: systolic algorithms against direct references, skew
//! algebra on random trees, layout invariants, and engine
//! determinism.

use proptest::prelude::*;
use vlsi_sync_repro::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---------------- systolic algorithms == references ----------------

    #[test]
    fn fir_equals_direct_convolution(
        weights in prop::collection::vec(-50i64..50, 1..8),
        extra in prop::collection::vec(-50i64..50, 0..24),
    ) {
        // Ensure xs is at least as long as weights.
        let mut xs = weights.clone();
        xs.extend(extra);
        prop_assert_eq!(
            SystolicFir::convolve(&weights, &xs),
            SystolicFir::reference(&weights, &xs)
        );
    }

    #[test]
    fn matvec_equals_direct_product(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0i64..1000,
    ) {
        let a: Vec<Vec<i64>> = (0..rows)
            .map(|i| (0..cols).map(|j| (seed + (i * cols + j) as i64 * 7) % 23 - 11).collect())
            .collect();
        let x: Vec<i64> = (0..cols).map(|j| (seed * 3 + j as i64) % 17 - 8).collect();
        prop_assert_eq!(
            SystolicMatVec::multiply(&a, &x),
            SystolicMatVec::reference(&a, &x)
        );
    }

    #[test]
    fn matmul_equals_direct_product(
        n in 1usize..5,
        k in 1usize..5,
        m in 1usize..5,
        seed in 0i64..1000,
    ) {
        let a: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..k).map(|j| (seed + (i * k + j) as i64 * 5) % 19 - 9).collect())
            .collect();
        let b: Vec<Vec<i64>> = (0..k)
            .map(|i| (0..m).map(|j| (seed * 2 + (i * m + j) as i64 * 3) % 13 - 6).collect())
            .collect();
        prop_assert_eq!(
            SystolicMatMul::multiply(&a, &b),
            SystolicMatMul::reference(&a, &b)
        );
    }

    #[test]
    fn sort_returns_sorted_permutation(values in prop::collection::vec(-1000i64..1000, 1..24)) {
        let sorted = OddEvenSorter::sort(&values);
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    #[test]
    fn tree_search_answers_membership(
        levels in 1u32..5,
        queries in prop::collection::vec(0i64..64, 1..20),
        seed in 0i64..100,
    ) {
        let leaves = 1usize << levels;
        let keys: Vec<i64> = (0..leaves as i64).map(|i| (i * 7 + seed) % 64).collect();
        let answers = TreeSearchMachine::search(&keys, &queries);
        for (q, found) in queries.iter().zip(&answers) {
            prop_assert_eq!(*found, keys.contains(q), "query {}", q);
        }
    }

    // ---------------- skew algebra on random spines/trees ----------------

    #[test]
    fn skew_bounds_hold_on_random_linear_arrays(
        n in 2usize..40,
        eps_percent in 1u32..50,
        seed in 0u64..500,
    ) {
        let comm = CommGraph::linear(n);
        let layout = Layout::linear_row(&comm);
        let tree = htree(&comm, &layout);
        let model = WireDelayModel::new(1.0, f64::from(eps_percent) / 100.0);
        use rand::SeedableRng as _;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let rates = model.sample_rates(&tree, &mut rng);
        let arrivals = clock_tree::skew::ArrivalTimes::from_rates(&tree, &rates);
        for (a, b) in comm.communicating_pairs() {
            let observed = arrivals.skew(&tree, a, b);
            let worst = worst_case_skew(&tree, model, a, b);
            prop_assert!(observed <= worst + 1e-9, "pair ({a},{b}): {} > {}", observed, worst);
        }
    }

    #[test]
    fn summation_lower_bound_below_upper_everywhere(
        rows in 2usize..6,
        cols in 2usize..6,
    ) {
        let comm = CommGraph::mesh(rows, cols);
        let layout = Layout::grid(&comm);
        let tree = htree(&comm, &layout);
        let model = SummationModel::from_delay_model(WireDelayModel::new(1.0, 0.2));
        for (a, b) in comm.communicating_pairs() {
            prop_assert!(model.pair_lower(&tree, a, b) <= model.pair_upper(&tree, a, b) + 1e-9);
        }
        prop_assert!(model.max_guaranteed_skew(&tree, &comm) <= model.max_skew(&tree, &comm) + 1e-9);
    }

    // ---------------- layout invariants ----------------

    #[test]
    fn linear_layouts_validate_and_bound_wires(n in 1usize..60, tooth in 1usize..12) {
        let comm = CommGraph::linear(n);
        for layout in [
            Layout::linear_row(&comm),
            Layout::folded_linear(&comm),
            Layout::comb(&comm, tooth),
        ] {
            prop_assert!(layout.validate(&comm).is_ok());
            prop_assert!(layout.max_wire_length() <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn htree_attaches_all_cells_on_any_grid(rows in 1usize..8, cols in 1usize..8) {
        let comm = CommGraph::mesh(rows, cols);
        let layout = Layout::grid(&comm);
        let tree = htree(&comm, &layout);
        prop_assert!(tree.validate().is_ok());
        prop_assert_eq!(tree.attached_cells().len(), rows * cols);
        // Equalization zeroes the difference metric for every pair.
        let tuned = tree.equalized();
        for (a, b) in comm.communicating_pairs() {
            prop_assert!(tuned.difference_distance(a, b) < 1e-9);
        }
    }

    #[test]
    fn fold_embedding_injective_and_bounded(rows in 1usize..5, cols in 1usize..40) {
        let e = GridEmbedding::fold(rows, cols);
        let mut seen = std::collections::HashSet::new();
        for r in 0..rows {
            for c in 0..cols {
                prop_assert!(seen.insert(e.image(r, c)), "collision at ({r},{c})");
            }
        }
        prop_assert!(e.area_overhead() < 2.0 + 1e-9);
    }

    // ---------------- more algorithms ----------------

    #[test]
    fn horner_equals_direct_evaluation(
        coeffs in prop::collection::vec(-20i64..20, 1..7),
        points in prop::collection::vec(-10i64..10, 0..12),
    ) {
        prop_assert_eq!(
            SystolicHorner::evaluate(&coeffs, &points),
            SystolicHorner::reference(&coeffs, &points)
        );
    }

    #[test]
    fn priority_queue_matches_heap(op_codes in prop::collection::vec(0u8..100, 1..40)) {
        use std::collections::BinaryHeap;
        // Derive a legal op sequence from the raw codes.
        let mut live = 0usize;
        let ops: Vec<PqOp> = op_codes
            .iter()
            .map(|&c| {
                if live > 0 && c < 45 {
                    live -= 1;
                    PqOp::ExtractMin
                } else {
                    live += 1;
                    PqOp::Insert(i64::from(c) * 7 % 50 - 25)
                }
            })
            .collect();
        let mut heap = BinaryHeap::new();
        let mut expected = Vec::new();
        for op in &ops {
            match op {
                PqOp::Insert(v) => heap.push(std::cmp::Reverse(*v)),
                PqOp::ExtractMin => expected.push(heap.pop().map(|r| r.0)),
            }
        }
        prop_assert_eq!(
            SystolicPriorityQueue::run_ops(ops.len() + 1, &ops),
            expected
        );
    }

    #[test]
    fn hex_matmul_equals_direct_product(
        n in 1usize..4,
        seed in 0i64..500,
    ) {
        let a: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..n).map(|j| (seed + (i * n + j) as i64 * 11) % 17 - 8).collect())
            .collect();
        let b: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..n).map(|j| (seed * 3 + (i * n + j) as i64 * 5) % 13 - 6).collect())
            .collect();
        prop_assert_eq!(HexMatMul::multiply(&a, &b), HexMatMul::reference(&a, &b));
    }

    #[test]
    fn trisolve_equals_forward_substitution(
        n in 1usize..12,
        w in 1usize..5,
        seed in 0u64..300,
    ) {
        use rand::{Rng, SeedableRng};
        let w = w.min(n);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut l = vec![vec![0i64; n]; n];
        for (i, row) in l.iter_mut().enumerate() {
            row[i] = 1;
            for v in row.iter_mut().take(i).skip(i.saturating_sub(w - 1)) {
                *v = rng.gen_range(-5..=5);
            }
        }
        let b: Vec<i64> = (0..n).map(|_| rng.gen_range(-30..=30)).collect();
        prop_assert_eq!(
            SystolicTriSolve::solve(&l, &b, w),
            SystolicTriSolve::reference(&l, &b)
        );
    }

    #[test]
    fn ring_spine_skew_constant(n in 3usize..200) {
        let comm = CommGraph::ring(n);
        let layout = Layout::folded_ring(&comm);
        let tree = spine_ring(&comm, &layout);
        let model = SummationModel::from_delay_model(WireDelayModel::new(1.0, 0.1));
        prop_assert!(model.max_skew(&tree, &comm) <= 5.5 + 1e-9);
    }

    #[test]
    fn relayed_tree_machine_correct_for_any_spacing(
        spacing_tenths in 10u32..60,
        levels in 1u32..4,
    ) {
        use systolic::relay::Relayed;
        let leaves = 1usize << levels;
        let keys: Vec<i64> = (0..leaves as i64).map(|i| 2 * i).collect();
        let queries: Vec<i64> = (0..10).collect();
        let expected = TreeSearchMachine::search(&keys, &queries);
        let machine = TreeSearchMachine::new(&keys, &queries);
        let layout = Layout::htree_tree(machine.comm());
        let plan = layout.pipeline_register_plan(f64::from(spacing_tenths) / 10.0);
        let sub = machine.comm().subdivided(&plan);
        let mut exec = IdealExecutor::new(&sub.graph);
        let mut relayed = Relayed::new(machine, &sub);
        let cycles = 8 * (sub.graph.node_count() + queries.len() + 4);
        exec.run(&mut relayed, cycles);
        prop_assert_eq!(relayed.inner().answers(), &expected[..]);
    }

    // ---------------- simulator invariants ----------------

    #[test]
    fn desim_chain_is_deterministic(
        delays in prop::collection::vec(1u64..500, 2..12),
        period in 100u64..2000,
    ) {
        let build = || {
            let mut sim = Simulator::new();
            let mut nets = vec![sim.add_net()];
            for &d in &delays {
                let n = sim.add_net();
                sim.add_buffer(*nets.last().expect("non-empty"), n,
                    SimTime::from_ps(d), SimTime::from_ps(d.max(2) - 1));
                nets.push(n);
            }
            let last = *nets.last().expect("non-empty");
            sim.watch(last);
            sim.schedule_clock(nets[0], SimTime::from_ps(5),
                SimTime::from_ps(period), SimTime::from_ps(period / 2), 10);
            sim.run_until(SimTime::from_ps(1_000_000));
            sim.transitions(last).to_vec()
        };
        prop_assert_eq!(build(), build());
    }

    #[test]
    fn inverter_string_survival_monotone(
        bias in 0u64..80,
        seed in 0u64..50,
    ) {
        let spec = InverterStringSpec {
            stages: 16,
            base_delay: SimTime::from_ps(500),
            bias_ps: bias,
            discrepancy_std_ps: 5.0,
            seed,
        };
        let chip = InverterString::fabricate(spec);
        let min = chip.min_pipelined_period(3);
        // Survival is monotone in the period around the threshold.
        prop_assert!(chip.pipelined_clock_survives(min, 3));
        prop_assert!(chip.pipelined_clock_survives(min * 2, 3));
        if min.as_ps() > 4 {
            prop_assert!(!chip.pipelined_clock_survives(
                SimTime::from_ps(min.as_ps() - 2), 3));
        }
    }

    // ---------------- hybrid schedule invariants ----------------

    #[test]
    fn hybrid_schedule_skew_bounded_by_element(
        n in 4usize..20,
        e in 1usize..6,
        margin_centi in 0u32..20,
    ) {
        let comm = CommGraph::mesh(n, n);
        let model = WireDelayModel::new(0.05, 0.01);
        let margin = f64::from(margin_centi) / 100.0;
        let schedule = hybrid_schedule(&comm, e, model, margin, 10.0, 7);
        let bound = (e as f64) * model.max_rate() + margin;
        prop_assert!(
            schedule.max_comm_skew(&comm) <= bound + 1e-9,
            "skew {} > bound {}", schedule.max_comm_skew(&comm), bound
        );
    }

    // ---------------- period algebra ----------------

    #[test]
    fn min_safe_period_is_actually_safe(
        offsets in prop::collection::vec(0.0f64..0.5, 2..10),
    ) {
        let comm = CommGraph::linear(offsets.len());
        let timing = CellTiming::new(1.0, 2.0, 0.3, 0.2);
        // Offsets below delta_min - hold never race.
        let period = min_safe_period(&comm, &offsets, timing).expect("no race possible");
        let schedule = ClockSchedule::new(offsets, period.max(0.001));
        let statuses = classify_edges(&comm, &schedule, timing);
        prop_assert!(statuses.iter().all(|&s| s == TransferStatus::Clean));
    }
}
