//! Sweep-determinism contract over the *real* design-space grid: any
//! shard partition of the (scheme × topology × size × fault-rate)
//! sweep, completed in any order, with or without a mid-range
//! interruption and resume, merges to a report byte-identical to the
//! uninterrupted single-process run.
//!
//! The sweep crate pins the same property on synthetic workloads; this
//! suite closes the loop on the production trial function
//! (`bench::grid::run_trial`), whose fault injection, panic isolation,
//! and in-order retention aggregation are exactly the parts a
//! refactor could accidentally make partition-dependent.

use bench::grid;
use sim_observe::Json;
use sim_sweep::{
    heartbeat_path, load_shards, run_shard, shard_path, Heartbeat, Manifest, ShardOpts,
    HEARTBEAT_SCHEMA, HEARTBEAT_SCHEMA_VERSION,
};

/// The shared workload: the fast grid (54 points, including the
/// quadrant/spine topology cells), 3 trials per point, checkpointing
/// every 2 trials. `shards` only changes the execution partition —
/// the manifest digest and the merged bytes must not see it.
fn manifest(shards: u64) -> Manifest {
    grid::default_manifest(7, 3, shards, 2, true).expect("fast grid manifest")
}

/// Runs one shard to completion against the real trial function.
fn run_grid_shard(m: &Manifest, shard: u64, dir: &str, opts: &ShardOpts) -> sim_sweep::ShardStatus {
    let cells = grid::build_cells(m).expect("grid cells build");
    run_shard(m, shard, dir, opts, |pi, p, t, rng| {
        grid::run_trial(&cells[pi], p, m.point_seed(pi), t, rng)
    })
    .expect("shard run succeeds")
}

fn temp_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!(
        "sim_sweep_determinism_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

/// The uninterrupted single-process reference, pretty-printed — the
/// byte string every partition must reproduce.
fn reference_report() -> String {
    let m = manifest(1);
    let results = grid::run_sweep_single(&m, 2).expect("single-process sweep");
    grid::sweep_report(&m, &results).to_pretty()
}

#[test]
fn any_partition_of_the_real_grid_merges_byte_identically() {
    let reference = reference_report();
    for (shards, order) in [
        (1u64, vec![0u64]),
        (4, vec![2, 0, 3, 1]),
        (7, vec![6, 1, 4, 0, 5, 2, 3]),
    ] {
        let m = manifest(shards);
        let dir = temp_dir(&format!("part{shards}"));
        for &s in &order {
            run_grid_shard(&m, s, &dir, &ShardOpts::default());
        }
        let results = load_shards(&m, &dir).expect("all shards complete");
        let merged = grid::sweep_report(&m, &results).to_pretty();
        assert_eq!(
            merged, reference,
            "{shards}-shard partition (completion order {order:?}) must merge \
             byte-identically to the single-process run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn killed_and_resumed_shard_is_invisible_in_the_merged_bytes() {
    let reference = reference_report();
    let m = manifest(3);
    let dir = temp_dir("resume");

    // Shards 0 and 2 run to completion; shard 1 is stopped mid-range
    // by a trial budget — the on-disk state is exactly what a kill -9
    // between checkpoints leaves behind.
    run_grid_shard(&m, 0, &dir, &ShardOpts::default());
    run_grid_shard(&m, 2, &dir, &ShardOpts::default());
    let stopped = run_grid_shard(
        &m,
        1,
        &dir,
        &ShardOpts {
            stop_after: Some(5),
            ..ShardOpts::default()
        },
    );
    assert!(stopped.interrupted, "budget must interrupt the shard");
    assert!(stopped.completed < stopped.hi - stopped.lo);

    // An incomplete shard must refuse to merge, naming the problem.
    let err = load_shards(&m, &dir).expect_err("incomplete shard set");
    assert!(err.contains("incomplete"), "got: {err}");

    // A torn temp file from the kill must not poison the resume.
    std::fs::write(
        format!("{}.tmp", shard_path(&dir, 1)),
        "torn half-written garbage",
    )
    .expect("inject torn temp file");

    let resumed = run_grid_shard(&m, 1, &dir, &ShardOpts::default());
    assert!(
        resumed.resumed_at > 0,
        "resume must start from the checkpoint, not from scratch"
    );
    assert!(!resumed.interrupted);

    let results = load_shards(&m, &dir).expect("complete after resume");
    let merged = grid::sweep_report(&m, &results).to_pretty();
    assert_eq!(
        merged, reference,
        "kill + resume must be invisible in the merged report bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn heartbeat_files_carry_the_pinned_schema_and_track_the_shard() {
    let m = manifest(3);
    let dir = temp_dir("heartbeat");

    // Interrupt shard 1 mid-range: the heartbeat must linger with the
    // checkpointed progress and live rate fields.
    let stopped = run_grid_shard(
        &m,
        1,
        &dir,
        &ShardOpts {
            stop_after: Some(5),
            ..ShardOpts::default()
        },
    );
    assert!(stopped.interrupted);

    let hb_file = heartbeat_path(&dir, 1);
    let text = std::fs::read_to_string(&hb_file).expect("heartbeat exists on disk");
    let doc = sim_observe::parse(&text).expect("heartbeat is valid JSON");

    // Schema pin: exactly these keys, in this order — operators and
    // dashboards key on them.
    let keys: Vec<&str> = doc
        .as_object()
        .expect("object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        keys,
        [
            "schema",
            "schema_version",
            "manifest_digest",
            "shard",
            "lo",
            "hi",
            "completed",
            "workers",
            "trials_per_sec",
            "eta_ms",
            "utilization",
            "wall_ms",
            "tick",
        ],
        "heartbeat document schema drifted"
    );
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(HEARTBEAT_SCHEMA));
    assert_eq!(
        doc.get("schema_version"),
        Some(&Json::UInt(HEARTBEAT_SCHEMA_VERSION))
    );

    // The parsed heartbeat agrees with the checkpointed ground truth.
    let hb = Heartbeat::load(&hb_file).expect("parses through the library");
    assert_eq!(hb.manifest_digest, m.digest());
    assert_eq!((hb.shard, hb.lo, hb.hi), (1, stopped.lo, stopped.hi));
    assert_eq!(hb.completed, stopped.completed);
    assert!(hb.completed < hb.hi - hb.lo, "interrupted mid-range");
    assert!(hb.trials_per_sec > 0.0, "rate is measured, not defaulted");
    assert!((0.0..=1.0).contains(&hb.utilization));
    assert!(hb.tick >= 1, "tick advances on every heartbeat save");

    // Finishing the shard removes the heartbeat but keeps the
    // checkpoint: presence of a heartbeat always means unfinished.
    run_grid_shard(&m, 1, &dir, &ShardOpts::default());
    assert!(!std::path::Path::new(&hb_file).exists());
    assert!(std::path::Path::new(&shard_path(&dir, 1)).exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The realistic quadrant/spine cells (e14's topologies) ride the same
/// grid: they must be present in the workload this suite pins, and
/// their per-point bytes must be identical whether the point ran in a
/// 1-shard or a 7-shard partition — the quadrant tree construction and
/// its fault sites must not depend on execution context.
#[test]
fn quadrant_topology_cells_are_partition_invariant() {
    let single = manifest(1);
    let labels: Vec<String> = single.points.iter().map(|p| p.label()).collect();
    let quad: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains("quadrant"))
        .map(|(i, _)| i)
        .collect();
    assert!(
        !quad.is_empty(),
        "the fast grid must include quadrant topology points"
    );

    let reference = {
        let results = grid::run_sweep_single(&single, 2).expect("single-process sweep");
        grid::sweep_report(&single, &results)
    };
    let m = manifest(7);
    let dir = temp_dir("quadrant");
    for s in 0..7 {
        run_grid_shard(&m, s, &dir, &ShardOpts::default());
    }
    let results = load_shards(&m, &dir).expect("all shards complete");
    let sharded = grid::sweep_report(&m, &results);

    let points_of = |report: &Json| -> Vec<Json> {
        report
            .get("points")
            .and_then(Json::as_array)
            .expect("points array")
            .to_vec()
    };
    let (ref_points, sh_points) = (points_of(&reference), points_of(&sharded));
    for &pi in &quad {
        assert_eq!(
            ref_points[pi].to_pretty(),
            sh_points[pi].to_pretty(),
            "quadrant point `{}` diverged between partitions",
            labels[pi]
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn frontier_is_deterministic_and_grouped_by_requirements() {
    let m = manifest(1);
    let results = grid::run_sweep_single(&m, 2).expect("sweep");
    let report = grid::sweep_report(&m, &results);
    let f1 = grid::sweep_frontier(&report).expect("frontier");
    let f2 = grid::sweep_frontier(&report).expect("frontier again");
    assert_eq!(f1.to_pretty(), f2.to_pretty(), "frontier must be deterministic");

    // Dominance never crosses a (size, fault_rate) requirement group:
    // every dominator shares its victim's size and fault rate.
    let points = f1.get("points").and_then(Json::as_array).expect("points");
    assert!(!points.is_empty());
    for p in points {
        let Some(by) = p.get("dominated_by").and_then(Json::as_str) else {
            continue;
        };
        let dominator = points
            .iter()
            .find(|q| q.get("label").and_then(Json::as_str) == Some(by))
            .expect("dominator is in the report");
        for key in ["size", "fault_rate"] {
            assert_eq!(
                p.get(key),
                dominator.get(key),
                "dominance crossed the `{key}` requirement boundary"
            );
        }
    }
}
