//! A two-dimensional systolic matrix multiply, and what the paper says
//! about clocking it: global pipelined clocking cannot stay constant
//! (Section V-B), so we analyze the scheme spectrum and run the
//! computation under the zero-skew schedule a hybrid element provides.
//!
//! ```sh
//! cargo run --example systolic_matmul
//! ```

use vlsi_sync_repro::prelude::*;

fn main() {
    let n = 8;
    let a: Vec<Vec<i64>> = (0..n)
        .map(|i| (0..n).map(|j| ((3 * i + j) % 11) as i64 - 5).collect())
        .collect();
    let b: Vec<Vec<i64>> = (0..n)
        .map(|i| (0..n).map(|j| ((i * j + 2) % 7) as i64 - 3).collect())
        .collect();

    // The systolic product matches the direct product.
    let product = SystolicMatMul::multiply(&a, &b);
    assert_eq!(product, SystolicMatMul::reference(&a, &b));
    println!("{n}x{n} systolic matmul matches reference  [OK]");

    // What does synchronizing this mesh cost as it grows?
    let params = AnalysisParams::default();
    let link = HandshakeLink::new(1.0, 0.5, Protocol::TwoPhase);
    let hybrid = HybridParams::new(4, params.delta, 1.0, 0.1, link);
    println!("\nscheme comparison on growing meshes (clock period per A5):");
    println!("{:>6} {:>16} {:>20} {:>10}", "n", "equipotential", "pipelined(summ.)", "hybrid");
    for side in [8usize, 32, 128] {
        let comm = CommGraph::mesh(side, side);
        let layout = Layout::grid(&comm);
        let equi = analyze(&comm, &layout, &SyncScheme::GlobalEquipotential { alpha: 1.0 }, &params);
        let pipe = analyze(
            &comm,
            &layout,
            &SyncScheme::PipelinedSummation { buffer_delay: 1.0, spacing: 2.0 },
            &params,
        );
        let hyb = analyze(&comm, &layout, &SyncScheme::Hybrid(hybrid), &params);
        println!(
            "{side:>6} {:>16.1} {:>20.1} {:>10.1}",
            equi.period, pipe.period, hyb.period
        );
    }
    println!("\nonly the hybrid stays constant — Section VI's answer for 2-D arrays.");
}
