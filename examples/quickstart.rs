//! Quickstart: clock a one-dimensional systolic array the way the
//! paper recommends, and watch a real computation run correctly
//! under it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vlsi_sync_repro::prelude::*;

fn main() {
    // 1. An ideally synchronized 8-tap FIR filter array (A1).
    let weights = [3, -1, 4, 1, -5, 9, 2, -6];
    let xs: Vec<i64> = (0..40).map(|i| (i * i) % 17 - 8).collect();
    let mut fir = SystolicFir::new(&weights, &xs);
    let comm = fir.comm().clone();
    println!("array: {} cells, {} directed edges", comm.node_count(), comm.edge_count());

    // 2. Lay it out in a row and clock it with the Fig. 4(b) spine.
    let layout = Layout::linear_row(&comm);
    let clk = spine(&comm, &layout);
    let delays = WireDelayModel::new(0.1, 0.02);

    // 3. Theorem 3: max skew between communicating cells is constant.
    let model = SummationModel::from_delay_model(delays);
    let sigma = model.max_skew(&clk, &comm);
    println!("max skew between communicating cells: {sigma:.3} (independent of length)");

    // 4. Pick the A5 clock period σ + δ + τ and run the filter under
    //    worst-case clock arrival offsets.
    let timing = CellTiming::new(1.0, 2.0, 0.3, 0.2);
    let period = safe_period_for_tree(&clk, &comm, delays, timing)
        .expect("spine skew is far below the race threshold");
    println!("minimum safe clock period: {period:.3}");
    let schedule = worst_case_schedule(&clk, &comm, delays, period);
    let mut exec = SkewedExecutor::new(&comm, &schedule, timing);
    assert!(exec.is_faithful(), "all transfers clean at this period");
    let cycles = fir.cycles_needed();
    exec.run(&mut fir, cycles);

    // 5. The skew-clocked run matches the ideal lock-step semantics.
    let expected = SystolicFir::reference(&weights, &xs);
    assert_eq!(fir.outputs(), expected);
    println!(
        "FIR outputs ({} values) match the ideal lock-step reference  [OK]",
        expected.len()
    );
    println!("first outputs: {:?}", &fir.outputs()[..6.min(fir.outputs().len())]);
}
