//! Section VIII's tree machine: a Bentley–Kung search tree in an
//! H-tree layout, with the clock distributed along the data paths and
//! pipeline registers keeping the interval constant.
//!
//! ```sh
//! cargo run --example tree_machine
//! ```

use vlsi_sync_repro::prelude::*;

fn main() {
    // 64 leaves holding even numbers; queries 0..50.
    let keys: Vec<i64> = (0..64).map(|i| 2 * i).collect();
    let queries: Vec<i64> = (0..50).collect();
    let machine = TreeSearchMachine::new(&keys, &queries);
    let comm = machine.comm().clone();
    println!(
        "tree machine: {} levels, {} nodes, latency {} cycles, 1 query/cycle throughput",
        machine.levels(),
        comm.node_count(),
        machine.latency()
    );

    // H-tree layout: O(N) area, Θ(√N) root edges.
    let layout = Layout::htree_tree(&comm);
    println!(
        "H-tree layout: area {:.0} for {} nodes, longest wire {:.1} (~sqrt(N) = {:.1})",
        layout.area(),
        comm.node_count(),
        layout.max_wire_length(),
        (comm.node_count() as f64).sqrt()
    );

    // Clock along the data paths: skew between communicating cells is
    // exactly the wire delay they already pay for data.
    let clk = mirror_tree(&comm, &layout);
    let model = SummationModel::from_delay_model(WireDelayModel::new(1.0, 0.1));
    println!(
        "clock-along-data-paths: max communicating skew {:.2}, pipeline registers (spacing 2): {}",
        model.max_skew(&clk, &comm),
        clk.buffer_count(2.0)
    );

    // Run the pipelined search.
    let answers = TreeSearchMachine::search(&keys, &queries);
    let hits: Vec<i64> = queries
        .iter()
        .zip(&answers)
        .filter(|(_, &found)| found)
        .map(|(&q, _)| q)
        .collect();
    println!("queries answered: {}; members found: {hits:?}", answers.len());
    assert!(hits.iter().all(|q| q % 2 == 0));
}
