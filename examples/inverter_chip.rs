//! The Section VII chip, rerun in simulation: a string of 2048
//! minimum inverters clocked equipotentially vs pipelined.
//!
//! ```sh
//! cargo run --release --example inverter_chip [stages]
//! ```

use vlsi_sync_repro::prelude::*;

fn main() {
    let stages: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("stages must be an integer"))
        .unwrap_or(2048);
    let spec = InverterStringSpec {
        stages,
        ..InverterStringSpec::paper_chip(1)
    };
    println!(
        "fabricating a {}-stage inverter string (base delay {}, bias {} ps, sigma {} ps)…",
        spec.stages, spec.base_delay, spec.bias_ps, spec.discrepancy_std_ps
    );
    let chip = InverterString::fabricate(spec);
    println!(
        "analytic pulse shrinkage over the whole string: {} ps (worst prefix {} ps)",
        chip.pulse_width_change_ps(),
        chip.worst_prefix_shrinkage_ps()
    );

    let result = chip.run(6);
    println!();
    println!("equipotential cycle : {}", result.equipotential_cycle);
    println!("pipelined cycle     : {}", result.pipelined_cycle);
    println!("speedup             : {:.1}x", result.speedup());
    println!();
    println!("paper's measurements at 2048 stages: 34 us, 500 ns, 68x.");
}
