//! The paper's central contrast in one sweep: one-dimensional arrays
//! keep constant clock skew as they grow (Theorem 3); two-dimensional
//! arrays cannot, under any clock tree (Section V-B).
//!
//! ```sh
//! cargo run --example skew_scaling
//! ```

use vlsi_sync_repro::prelude::*;

fn main() {
    let model = SummationModel::from_delay_model(WireDelayModel::new(1.0, 0.1));

    println!("{:>8} {:>18} {:>22} {:>18}", "cells", "1-D spine skew", "2-D best-tree skew", "2-D lower bound");
    let mut xs = Vec::new();
    let (mut one_d, mut two_d) = (Vec::new(), Vec::new());
    for side in [4usize, 8, 16, 32] {
        let cells = side * side;
        // 1-D array with the same number of cells, spine-clocked.
        let line = CommGraph::linear(cells);
        let line_layout = Layout::linear_row(&line);
        let s1 = model.max_skew(&spine(&line, &line_layout), &line);
        // 2-D mesh: best of the tree strategies.
        let mesh = CommGraph::mesh(side, side);
        let mesh_layout = Layout::grid(&mesh);
        let s2 = [
            htree(&mesh, &mesh_layout),
            htree(&mesh, &mesh_layout).equalized(),
            serpentine(&mesh, &mesh_layout),
            comb_tree(&mesh, &mesh_layout),
        ]
        .iter()
        .map(|t| model.max_guaranteed_skew(t, &mesh))
        .fold(f64::INFINITY, f64::min);
        let bound = mesh_skew_lower_bound(side, model.beta());
        println!("{cells:>8} {s1:>18.3} {s2:>22.3} {bound:>18.3}");
        xs.push(cells as f64);
        one_d.push(s1);
        two_d.push(s2);
    }
    println!();
    let sides: Vec<f64> = xs.iter().map(|c| c.sqrt()).collect();
    println!(
        "1-D skew vs cell count N: {:?}   2-D skew vs side n: {:?} (= Omega(sqrt N), Theorem 6)",
        classify_growth(&xs, &one_d),
        classify_growth(&sides, &two_d)
    );

    // Rings behave like open linear arrays once folded (Fig. 5 logic
    // applied to the wrap edge).
    let ring_skews: Vec<f64> = [16usize, 256, 1024]
        .iter()
        .map(|&n| {
            let comm = CommGraph::ring(n);
            let layout = Layout::folded_ring(&comm);
            model.max_skew(&spine_ring(&comm, &layout), &comm)
        })
        .collect();
    println!(
        "rings (folded, interleaved spine): skew {:.2} at n=16 and {:.2} at n=1024 — constant too",
        ring_skews[0], ring_skews[2]
    );
    println!("=> \"linear arrays are especially suitable for clocked implementation\" (Sec V).");
}
