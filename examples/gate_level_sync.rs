//! Gate-level synchronization, end to end: a Muller self-timed
//! pipeline, a stoppable ring-oscillator clock, and the two-element
//! hybrid handshake — with a VCD waveform dump you can open in any
//! wave viewer.
//!
//! ```sh
//! cargo run --example gate_level_sync        # prints a summary
//! cargo run --example gate_level_sync -- dump  # also writes waves.vcd
//! ```

use vlsi_sync_repro::prelude::*;

fn main() {
    // --- 1. self-timed FIFO: tokens at a length-independent rate ----
    let short = MullerPipeline::new(8, SimTime::from_ps(100), SimTime::from_ps(50))
        .run(SimTime::from_ps(200_000));
    let long = MullerPipeline::new(64, SimTime::from_ps(100), SimTime::from_ps(50))
        .run(SimTime::from_ps(200_000));
    println!("Muller pipeline (gate level):");
    println!(
        "  8 stages: {} tokens, period {} | 64 stages: {} tokens, period {}",
        short.tokens_delivered, short.period, long.tokens_delivered, long.period
    );
    println!("  -> throughput independent of length; first arrival {} vs {}", short.first_arrival, long.first_arrival);

    // --- 2. stoppable clock: the hybrid element's local oscillator --
    let mut sim = Simulator::new();
    let clock = add_stoppable_clock(&mut sim, 2, SimTime::from_ps(50), SimTime::from_ps(80));
    sim.schedule_input(clock.enable, SimTime::from_ps(500), true);
    sim.schedule_input(clock.enable, SimTime::from_ps(5_000), false);
    sim.schedule_input(clock.enable, SimTime::from_ps(8_000), true);
    sim.run_until(SimTime::from_ps(12_000));
    let ticks = sim.transitions(clock.clk).len();
    println!("\nstoppable clock: {ticks} edges over an enable/park/resume cycle (period {})", clock.period);

    if std::env::args().any(|a| a == "dump") {
        let vcd = desim::vcd::export_vcd(&sim, &[(clock.enable, "enable"), (clock.clk, "clk")]);
        std::fs::write("waves.vcd", &vcd).expect("write waves.vcd");
        println!("  wrote waves.vcd ({} bytes)", vcd.len());
    }

    // --- 3. the hybrid handshake in gates ---------------------------
    let pair = ElementPair::new(2, SimTime::from_ps(50), SimTime::from_ps(80));
    let run = pair.run(SimTime::from_ps(200_000));
    println!("\ntwo-element hybrid handshake (XNOR/XOR sync network):");
    println!(
        "  A ticked {} times, B {} times, alternating, cycle {} ps, violations: {}",
        run.ticks_a, run.ticks_b, run.period_ps, run.violations
    );
    println!("\n\"an element stops its clock synchronously and has its clock started");
    println!(" asynchronously\" — Section VI, as gates.");
}
