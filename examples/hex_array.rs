//! The hexagonal array of Fig. 3(c), end to end: its honest offset
//! layout, the Kung–Leiserson band matrix multiply it was designed
//! for, and its H-tree clocking under the difference model.
//!
//! ```sh
//! cargo run --example hex_array
//! ```

use vlsi_sync_repro::prelude::*;

fn main() {
    // Fig. 3(c) geometry: six neighbours within 1.5 pitches.
    let comm = CommGraph::hex(5, 5);
    let brick = Layout::hex_offset(&comm);
    println!(
        "hex 5x5 offset layout: interior degree {}, longest wire {:.1} (grid layout: 2.0)",
        comm.degree(comm.grid_id(2, 2)),
        brick.max_wire_length()
    );

    // The workload: band matrices of any size on a fixed array.
    let n = 30;
    let w = 3;
    let a = HexBandMatMul::band_matrix(n, w, |i, k| ((i * 5 + k) % 13) as i64 - 6);
    let b = HexBandMatMul::band_matrix(n, w, |k, j| ((k + j * 7) % 11) as i64 - 5);
    let hm = HexBandMatMul::new(&a, &b, w);
    println!(
        "\nKung-Leiserson band multiply: {n}x{n} matrices (bandwidth {w}) on a \
         {}-cell hex array, {} cycles",
        hm.comm().node_count(),
        hm.cycles_needed()
    );
    let c = HexBandMatMul::multiply(&a, &b, w);
    assert_eq!(c, HexMatMul::reference(&a, &b));
    println!("product verified against the direct reference  [OK]");

    // Clocking it: H-tree under the difference model (Theorem 2).
    let array_comm = hm.comm().clone();
    let layout = Layout::grid(&array_comm);
    let clk = htree(&array_comm, &layout).equalized();
    let dm = DifferenceModel::linear(1.0);
    println!(
        "\nH-tree clocking of the hex array: max difference-model skew {:.3} \
         (tuned to zero), {} clock buffers at spacing 1",
        dm.max_skew(&clk, &array_comm),
        clk.buffer_count(1.0)
    );
    println!("\nFig. 3(c): drawn in 1983, multiplying matrices here.");
}
