//! The Section VI hybrid scheme end to end: clocked elements, a
//! handshake network between their clock nodes, constant cycle time
//! at any array size, and no metastability.
//!
//! ```sh
//! cargo run --example hybrid_array
//! ```

use vlsi_sync_repro::prelude::*;

fn main() {
    let link = HandshakeLink::new(1.0, 0.5, Protocol::TwoPhase);
    let params = HybridParams::new(4, 2.0, 1.0, 0.1, link);

    println!("hybrid scheme: 4x4-cell elements, two-phase handshake between clock nodes\n");
    println!(
        "{:>8} {:>10} {:>14} {:>16} {:>20}",
        "n", "elements", "local skew", "analytic cycle", "simulated (jitter)"
    );
    for n in [16usize, 64, 256, 1024] {
        let h = HybridArray::over_mesh(n, params);
        println!(
            "{n:>8} {:>10} {:>14.2} {:>16.2} {:>20.2}",
            h.element_count(),
            h.local_skew(),
            h.cycle_time(),
            h.simulate_period(120, 0.3, 7)
        );
    }

    // Stoppable clocks cannot go metastable; free-running samplers can.
    let meta = MetastabilityModel::new(0.05, 0.5);
    let naive = meta.count_naive_failures(500_000, 10.0, 1);
    println!();
    println!(
        "metastable captures in 500k transfers: naive synchronizer {naive}, stoppable clock {}",
        meta.count_stoppable_clock_failures(500_000)
    );
    println!(
        "per-event failure probability with 1.0 settle slack: {:.2e}",
        meta.failure_probability(10.0, 1.0)
    );
    println!("\n\"an element stops its clock synchronously and has its clock started");
    println!(" asynchronously\" — Section VI.");
}
