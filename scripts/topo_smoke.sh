#!/usr/bin/env bash
# Topology smoke: the realistic-topology pipeline end to end. One
# script drives the whole sim-topo surface — e14's scorecard (with its
# in-report asserts that the quadrant/spine trees strictly dominate
# the equalized H-tree on worst-pair skew, every SDF fixture imports
# and round-trips byte-identically, and every malformed fixture dies
# with a structured error), its skew-attribution trace back through
# the checker, the quadrant cells in the design-space frontier, and
# the BENCH_e14.json snapshot against the committed baseline.
#
# Usage: scripts/topo_smoke.sh [BIN_DIR]
#   BIN_DIR   directory holding e14_topo/explore/trace_check/
#             bench_regress (default target/release)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release}"
OUT=target/bench/topo_smoke
rm -rf "$OUT"
mkdir -p "$OUT"

fail() {
    echo "topo_smoke: $*" >&2
    exit 1
}

run() {
    echo "==> $*"
    "$@"
}

# --- e14: the topology scorecard -------------------------------------
# The binary asserts in-report: quadrant worst-pair skew strictly
# exceeds the equalized H-tree at every size, the Monte-Carlo max
# respects the analytic worst case, the GCS log-diameter line
# undercuts the passive tree, and the whole SDF corpus behaves.
run "$BIN/e14_topo" --fast --trace "$OUT/e14_trace.json" \
    | tee "$OUT/e14.log"
grep -q "\[OK\]" "$OUT/e14.log" || fail "e14 in-report asserts did not pass"
grep -q "quad s1f2" "$OUT/e14.log" || fail "e14 report lost its topology table"
grep -q "round-trip exact" "$OUT/e14.log" \
    || fail "e14 report lost its SDF round-trip verdicts"
grep -q "rejected (SDF" "$OUT/e14.log" \
    || fail "e14 report lost its malformed-fixture verdicts"
grep -q "dominant edge" "$OUT/e14.log" \
    || fail "e14 report lost its attribution worked example"
# Skew attributions ride the trace as checker-aware samples.
run "$BIN/trace_check" "$OUT/e14_trace.json"
grep -q "skew_sample" "$OUT/e14_trace.json.txt" \
    || fail "e14 trace must carry skew_sample attributions"
echo "==> e14 topology asserts hold and its attribution trace checks out"

# --- The quadrant cells ride the design-space grid -------------------
MANIFEST="$OUT/manifest.json"
run "$BIN/explore" --fast --seed 13 --trials 6 --emit-manifest "$MANIFEST"
grep -q '"quadrant"' "$MANIFEST" || fail "manifest must include quadrant cells"
run "$BIN/explore" --fast --seed 13 --trials 6 --threads 2 | tee "$OUT/frontier.log"
grep -Eq "quadrant/k=[0-9]+@r=" "$OUT/frontier.log" \
    || fail "quadrant cells must appear in the frontier table"
echo "==> quadrant topology cells score in the design-space frontier"

# --- Regression gate: the e14 snapshot vs its committed baseline -----
run "$BIN/bench_regress" --fast --only e14 --out "$OUT/bench" --baselines baselines
run "$BIN/bench_regress" --compare "$OUT/bench/BENCH_e14.json" --baselines baselines

echo "==> topo smoke passed"
