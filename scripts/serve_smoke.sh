#!/usr/bin/env bash
# Serve smoke: boot a sim_serve on an ephemeral port, drive it with
# sim_loadgen cold then hot, check the cache actually hit, snapshot
# BENCH_serve.json through the regression gate, and prove the server
# drains cleanly when its stdin closes.
#
# Also scrapes the live telemetry plane through sim_top (JSON, table,
# and Prometheus bodies) and asserts the SLO accounting is present.
#
# Usage: scripts/serve_smoke.sh [BIN_DIR]
#   BIN_DIR   directory holding sim_serve/sim_loadgen/sim_top/
#             bench_regress (default target/release)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release}"
OUT=target/bench
mkdir -p "$OUT"
PORT_FILE="$OUT/serve_smoke.port"
SERVE_LOG="$OUT/serve_smoke.log"
rm -f "$PORT_FILE"

# A FIFO held open on fd 9 is the server's stdin; closing fd 9 at the
# end is the graceful-drain trigger (stdin-close, no signals needed).
FIFO=$(mktemp -u "${TMPDIR:-/tmp}/serve_smoke.XXXXXX.fifo")
mkfifo "$FIFO"
"$BIN/sim_serve" --port 0 --port-file "$PORT_FILE" --workers 4 --queue 32 \
    --drain-on-stdin-close <"$FIFO" 2>"$SERVE_LOG" &
SERVE_PID=$!
exec 9>"$FIFO"
rm -f "$FIFO"

fail() {
    echo "serve_smoke: $*" >&2
    sed 's/^/  serve log: /' "$SERVE_LOG" >&2 || true
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
}

# Wait for the ephemeral port to land in the port file.
for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || fail "server exited before binding"
    sleep 0.1
done
[ -s "$PORT_FILE" ] || fail "server never wrote $PORT_FILE"
PORT=$(cat "$PORT_FILE")
ADDR="127.0.0.1:$PORT"
echo "==> sim_serve up on $ADDR (pid $SERVE_PID)"

# Cold pass: mixed hot/cold plan against an empty cache. 32 conns vs 4
# workers is the concurrency floor the subsystem promises to sustain.
echo "==> loadgen cold pass"
"$BIN/sim_loadgen" --addr "$ADDR" --conns 32 --requests 96 \
    --hot-ratio 0.75 --hot-keys 3 --experiments e2,e3 --seed 1 --trials 2 \
    || fail "cold loadgen pass failed"

# Hot pass: identical plan, now warm — and snapshot it for the gate.
echo "==> loadgen hot pass"
HOT_OUT=$("$BIN/sim_loadgen" --addr "$ADDR" --conns 32 --requests 96 \
    --hot-ratio 0.75 --hot-keys 3 --experiments e2,e3 --seed 1 --trials 2 \
    --json "$OUT/BENCH_serve.json") || fail "hot loadgen pass failed"
echo "$HOT_OUT"

# The warm pass must actually hit the cache.
HITS=$(echo "$HOT_OUT" | sed -n 's/.*cache_hits=\([0-9]*\).*/\1/p')
[ -n "$HITS" ] || fail "could not parse cache_hits from loadgen output"
[ "$HITS" -gt 0 ] || fail "warm pass recorded zero cache hits"
echo "==> warm pass hit the cache $HITS times"

# The load generator reports its client-side SLO accounting.
echo "$HOT_OUT" | grep -q "slo: attainment=" \
    || fail "loadgen output is missing the SLO summary line"

# Scrape the live telemetry plane: the JSON body carries the SLO
# state, the Prometheus body carries the exposition, and the table
# renders. Two back-to-back quiet scrapes must be byte-identical —
# scraping never samples.
echo "==> sim_top metrics scrapes"
METRICS=$("$BIN/sim_top" --addr "$ADDR" --once --format json) \
    || fail "sim_top JSON scrape failed"
for field in '"schema":"vlsi-sync/serve-metrics"' '"slo_policy"' \
    '"attainment"' '"latency_burn_rate"' '"error_burn_rate"' '"healthy"'; do
    echo "$METRICS" | grep -qF "$field" \
        || fail "metrics JSON is missing $field"
done
METRICS2=$("$BIN/sim_top" --addr "$ADDR" --once --format json) \
    || fail "second sim_top scrape failed"
[ "$METRICS" = "$METRICS2" ] || fail "quiet metrics scrapes must be byte-identical"
PROM=$("$BIN/sim_top" --addr "$ADDR" --once --format prom) \
    || fail "sim_top Prometheus scrape failed"
echo "$PROM" | grep -q '^serve_requests_total{op="run"} [0-9]' \
    || fail "Prometheus body is missing the run request counter"
echo "$PROM" | grep -q '^serve_slo_attainment{op="run"} ' \
    || fail "Prometheus body is missing the SLO attainment gauge"
"$BIN/sim_top" --addr "$ADDR" --once | grep -q "^gauges:" \
    || fail "sim_top table render is missing its gauges line"
echo "==> telemetry plane scrapes cleanly (SLO fields present)"

# Snapshot through the same regression gate the experiments use:
# config/mix exact, run structural.
echo "==> bench_regress --compare BENCH_serve.json"
"$BIN/bench_regress" --compare "$OUT/BENCH_serve.json" --baselines baselines \
    || fail "BENCH_serve.json drifted from the committed baseline"

# Graceful drain: close the server's stdin and expect a clean exit.
echo "==> closing server stdin (graceful drain)"
exec 9>&-
for _ in $(seq 1 100); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
    fail "server did not drain within 10s of stdin close"
fi
wait "$SERVE_PID" || fail "server exited nonzero after drain"
grep -q "drained cleanly" "$SERVE_LOG" || fail "server log is missing the clean-drain marker"

echo "==> serve smoke passed"
