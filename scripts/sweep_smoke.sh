#!/usr/bin/env bash
# Sweep smoke: the checkpointed mega-sweep workflow end to end, with a
# mid-run kill. Emit a sharded manifest, take a single-process baseline
# report, run two shards to completion, kill -9 the third mid-range
# (and inject a torn temp file next to its checkpoint), resume it, and
# verify the merged report is byte-identical to the baseline. Also
# checks both new binaries' CLI contracts (--help exits 0, garbage
# numerics exit 2).
#
# Usage: scripts/sweep_smoke.sh [BIN_DIR]
#   BIN_DIR   directory holding explore/sweep_shard (default target/release)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release}"
OUT=target/bench/sweep_smoke
rm -rf "$OUT"
mkdir -p "$OUT"

fail() {
    echo "sweep_smoke: $*" >&2
    exit 1
}

# CLI contracts: --help exits 0 on both binaries, garbage numerics 2.
"$BIN/explore" --help >/dev/null || fail "explore --help must exit 0"
"$BIN/sweep_shard" --help >/dev/null || fail "sweep_shard --help must exit 0"
rc=0; "$BIN/explore" --trials banana 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || fail "explore must exit 2 on garbage --trials (got $rc)"
rc=0; "$BIN/sweep_shard" --manifest x --shard -3 --dir y 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || fail "sweep_shard must exit 2 on garbage --shard (got $rc)"
echo "==> CLI contracts hold (--help 0, usage errors 2)"

# The manifest: fast grid, 3 shards, checkpoint every 4 trials.
MANIFEST="$OUT/manifest.json"
run() {
    echo "==> $*"
    "$@"
}
run "$BIN/explore" --fast --seed 7 --trials 12 --shards 3 --checkpoint-every 4 \
    --emit-manifest "$MANIFEST"

# Uninterrupted single-process baseline.
run "$BIN/sweep_shard" --manifest "$MANIFEST" --single --out "$OUT/single.json" \
    --threads 4

# Shards 0 and 2 run to completion; shard 1 is throttled, killed -9
# mid-range, sabotaged with a torn temp file, and resumed.
run "$BIN/sweep_shard" --manifest "$MANIFEST" --shard 0 --dir "$OUT/shards" --threads 2
run "$BIN/sweep_shard" --manifest "$MANIFEST" --shard 2 --dir "$OUT/shards" --threads 2

echo "==> starting throttled shard 1 and killing it mid-range"
"$BIN/sweep_shard" --manifest "$MANIFEST" --shard 1 --dir "$OUT/shards" \
    --throttle-ms 30 >"$OUT/shard1_first.log" 2>&1 &
SHARD_PID=$!
CKPT="$OUT/shards/shard-1.json"
HB="$OUT/shards/shard-1.hb.json"
# The heartbeat lands right after each checkpoint; waiting for it
# guarantees both files exist when the kill hits.
for _ in $(seq 1 200); do
    [ -s "$HB" ] && break
    kill -0 "$SHARD_PID" 2>/dev/null || fail "shard 1 exited before its first checkpoint"
    sleep 0.05
done
[ -s "$CKPT" ] || fail "shard 1 never wrote a checkpoint"
[ -s "$HB" ] || fail "shard 1 never wrote a heartbeat"
kill -9 "$SHARD_PID" 2>/dev/null || true
wait "$SHARD_PID" 2>/dev/null || true
echo "torn half-written garbage" >"$CKPT.tmp"

# The killed shard leaves its heartbeat behind: live vital signs for
# an operator, and the --status view must call the shard out. Its
# heartbeat tick is frozen, so the double-read probe downgrades it
# from active to interrupted.
grep -q '"vlsi-sync/sweep-heartbeat"' "$HB" \
    || fail "heartbeat file is missing its schema marker"
grep -q '"trials_per_sec"' "$HB" || fail "heartbeat is missing trials_per_sec"
grep -q '"eta_ms"' "$HB" || fail "heartbeat is missing eta_ms"
run "$BIN/sweep_shard" --manifest "$MANIFEST" --status --dir "$OUT/shards" \
    | tee "$OUT/status_mid.log"
grep -Eq "^1 .* interrupted$" "$OUT/status_mid.log" \
    || fail "--status must show the killed shard as interrupted"
echo "==> killed shard left a heartbeat and --status reports it interrupted"

# The merge must refuse while shard 1 is incomplete.
if "$BIN/sweep_shard" --manifest "$MANIFEST" --merge --dir "$OUT/shards" \
    --out "$OUT/premature.json" 2>"$OUT/premature.err"; then
    fail "merge must refuse while a shard is incomplete"
fi
grep -q "incomplete" "$OUT/premature.err" || fail "premature merge must name the incomplete shard"
echo "==> premature merge correctly refused"

# Resume: picks up from the checkpoint (not trial 0), ignores the torn
# temp file, and completes the range.
run "$BIN/sweep_shard" --manifest "$MANIFEST" --shard 1 --dir "$OUT/shards" \
    | tee "$OUT/shard1_resume.log"
grep -q "resumed at" "$OUT/shard1_resume.log" \
    || fail "resumed shard must report its checkpoint position"

# Completion removes the heartbeat — its presence always means
# "running or interrupted" — and --status now shows everything done.
[ ! -e "$HB" ] || fail "completed shard must remove its heartbeat"
run "$BIN/sweep_shard" --manifest "$MANIFEST" --status --dir "$OUT/shards" \
    | tee "$OUT/status_done.log"
grep -q "(100.0%)" "$OUT/status_done.log" \
    || fail "--status must report the sweep 100% complete"
! grep -Eq " (active|interrupted|pending)$" "$OUT/status_done.log" \
    || fail "--status must show no live or interrupted shards after completion"
echo "==> heartbeat removed on completion and --status reports 100%"

# Merge and compare: killed + resumed + out-of-order shards must merge
# byte-identically to the uninterrupted single-process run.
run "$BIN/sweep_shard" --manifest "$MANIFEST" --merge --dir "$OUT/shards" \
    --out "$OUT/merged.json" --frontier "$OUT/frontier.json"
cmp "$OUT/single.json" "$OUT/merged.json" \
    || fail "merged report differs from the single-process baseline"
echo "==> merged report is byte-identical to the single-process baseline"

grep -q '"vlsi-sync/frontier-report"' "$OUT/frontier.json" \
    || fail "frontier report missing its schema marker"

echo "==> sweep smoke passed"
