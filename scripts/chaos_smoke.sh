#!/usr/bin/env bash
# Chaos smoke: the self-stabilization pipeline end to end. Two layers
# of fault tolerance are exercised in one script — the *simulated*
# layer (e13's fault episodes, with the in-report asserts that the
# rigid scheme never recovers while TRIX/PALS heal every violation
# span, plus its episode trace back through the checker) and the
# *process* layer (a sweep shard over the episode-bearing design-space
# grid is killed -9 mid-run, `--status` must call it `interrupted` via
# the frozen heartbeat tick, and the resumed + merged report must be
# byte-identical to an uninterrupted single-process run).
#
# Usage: scripts/chaos_smoke.sh [BIN_DIR]
#   BIN_DIR   directory holding e13_recovery/explore/sweep_shard/
#             trace_check (default target/release)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release}"
OUT=target/bench/chaos_smoke
rm -rf "$OUT"
mkdir -p "$OUT"

fail() {
    echo "chaos_smoke: $*" >&2
    exit 1
}

run() {
    echo "==> $*"
    "$@"
}

# --- Simulated chaos: e13's recovery harness -------------------------
# The binary asserts in-report: storm-rate episodes leave the rigid
# network with unrecovered spans at every size, while TRIX and PALS
# end every cell with zero unrecovered spans and bounded p99 latency.
run "$BIN/e13_recovery" --fast --trace "$OUT/e13_trace.json" \
    | tee "$OUT/e13.log"
grep -q "\[OK\]" "$OUT/e13.log" || fail "e13 in-report asserts did not pass"
grep -q "unrecovered" "$OUT/e13.log" || fail "e13 report lost its recovery table"
# Episode onsets ride the trace as checker-aware fault markers.
run "$BIN/trace_check" "$OUT/e13_trace.json"
grep -q "episode_onset" "$OUT/e13_trace.json.txt" \
    || fail "e13 trace must carry episode_onset markers"
echo "==> e13 recovery asserts hold and its episode trace checks out"

# --- Process chaos: kill -9 a shard of the episode grid --------------
# The fast design-space manifest includes the trix/pals episode cells,
# so the killed-and-resumed trials cover the episode machinery too.
MANIFEST="$OUT/manifest.json"
run "$BIN/explore" --fast --seed 13 --trials 8 --shards 2 --checkpoint-every 3 \
    --emit-manifest "$MANIFEST"
grep -q '"trix"' "$MANIFEST" || fail "manifest must include trix episode cells"
grep -q '"pals"' "$MANIFEST" || fail "manifest must include pals episode cells"

# Uninterrupted single-process baseline.
run "$BIN/sweep_shard" --manifest "$MANIFEST" --single --out "$OUT/single.json" \
    --threads 4

# Shard 0 runs to completion; shard 1 is throttled and killed -9 as
# soon as its first heartbeat lands.
run "$BIN/sweep_shard" --manifest "$MANIFEST" --shard 0 --dir "$OUT/shards" --threads 2
echo "==> starting throttled shard 1 and killing it mid-range"
"$BIN/sweep_shard" --manifest "$MANIFEST" --shard 1 --dir "$OUT/shards" \
    --throttle-ms 30 >"$OUT/shard1_first.log" 2>&1 &
SHARD_PID=$!
HB="$OUT/shards/shard-1.hb.json"
for _ in $(seq 1 200); do
    [ -s "$HB" ] && break
    kill -0 "$SHARD_PID" 2>/dev/null || fail "shard 1 exited before its first heartbeat"
    sleep 0.05
done
[ -s "$HB" ] || fail "shard 1 never wrote a heartbeat"
kill -9 "$SHARD_PID" 2>/dev/null || true
wait "$SHARD_PID" 2>/dev/null || true

# The killed shard's heartbeat tick is frozen: the --status double
# read (two heartbeat reads --probe-ms apart) must downgrade it from
# active to interrupted.
grep -q '"tick"' "$HB" || fail "heartbeat is missing its tick counter"
run "$BIN/sweep_shard" --manifest "$MANIFEST" --status --dir "$OUT/shards" \
    --probe-ms 200 | tee "$OUT/status_mid.log"
grep -Eq "^1 .* interrupted$" "$OUT/status_mid.log" \
    || fail "--status must show the killed shard as interrupted"
echo "==> frozen heartbeat tick reported as interrupted"

# Resume from the checkpoint and finish; completion removes the
# heartbeat so --status shows a fully done sweep.
run "$BIN/sweep_shard" --manifest "$MANIFEST" --shard 1 --dir "$OUT/shards" \
    | tee "$OUT/shard1_resume.log"
grep -q "resumed at" "$OUT/shard1_resume.log" \
    || fail "resumed shard must report its checkpoint position"
[ ! -e "$HB" ] || fail "completed shard must remove its heartbeat"
run "$BIN/sweep_shard" --manifest "$MANIFEST" --status --dir "$OUT/shards" \
    | tee "$OUT/status_done.log"
grep -q "(100.0%)" "$OUT/status_done.log" \
    || fail "--status must report the sweep 100% complete"
! grep -Eq " (active|interrupted|pending)$" "$OUT/status_done.log" \
    || fail "--status must show no live or interrupted shards after completion"

# Kill/resume must be invisible in the merged bytes.
run "$BIN/sweep_shard" --manifest "$MANIFEST" --merge --dir "$OUT/shards" \
    --out "$OUT/merged.json"
cmp "$OUT/single.json" "$OUT/merged.json" \
    || fail "merged report differs from the single-process baseline"
echo "==> killed + resumed episode sweep merges byte-identically"

echo "==> chaos smoke passed"
