#!/usr/bin/env bash
# Benchmark snapshot driver.
#
# Runs every experiment in --fast mode through `bench_regress`, writes
# `BENCH_e*.json` snapshots under target/bench/, and diffs them against
# the committed baselines/ directory: deterministic report sections
# must match byte for byte, the volatile `run` section structurally
# (add --wall-tol PCT on a quiet machine to band its wall-clock
# numbers too). Non-zero exit on any drift.
#
# Usage:
#   scripts/bench.sh               check against baselines/
#   scripts/bench.sh --update      regenerate baselines/ from this run
#   scripts/bench.sh --only e3     any bench_regress flag forwards
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p bench --bin bench_regress

# Overhead guard first: the request path with telemetry disabled must
# cost a single branch, and the enabled path a small multiple. The
# bench prints ns/iter for eyeballing; it has no baseline file because
# absolute timings are machine-bound.
cargo bench --offline -p sim-serve --bench telemetry_overhead

exec target/release/bench_regress --fast --out target/bench --baselines baselines "$@"
