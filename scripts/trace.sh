#!/usr/bin/env bash
# Trace capture driver.
#
# Runs one experiment with deterministic event tracing enabled, writes
# the Perfetto trace-event JSON (plus the byte-stable `.txt` form) under
# target/trace/, validates it with the invariant checker, and prints
# the Perfetto import hint. Extra flags forward to the experiment.
#
# Usage:
#   scripts/trace.sh e6                 full run of e6, traced
#   scripts/trace.sh e2 --fast          any experiment flag forwards
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -lt 1 ]; then
    echo "usage: scripts/trace.sh e<N> [experiment flags]" >&2
    exit 2
fi
EXP="$1"
shift

cargo build --release --offline -p bench --bin experiments --bin trace_check
mkdir -p target/trace
OUT="target/trace/${EXP}.json"
target/release/experiments "$EXP" --trace "$OUT" "$@"
target/release/trace_check "$OUT"
echo "trace written: $OUT (text: $OUT.txt)"
echo "open it at https://ui.perfetto.dev -> 'Open trace file'"
