#!/usr/bin/env bash
# Tier-1 gate for the workspace. Must pass on a machine with NO network
# access: the workspace has zero crates.io dependencies, so every step
# runs with --offline.
#
# Usage: scripts/ci.sh [--heavy]
#   --heavy   additionally run the slow randomized property suite
#             (tests/props.rs, feature `heavy-tests`)
set -euo pipefail
cd "$(dirname "$0")/.."

HEAVY=0
for arg in "$@"; do
    case "$arg" in
        --heavy) HEAVY=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo clippy --offline --workspace --all-targets -- -D warnings
# Metric regression gate: every experiment's JSON report vs the
# committed baselines (deterministic sections exact, run section
# structural — wall-clock banding is opt-in via --wall-tol).
run target/release/bench_regress --fast --out target/bench --baselines baselines
# Netlist-core throughput smoke: the million-gate workloads (1M-stage
# pipelined string + 1000x1000 mesh waves) must hold an events/sec
# floor — a return to heap-scheduler complexity fails here even if the
# counters still match — and the deterministic counter snapshot must
# match its committed baseline byte-for-byte.
run target/release/netlist_bench --out target/bench/BENCH_netlist.json --min-eps 1000000
run target/release/bench_regress --compare target/bench/BENCH_netlist.json --baselines baselines
# Trace smoke: one experiment through --trace end to end, then the
# standalone checker over the exported Perfetto file.
run target/release/e6_inverter_string --fast --trace target/bench/e6_trace.json
run target/release/trace_check target/bench/e6_trace.json
# Fault-injection smoke: e12's Monte-Carlo degradation sweep with its
# in-report asserts, plus its fault-event trace back through the
# checker (fault_injected markers must keep handshake lanes legal).
run target/release/e12_graceful_degradation --fast --trace target/bench/e12_trace.json
run target/release/trace_check target/bench/e12_trace.json
# Chaos smoke: e13's fault-episode recovery asserts (rigid never
# recovers, TRIX/PALS heal every span) with its episode trace through
# the checker, then a sweep shard of the episode grid killed -9
# mid-run — --status must report it interrupted off the frozen
# heartbeat tick — resumed, and merged byte-identically.
run scripts/chaos_smoke.sh target/release
# Topology smoke: e14's realistic-topology scorecard (quadrant trees
# strictly dominate the equalized H-tree; the SDF fixture corpus
# imports, round-trips, and rejects), its skew-attribution trace
# through the checker, quadrant cells in the explore frontier, and
# BENCH_e14.json against its baseline.
run scripts/topo_smoke.sh target/release
# Serve smoke: sim_serve on an ephemeral port, cold/hot loadgen passes
# (cache must hit), BENCH_serve.json vs its baseline, clean drain on
# stdin close.
run scripts/serve_smoke.sh target/release
# Sweep smoke: the checkpointed mega-sweep workflow with a mid-run
# kill -9 — shard, kill, inject a torn temp file, resume, merge — the
# merged report must be byte-identical to the uninterrupted
# single-process baseline; CLI contracts (--help 0, usage 2) on both
# new binaries ride along.
run scripts/sweep_smoke.sh target/release
# Sweep micro-bench: digests and merge==single invariant exact, wall
# clocks structural, vs the committed baseline.
run target/release/sweep_shard --bench --out target/bench/BENCH_sweep.json
run target/release/bench_regress --compare target/bench/BENCH_sweep.json --baselines baselines

if [ "$HEAVY" = 1 ]; then
    run cargo test -q --offline --features heavy-tests --test props
fi

echo "==> tier-1 gate passed"
